//! Reproduction of "Data-Centric Execution of Speculative Parallel Programs"
//! (Jeffrey et al., MICRO 2016).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`types`] — identifiers, the [`types::Hint`] abstraction, machine
//!   configuration (Table II);
//! * [`mem`] — simulated shared memory with undo logging and the cache
//!   hierarchy model;
//! * [`noc`] — the mesh network model and traffic accounting;
//! * [`sim`] — the Swarm-like speculative architecture simulator (task
//!   units, conflict detection, aborts, GVT commits);
//! * [`hints`] — the paper's contribution: hint-based spatial task mapping,
//!   same-hint serialization, the data-centric load balancer, and the
//!   access-classification profiler;
//! * [`apps`] — the nine benchmarks of Table I, three beyond-Table-I
//!   workloads (maxflow, triangle, kvstore), and three synthetic scenario
//!   families (stream, pipeline, hostile), with seeded workload generators
//!   and serial references.
//!
//! # Quickstart
//!
//! ```
//! use swarm_repro::prelude::*;
//!
//! // Simulate sssp on a small road graph under the Hints scheduler.
//! let mut engine = Sim::builder()
//!     .cores(16)
//!     .app_boxed(AppSpec::coarse(BenchmarkId::Sssp).build(InputScale::Tiny, 1))
//!     .scheduler(Scheduler::Hints)
//!     .build()
//!     .expect("a valid simulation description");
//! let stats = engine.run().expect("validated against Dijkstra");
//! assert!(stats.tasks_committed > 0);
//! ```

pub use spatial_hints as hints;
pub use swarm_apps as apps;
pub use swarm_mem as mem;
pub use swarm_noc as noc;
pub use swarm_sim as sim;
pub use swarm_types as types;

/// Commonly used items, importable with `use swarm_repro::prelude::*`.
pub mod prelude {
    pub use spatial_hints::{classify_accesses, AccessClassification, ClassifierConfig, Scheduler};
    pub use swarm_apps::{AppSpec, BenchmarkId, InputScale};
    pub use swarm_sim::{
        AbortEvent, BuildError, CommitEvent, DequeueEvent, Engine, InitialTask, NetworkEvent,
        RunStats, Sim, SimBuilder, SimObserver, SwarmApp, TaskCtx, TaskMapper,
    };
    pub use swarm_types::{Hint, SystemConfig, TileId, Timestamp};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_public_api() {
        use crate::prelude::*;
        let cfg = SystemConfig::small();
        let mapper = Scheduler::Random.build(&cfg);
        assert_eq!(mapper.name(), "Random");
        assert_eq!(BenchmarkId::ALL.len(), 15);
        assert_eq!(BenchmarkId::TABLE1.len(), 9);
    }
}
