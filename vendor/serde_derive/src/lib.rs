//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace consumes the generated serde impls (the one
//! JSON emitter writes JSON by hand), so these derives only need to make
//! `#[derive(Serialize, Deserialize)]` compile. They validate nothing and
//! emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
