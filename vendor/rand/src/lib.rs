//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! subset of `rand` 0.8 the workspace actually uses is reimplemented here:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` (over `Range` / `RangeInclusive` of the primitive
//! integer types) and `gen_bool`.
//!
//! The generator is SplitMix64, which is deterministic for a given seed on
//! every platform — a property the determinism test suite relies on.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0..100u64), b.gen_range(0..100u64));
//! ```

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A primitive integer `gen_range` can sample; mirrors rand's
/// `SampleUniform` so the blanket [`SampleRange`] impls below keep type
/// inference working on integer literals.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                lo.wrapping_add((rng.next_u64() as u128 % span as u128) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: small, fast, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..=8usize);
            assert!((3..=8).contains(&x));
            let y = rng.gen_range(10..16u8);
            assert!((10..16).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }
}
