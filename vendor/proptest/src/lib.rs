//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range, tuple and
//! one-of strategies, [`collection::vec`], [`any`], [`ProptestConfig`], and
//! the [`proptest!`] / `prop_assert*` / [`prop_oneof!`] macros — plus
//! *shrinking*, which the first shim generation lacked.
//!
//! # How shrinking works here
//!
//! Real proptest shrinks through per-strategy value trees. This shim gets
//! the same observable behaviour with a much smaller mechanism, the one
//! Hypothesis pioneered: every strategy draws its randomness through a
//! [`TestRng`] that *records* the stream of 64-bit draws, and a recorded
//! stream can be *replayed* (with draws past the end reading as zero).
//! Because generation is a deterministic function of the draw stream,
//! shrinking the stream — zeroing blocks, halving values, truncating —
//! shrinks the generated value, and it composes through `prop_map`,
//! `prop_flat_map` and recursive generators for free: no strategy has to
//! implement anything to become shrinkable. Draws shrink toward zero, and
//! every strategy maps zero draws to its minimal value (range start, empty
//! or shortest vector, first `prop_oneof!` alternative).
//!
//! On failure the [`proptest!`] runner shrinks the stream with
//! [`shrink_stream`] (bounded by [`ProptestConfig::max_shrink_iters`]),
//! reports the minimal failing inputs, and prints the minimal replay stream
//! so the case can be pinned as a permanent regression test via
//! [`TestRng::replay`].
//!
//! Unlike real proptest there is still no failure-persistence file: each
//! test runs `cases` deterministic pseudo-random inputs seeded from the
//! test name, so every run (and every platform) explores — and shrinks —
//! the same inputs.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

// The doc example above shows real `proptest!` usage, which necessarily
// includes `#[test]`; the example is compile-only by design.
#![allow(clippy::test_attr_in_doctest)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration; `cases` and `max_shrink_iters` are honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Budget of candidate replays the shrinker may attempt on a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; keep the offline runner
        // CI-friendly.
        ProptestConfig { cases: 64, max_shrink_iters: 512 }
    }
}

/// The recording/replaying randomness source every [`Strategy`] draws from.
///
/// In recording mode it is a seeded SplitMix64 stream whose 64-bit draws are
/// logged per case; in replay mode it reads a fixed stream (zeros once the
/// stream is exhausted), which is what makes stream-level shrinking and
/// corpus replay possible.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
    record: Vec<u64>,
    replay: Option<Vec<u64>>,
    cursor: usize,
}

impl TestRng {
    /// A fresh recording RNG.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
            record: Vec::new(),
            replay: None,
            cursor: 0,
        }
    }

    /// An RNG that replays `stream` verbatim, then yields zeros. Feeding a
    /// previously recorded stream regenerates the identical value; feeding a
    /// shrunk stream generates a smaller one.
    pub fn replay(stream: Vec<u64>) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(0),
            record: Vec::new(),
            replay: Some(stream),
            cursor: 0,
        }
    }

    /// Forget the draws recorded so far (the runner calls this per case).
    pub fn begin_case(&mut self) {
        self.record.clear();
        self.cursor = 0;
    }

    /// The draws made since the last [`begin_case`](Self::begin_case).
    pub fn take_record(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.record)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        let v = match &self.replay {
            Some(stream) => stream.get(self.cursor).copied().unwrap_or(0),
            None => self.inner.next_u64(),
        };
        self.cursor += 1;
        self.record.push(v);
        v
    }
}

/// Deterministic per-test RNG, seeded from the test name so every run (and
/// every platform) explores the same inputs.
pub fn test_rng(test_name: &str) -> TestRng {
    TestRng::from_seed(fnv1a(test_name))
}

fn fnv1a(name: &str) -> u64 {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    seed
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A fixed value is its own strategy (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives of one value type — the engine
/// behind [`prop_oneof!`]. Zero draws pick the first alternative, so list
/// the simplest case first to get the most useful shrinking.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy for "any value of `T`" — full-width uniform bits.
pub struct AnyStrategy<T>(PhantomData<T>);

pub trait ArbitraryBits {
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_arbitrary_bits {
    ($($t:ty),*) => {$(
        impl ArbitraryBits for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_arbitrary_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryBits for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl<T: ArbitraryBits> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

pub fn any<T: ArbitraryBits>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted vector-length specifications: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ----------------------------------------------------------------------
// Shrinking
// ----------------------------------------------------------------------

/// Shrink a recorded draw stream toward the smallest stream whose replay
/// still fails, delta-debugging style: zero suffixes, zero aligned blocks of
/// decreasing size, then halve / decrement individual draws, repeating until
/// a fixed point or until `max_iters` candidate replays were spent.
///
/// `still_fails` replays one candidate and reports whether the property
/// still fails on it; it runs with the panic hook silenced (process-wide)
/// so hundreds of expected panics don't drown the report.
pub fn shrink_stream(
    initial: &[u64],
    max_iters: u32,
    mut still_fails: impl FnMut(&[u64]) -> bool,
) -> Vec<u64> {
    // Serialize hook swapping across concurrently failing proptests; a
    // panicking non-proptest thread during this window still fails its test,
    // it just loses its message.
    static HOOK: Mutex<()> = Mutex::new(());
    let guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut best: Vec<u64> = initial.to_vec();
    trim_zeros(&mut best);
    let mut iters = 0u32;
    let mut try_candidate = |cand: &mut Vec<u64>, best: &mut Vec<u64>, iters: &mut u32| -> bool {
        trim_zeros(cand);
        if *iters >= max_iters || cand == best {
            return false;
        }
        *iters += 1;
        if still_fails(cand) {
            std::mem::swap(best, cand);
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;
        // Pass 1: drop whole suffixes — half the stream, else one draw.
        while !best.is_empty() {
            let mut cand = best[..best.len() / 2].to_vec();
            if try_candidate(&mut cand, &mut best, &mut iters) {
                improved = true;
                continue;
            }
            let mut cand = best[..best.len() - 1].to_vec();
            if try_candidate(&mut cand, &mut best, &mut iters) {
                improved = true;
                continue;
            }
            break;
        }
        // Pass 2: zero aligned blocks of decreasing size.
        let mut block = best.len().max(1);
        while block >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + block).min(best.len());
                if best[start..end].iter().any(|&v| v != 0) {
                    let mut cand = best.clone();
                    cand[start..end].iter_mut().for_each(|v| *v = 0);
                    if try_candidate(&mut cand, &mut best, &mut iters) {
                        improved = true;
                        continue; // same start: the stream shifted under us
                    }
                }
                start += block;
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }
        // Pass 3: shrink individual draws (halve, then decrement).
        for i in 0..best.len() {
            while best.get(i).is_some_and(|&v| v != 0) {
                let v = best[i];
                let mut cand = best.clone();
                cand[i] = v / 2;
                if try_candidate(&mut cand, &mut best, &mut iters) {
                    improved = true;
                    continue;
                }
                let mut cand = best.clone();
                cand[i] = v - 1;
                if try_candidate(&mut cand, &mut best, &mut iters) {
                    improved = true;
                    continue;
                }
                break;
            }
        }
        if !improved || iters >= max_iters {
            break;
        }
    }

    std::panic::set_hook(previous);
    drop(guard);
    best
}

/// Trailing zeros replay identically to an exhausted stream; canonicalize.
fn trim_zeros(stream: &mut Vec<u64>) {
    while stream.last() == Some(&0) {
        stream.pop();
    }
}

/// Replay one candidate stream against a generation + property closure,
/// reporting whether it panicked. Used by the [`proptest!`] runner.
pub fn replay_fails(stream: &[u64], mut case: impl FnMut(&mut TestRng)) -> bool {
    let mut rng = TestRng::replay(stream.to_vec());
    catch_unwind(AssertUnwindSafe(move || case(&mut rng))).is_err()
}

pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// The test-suite entry point: declares each `fn name(arg in strategy, ..)`
/// as a `#[test]` running `cases` generated inputs, shrinking any failure
/// to a minimal counterexample before reporting it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $crate::TestRng::begin_case(&mut rng);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    let stream = $crate::TestRng::take_record(&mut rng);
                    let minimal =
                        $crate::shrink_stream(&stream, config.max_shrink_iters, |cand| {
                            $crate::replay_fails(cand, |replay| {
                                $(let $arg = $crate::Strategy::generate(&($strategy), replay);)*
                                let _ = ($(&$arg,)*);
                                $body
                            })
                        });
                    let mut replay = $crate::TestRng::replay(minimal.clone());
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut replay);)*
                    eprintln!(
                        "proptest case {}/{} of `{}` failed; minimal failing inputs after \
                         shrinking:",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                    eprintln!(
                        "  replay stream (pin via proptest::TestRng::replay): {minimal:?}"
                    );
                    let rerun = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> () { $body },
                    ));
                    match rerun {
                        Err(shrunk_panic) => ::std::panic::resume_unwind(shrunk_panic),
                        // The shrunk case no longer fails outside the hook
                        // guard (flaky property); fall back to the original.
                        Ok(()) => ::std::panic::resume_unwind(panic),
                    }
                }
            }
        }
    )*};
}

/// `prop_oneof!`: uniform choice among alternatives, as a [`Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// `prop_assert!`: assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0u64..10, 3..7),
            exact in crate::collection::vec(any::<u64>(), 5),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_threads_outer_value(
            pair in (1usize..5).prop_flat_map(|n| {
                crate::collection::vec(0u64..100, n).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn oneof_picks_only_listed_alternatives(
            x in prop_oneof![Just(1u64), 10u64..20, Just(99u64)],
        ) {
            prop_assert!(x == 1 || (10..20).contains(&x) || x == 99);
        }
    }

    #[test]
    fn same_test_name_replays_identically() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let mut a = crate::test_rng("replay");
        let mut b = crate::test_rng("replay");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn recorded_stream_replays_to_the_same_value() {
        use crate::{Strategy, TestRng};
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let mut rng = crate::test_rng("record-replay");
        for _ in 0..20 {
            rng.begin_case();
            let value = strat.generate(&mut rng);
            let stream = rng.take_record();
            let mut replayed = TestRng::replay(stream);
            assert_eq!(strat.generate(&mut replayed), value);
        }
    }

    #[test]
    fn zero_stream_generates_minimal_values() {
        use crate::{Strategy, TestRng};
        let mut rng = TestRng::replay(vec![]);
        assert_eq!((5u64..100).generate(&mut rng), 5);
        assert_eq!(crate::collection::vec(0u64..10, 2..9).generate(&mut rng), vec![0, 0]);
        let first_alternative = prop_oneof![Just(7u8), Just(42u8)].generate(&mut rng);
        assert_eq!(first_alternative, 7);
    }

    #[test]
    fn shrinking_finds_a_minimal_vector() {
        use crate::Strategy;
        // Property: "no vector contains an element >= 500". Failures shrink
        // to the canonical minimal counterexample: one element, value 500.
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let mut rng = crate::test_rng("shrink-minimal-vec");
        let fails = |v: &Vec<u64>| v.iter().any(|&x| x >= 500);
        loop {
            rng.begin_case();
            let v = strat.generate(&mut rng);
            if !fails(&v) {
                continue;
            }
            let stream = rng.take_record();
            let minimal = crate::shrink_stream(&stream, 2000, |cand| {
                crate::replay_fails(cand, |replay| {
                    let v = strat.generate(replay);
                    assert!(!fails(&v), "still failing");
                })
            });
            let mut replay = crate::TestRng::replay(minimal);
            let v = strat.generate(&mut replay);
            assert_eq!(v, vec![500], "shrinking should reach the boundary case");
            break;
        }
    }

    #[test]
    fn shrinking_composes_through_recursive_generators() {
        use crate::{BoxedStrategy, Just, Strategy};
        // A recursive tree generator built from prop_flat_map: depth-bounded
        // n-ary trees counted by leaves. Nothing implements shrinking
        // explicitly, yet the stream shrinker minimizes the whole structure.
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        impl Tree {
            fn sum(&self) -> u64 {
                match self {
                    Tree::Leaf(v) => *v,
                    Tree::Node(children) => children.iter().map(Tree::sum).sum(),
                }
            }
        }
        fn leaves(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => children.iter().map(leaves).sum(),
            }
        }
        fn tree(depth: u32) -> BoxedStrategy<Tree> {
            if depth == 0 {
                return (0u64..100).prop_map(Tree::Leaf).boxed();
            }
            (0usize..3)
                .prop_flat_map(move |n| {
                    if n == 0 {
                        Just(Vec::new()).boxed()
                    } else {
                        crate::collection::vec(tree(depth - 1), n).boxed()
                    }
                })
                .prop_map(Tree::Node)
                .boxed()
        }
        let strat = tree(3);
        let mut rng = crate::test_rng("shrink-recursive-tree");
        loop {
            rng.begin_case();
            let t = strat.generate(&mut rng);
            if leaves(&t) < 2 {
                continue;
            }
            let stream = rng.take_record();
            let minimal = crate::shrink_stream(&stream, 4000, |cand| {
                crate::replay_fails(cand, |replay| {
                    let t = strat.generate(replay);
                    assert!(leaves(&t) < 2, "still failing");
                })
            });
            let mut replay = crate::TestRng::replay(minimal);
            let t = strat.generate(&mut replay);
            assert_eq!(leaves(&t), 2, "a 'has >= 2 leaves' failure should shrink to exactly 2");
            assert_eq!(t.sum(), 0, "leaf payloads should shrink to zero alongside the shape");
            break;
        }
    }
}
