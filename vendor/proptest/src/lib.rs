//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], [`ProptestConfig`], and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no persistence: each test
//! runs `cases` deterministic pseudo-random inputs (seeded from the test
//! name), and a failing case panics with the values bound in scope.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

// The doc example above shows real `proptest!` usage, which necessarily
// includes `#[test]`; the example is compile-only by design.
#![allow(clippy::test_attr_in_doctest)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the offline runner CI-friendly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG, seeded from the test name so every run (and
/// every platform) explores the same inputs.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for byte in test_name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(seed)
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A fixed value is its own strategy (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Strategy for "any value of `T`" — full-width uniform bits.
pub struct AnyStrategy<T>(PhantomData<T>);

pub trait ArbitraryBits {
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_arbitrary_bits {
    ($($t:ty),*) => {$(
        impl ArbitraryBits for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_arbitrary_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryBits for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl<T: ArbitraryBits> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

pub fn any<T: ArbitraryBits>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use std::ops::Range;

    /// Accepted vector-length specifications: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// The test-suite entry point: declares each `fn name(arg in strategy, ..)`
/// as a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs:",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// `prop_assert!`: assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0u64..10, 3..7),
            exact in crate::collection::vec(any::<u64>(), 5),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_threads_outer_value(
            pair in (1usize..5).prop_flat_map(|n| {
                crate::collection::vec(0u64..100, n).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn same_test_name_replays_identically() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let mut a = crate::test_rng("replay");
        let mut b = crate::test_rng("replay");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
