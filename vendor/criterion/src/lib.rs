//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock harness: each benchmark runs `sample_size` timed samples and
//! reports the median per-iteration time. There are no plots, baselines, or
//! statistics beyond that.
//!
//! When invoked with `--test` (as `cargo test --benches` does), each
//! benchmark body executes exactly once so the run stays fast.

use std::time::Instant;

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Median per-iteration nanoseconds of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    fn new(samples: usize, test_mode: bool) -> Self {
        Bencher { samples, test_mode, last_median_ns: 0.0 }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        if self.test_mode {
            black_box(payload());
            return;
        }
        // Calibrate: grow the batch until one sample takes >= 1ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(payload());
            }
            if start.elapsed().as_micros() >= 1_000 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(payload());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = per_iter[per_iter.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The harness entry point handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, test_mode }
    }
}

impl Criterion {
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size, self.test_mode);
        f(&mut bencher);
        if self.test_mode {
            println!("{label}: ok (test mode)");
        } else {
            println!("{label:<48} time: {}", format_ns(bencher.last_median_ns));
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.criterion.sample_size = samples;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_all_shapes() {
        // Force test mode so the test itself is fast.
        let mut criterion = Criterion { sample_size: 2, test_mode: true };
        sample_target(&mut criterion);
        let mut timed = Criterion { sample_size: 2, test_mode: false };
        timed.bench_function("timed_noop", |b| b.iter(|| black_box(0u8)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
