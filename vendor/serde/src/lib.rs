//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and id
//! types so downstream users *could* persist them, but nothing in-tree
//! consumes the impls. This shim supplies marker traits and re-exports the
//! no-op derives so the annotations compile without crates.io access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
