//! Parallel experiment execution: a shared-cursor work-sharing thread pool
//! over [`RunRequest`]s.
//!
//! The scheduler × app × core-count matrix behind every figure is a set of
//! *independent, deterministic* simulations (each run draws all randomness
//! from its own seed), so fanning requests out across OS threads is pure
//! wall-clock speedup with zero accuracy risk. Workers pull requests from a
//! shared atomic cursor (dynamic work-sharing, so one slow 64-core point
//! does not leave the other workers idle behind a static partition), and
//! results are re-joined **in request order**, which makes the output of
//! every sweep byte-identical to the serial path — `tests/parallel_runner.rs`
//! in the workspace root locks this property down.
//!
//! All harness binaries construct a [`Pool`] from the `--jobs N` flag (see
//! [`crate::HarnessArgs`]); the default is the machine's available
//! parallelism.
//!
//! # Example
//!
//! ```
//! use spatial_hints::Scheduler;
//! use swarm_apps::{AppSpec, BenchmarkId, InputScale};
//! use swarm_bench::{Pool, RunRequest};
//!
//! let pool = Pool::new(2);
//! let requests: Vec<RunRequest> = [1, 4]
//!     .iter()
//!     .map(|&cores| {
//!         RunRequest::new(
//!             AppSpec::coarse(BenchmarkId::Sssp),
//!             Scheduler::Hints,
//!             cores,
//!             InputScale::Tiny,
//!         )
//!     })
//!     .collect();
//! let stats = pool.run_matrix(&requests);
//! assert_eq!(stats.len(), 2);
//! assert!(stats[0].runtime_cycles >= stats[1].runtime_cycles);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, InputScale};
use swarm_sim::RunStats;

use crate::runner::{run_point, ExperimentPoint, RunRequest};

/// One labelled speedup curve to sweep: `(label, app, scheduler)`.
///
/// The label is what [`crate::format_speedup_table`] prints as the column
/// header; app and scheduler identify the simulations to run.
pub type CurveSpec = (String, AppSpec, Scheduler);

/// A swept curve as the sweeps return it: the label plus one
/// [`ExperimentPoint`] per core count.
pub type LabeledCurve = (String, Vec<ExperimentPoint>);

/// One baseline-normalized group of curves: the shared baseline's stats
/// plus the group's curves (see [`Pool::speedup_curve_groups`]).
pub type CurveGroup = (RunStats, Vec<LabeledCurve>);

/// A fixed-size pool of OS threads that executes experiment matrices.
///
/// The pool itself is trivially cheap to construct (it holds only the job
/// count; threads are scoped per call), so binaries create one up front from
/// the parsed arguments and pass it to every sweep.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running `jobs` requests concurrently. `jobs == 0` means "use
    /// the machine's available parallelism" (the `--jobs` default).
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 { Self::available_parallelism() } else { jobs };
        Pool { jobs }
    }

    /// A single-threaded pool: runs every request on the calling thread, in
    /// request order. The parallel paths are defined to produce byte-identical
    /// results to this.
    pub fn serial() -> Pool {
        Pool { jobs: 1 }
    }

    /// The number of hardware threads to use by default.
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The number of worker threads this pool uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every request and return the stats **in request order**,
    /// regardless of which worker finished which request first.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference (the panic of the failing run is propagated).
    pub fn run_matrix(&self, requests: &[RunRequest]) -> Vec<RunStats> {
        self.execute(requests, false)
    }

    /// Like [`Pool::run_matrix`], with access profiling enabled on every run
    /// (needed by the Fig. 3 / Fig. 6 classification binaries).
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn run_matrix_profiled(&self, requests: &[RunRequest]) -> Vec<RunStats> {
        self.execute(requests, true)
    }

    /// Run a labelled set of requests, preserving labels and order — the
    /// shape the breakdown/traffic tables consume.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn run_labeled(&self, entries: Vec<(String, RunRequest)>) -> Vec<(String, RunStats)> {
        let requests: Vec<RunRequest> = entries.iter().map(|(_, r)| *r).collect();
        let stats = self.run_matrix(&requests);
        entries.into_iter().zip(stats).map(|((label, _), s)| (label, s)).collect()
    }

    /// Sweep core counts for one app/scheduler, with speedups relative to
    /// the 1-core run of the same configuration (the parallel equivalent of
    /// [`crate::speedup_curve`]).
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn sweep_cores(
        &self,
        spec: AppSpec,
        scheduler: Scheduler,
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<ExperimentPoint> {
        let series = vec![(String::new(), spec, scheduler)];
        let mut curves = self.speedup_curves(&series, core_counts, scale, seed);
        curves.pop().map(|(_, points)| points).unwrap_or_default()
    }

    /// Sweep several labelled curves at once, each relative to its own
    /// 1-core baseline. All runs of all curves go through one shared matrix,
    /// so parallelism is harvested across series as well as within them.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn speedup_curves(
        &self,
        series: &[CurveSpec],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<LabeledCurve> {
        // Per series: one 1-core baseline request, then one request per
        // non-1 core count (1-core entries reuse the baseline stats, exactly
        // as the serial path does).
        let mut requests = Vec::new();
        for &(_, spec, scheduler) in series {
            requests.push(RunRequest { spec, scheduler, cores: 1, scale, seed });
            for &cores in core_counts.iter().filter(|&&c| c != 1) {
                requests.push(RunRequest { spec, scheduler, cores, scale, seed });
            }
        }
        let mut stats = self.run_matrix(&requests).into_iter();
        series
            .iter()
            .map(|(label, spec, scheduler)| {
                let baseline = stats.next().expect("one baseline per series");
                let points = core_counts
                    .iter()
                    .map(|&cores| {
                        let request =
                            RunRequest { spec: *spec, scheduler: *scheduler, cores, scale, seed };
                        let point_stats = if cores == 1 {
                            baseline.clone()
                        } else {
                            stats.next().expect("one run per non-1 core count")
                        };
                        let speedup = point_stats.speedup_over(&baseline);
                        ExperimentPoint { request, stats: point_stats, speedup }
                    })
                    .collect();
                (label.clone(), points)
            })
            .collect()
    }

    /// Sweep several labelled curves against one *shared* baseline request
    /// (Fig. 7 normalizes every fine-/coarse-grain series to the coarse
    /// 1-core run). Returns the baseline stats alongside the curves.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn speedup_curves_vs(
        &self,
        baseline: RunRequest,
        series: &[CurveSpec],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> CurveGroup {
        let groups = vec![(baseline, series.to_vec())];
        self.speedup_curve_groups(&groups, core_counts, scale, seed)
            .pop()
            .expect("one group in, one group out")
    }

    /// Sweep several independent *groups* of curves, each normalized to its
    /// own shared baseline request, through one flat matrix — so parallelism
    /// is harvested across groups too (Fig. 7 runs one group per benchmark).
    /// Returns each group's baseline stats alongside its curves, in group
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn speedup_curve_groups(
        &self,
        groups: &[(RunRequest, Vec<CurveSpec>)],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<CurveGroup> {
        let mut requests = Vec::new();
        for (baseline, series) in groups {
            requests.push(*baseline);
            for &(_, spec, scheduler) in series {
                for &cores in core_counts {
                    requests.push(RunRequest { spec, scheduler, cores, scale, seed });
                }
            }
        }
        let mut stats = self.run_matrix(&requests).into_iter();
        groups
            .iter()
            .map(|(_, series)| {
                let baseline_stats = stats.next().expect("one baseline per group");
                let curves = series
                    .iter()
                    .map(|(label, spec, scheduler)| {
                        let points = core_counts
                            .iter()
                            .map(|&cores| {
                                let request = RunRequest {
                                    spec: *spec,
                                    scheduler: *scheduler,
                                    cores,
                                    scale,
                                    seed,
                                };
                                let point_stats =
                                    stats.next().expect("one run per series per core count");
                                let speedup = point_stats.speedup_over(&baseline_stats);
                                ExperimentPoint { request, stats: point_stats, speedup }
                            })
                            .collect();
                        (label.clone(), points)
                    })
                    .collect();
                (baseline_stats, curves)
            })
            .collect()
    }

    /// Deduplicate, then execute: several figures legitimately ask for the
    /// same point more than once (e.g. `summary` queries Hints on both the
    /// "coarse" and "best" version of apps that have no fine-grain variant).
    /// Runs are deterministic, so one simulation serves every duplicate
    /// slot — results still come back one per request, in request order.
    fn execute(&self, requests: &[RunRequest], profiled: bool) -> Vec<RunStats> {
        let mut first_of: HashMap<RunRequest, usize> = HashMap::new();
        let mut unique: Vec<RunRequest> = Vec::new();
        let slots: Vec<usize> = requests
            .iter()
            .map(|&r| {
                *first_of.entry(r).or_insert_with(|| {
                    unique.push(r);
                    unique.len() - 1
                })
            })
            .collect();
        let unique_stats = self.execute_unique(&unique, profiled);
        slots.into_iter().map(|i| unique_stats[i].clone()).collect()
    }

    /// Dynamic work-sharing execution: workers pull the next unclaimed
    /// request index from a shared cursor (so one slow point never idles
    /// the rest behind a static partition) and stash `(index, stats)` pairs
    /// locally; the caller re-joins them into request order.
    ///
    /// Fail-fast: a validation-failure panic in one worker raises a flag
    /// that stops the other workers at their next pull, so the matrix
    /// aborts promptly (as the serial path does) instead of draining every
    /// remaining point first.
    fn execute_unique(&self, requests: &[RunRequest], profiled: bool) -> Vec<RunStats> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = self.jobs.min(requests.len());
        if workers <= 1 {
            return requests.iter().map(|&r| run_point(r, profiled)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let mut slots: Vec<Option<RunStats>> = vec![None; requests.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&request) = requests.get(i) else { break };
                            let run =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_point(request, profiled)
                                }));
                            match run {
                                Ok(stats) => local.push((i, stats)),
                                Err(payload) => {
                                    failed.store(true, Ordering::Relaxed);
                                    return Err(payload);
                                }
                            }
                        }
                        Ok(local)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join().unwrap_or_else(Err) {
                    Ok(local) => {
                        for (i, stats) in local {
                            slots[i] = Some(stats);
                        }
                    }
                    // A worker panicking means a simulation failed
                    // validation; surface that, not a join error.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots.into_iter().map(|s| s.expect("every request index was claimed")).collect()
    }
}

impl Default for Pool {
    /// The default pool uses all available hardware threads.
    fn default() -> Self {
        Pool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_apps::BenchmarkId;

    fn request(cores: u32) -> RunRequest {
        RunRequest::new(
            AppSpec::coarse(BenchmarkId::Sssp),
            Scheduler::Hints,
            cores,
            InputScale::Tiny,
        )
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(Pool::new(0).jobs(), Pool::available_parallelism());
        assert_eq!(Pool::serial().jobs(), 1);
        assert_eq!(Pool::new(3).jobs(), 3);
    }

    #[test]
    fn empty_matrix_is_empty() {
        assert!(Pool::new(4).run_matrix(&[]).is_empty());
    }

    #[test]
    fn matrix_results_are_in_request_order() {
        let requests = vec![request(4), request(1), request(2)];
        let stats = Pool::new(3).run_matrix(&requests);
        assert_eq!(stats.len(), 3);
        for (req, s) in requests.iter().zip(&stats) {
            assert_eq!(s.cores, req.cores as usize);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let requests = vec![request(1), request(2), request(4), request(8)];
        let serial = Pool::serial().run_matrix(&requests);
        let parallel = Pool::new(4).run_matrix(&requests);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn duplicate_requests_are_deduplicated_but_all_answered() {
        let requests = vec![request(2), request(4), request(2), request(2)];
        let stats = Pool::new(2).run_matrix(&requests);
        assert_eq!(stats.len(), 4);
        // Duplicates get the same (deterministic) result as their first
        // occurrence.
        assert_eq!(format!("{:?}", stats[0]), format!("{:?}", stats[2]));
        assert_eq!(format!("{:?}", stats[0]), format!("{:?}", stats[3]));
        assert_eq!(stats[1].cores, 4);
    }

    #[test]
    fn labeled_runs_keep_their_labels() {
        let entries = vec![("a".to_string(), request(1)), ("b".to_string(), request(2))];
        let out = Pool::new(2).run_labeled(entries);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[1].0, "b");
        assert_eq!(out[1].1.cores, 2);
    }

    #[test]
    fn sweep_cores_matches_serial_speedup_curve() {
        let spec = AppSpec::coarse(BenchmarkId::Des);
        let cores = [1, 2, 4];
        let serial =
            crate::runner::speedup_curve(spec, Scheduler::Hints, &cores, InputScale::Tiny, 7);
        let parallel =
            Pool::new(4).sweep_cores(spec, Scheduler::Hints, &cores, InputScale::Tiny, 7);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn shared_baseline_curves_normalize_to_it() {
        let spec = AppSpec::coarse(BenchmarkId::Bfs);
        let baseline = RunRequest::new(spec, Scheduler::Hints, 1, InputScale::Tiny);
        let series = vec![("H".to_string(), spec, Scheduler::Hints)];
        let (baseline_stats, curves) =
            Pool::new(2).speedup_curves_vs(baseline, &series, &[1, 4], InputScale::Tiny, 0xF1605);
        // The 1-core point of the same config is the baseline re-run, so its
        // speedup is exactly 1.
        assert_eq!(baseline_stats.runtime_cycles, curves[0].1[0].stats.runtime_cycles);
        assert!((curves[0].1[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profiled_matrix_collects_accesses() {
        let stats = Pool::new(2).run_matrix_profiled(&[request(2), request(4)]);
        assert!(stats.iter().all(|s| !s.committed_accesses.is_empty()));
    }
}
