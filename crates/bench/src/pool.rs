//! Parallel experiment execution: a shared-cursor work-sharing thread pool
//! over [`RunRequest`]s.
//!
//! The scheduler × app × core-count matrix behind every figure is a set of
//! *independent, deterministic* simulations (each run draws all randomness
//! from its own seed), so fanning requests out across OS threads is pure
//! wall-clock speedup with zero accuracy risk. Workers pull requests from a
//! shared atomic cursor (dynamic work-sharing, so one slow 64-core point
//! does not leave the other workers idle behind a static partition), and
//! results are re-joined **in request order**, which makes the output of
//! every sweep byte-identical to the serial path — `tests/parallel_runner.rs`
//! in the workspace root locks this property down.
//!
//! All harness binaries construct a [`Pool`] from the `--jobs N` flag (see
//! [`crate::HarnessArgs`]); the default is the machine's available
//! parallelism.
//!
//! # Example
//!
//! ```
//! use spatial_hints::Scheduler;
//! use swarm_apps::{AppSpec, BenchmarkId, InputScale};
//! use swarm_bench::{Pool, RunRequest};
//!
//! let pool = Pool::new(2);
//! let requests: Vec<RunRequest> = [1, 4]
//!     .iter()
//!     .map(|&cores| {
//!         RunRequest::new(
//!             AppSpec::coarse(BenchmarkId::Sssp),
//!             Scheduler::Hints,
//!             cores,
//!             InputScale::Tiny,
//!         )
//!     })
//!     .collect();
//! let stats = pool.run_matrix(&requests);
//! assert_eq!(stats.len(), 2);
//! assert!(stats[0].runtime_cycles >= stats[1].runtime_cycles);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, InputScale};
use swarm_sim::RunStats;

use crate::runner::{run_point_result, ExperimentPoint, RunError, RunRequest};

/// One labelled speedup curve to sweep: `(label, app, scheduler)`.
///
/// The label is what [`crate::format_speedup_table`] prints as the column
/// header; app and scheduler identify the simulations to run.
pub type CurveSpec = (String, AppSpec, Scheduler);

/// A swept curve as the sweeps return it: the label plus one
/// [`ExperimentPoint`] per core count.
pub type LabeledCurve = (String, Vec<ExperimentPoint>);

/// One baseline-normalized group of curves: the shared baseline's stats
/// plus the group's curves (see [`Pool::speedup_curve_groups`]).
pub type CurveGroup = (RunStats, Vec<LabeledCurve>);

/// One finished matrix slot: the stats, or the typed reason they are
/// missing.
pub type StatsResult = Result<RunStats, RunError>;

/// One finished sweep point: the measured point, or the typed reason it is
/// missing (what the `n/a`-aware report formatters consume).
pub type PointResult = Result<ExperimentPoint, RunError>;

/// A swept curve in the Result-typed pipeline: the label plus one
/// [`PointResult`] per core count.
pub type ResultCurve = (String, Vec<PointResult>);

/// What the pool does when a simulation point fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Stop scheduling new points after the first failure; points not yet
    /// started come back as [`RunError::Skipped`]. The default, matching the
    /// harness's historical abort-promptly behavior.
    FailFast,
    /// Run every point regardless of failures and report each failure in
    /// its slot — the graceful-degradation mode behind `--on-error collect`.
    CollectAll,
    /// Re-run a failed point up to `attempts` times total before recording
    /// its (final) failure, then keep going as [`FailurePolicy::CollectAll`]
    /// does. Simulations are deterministic, so this only helps against
    /// environmental flakes (e.g. resource exhaustion), not real failures.
    Retry {
        /// Total attempts per point (clamped to at least 1).
        attempts: u32,
    },
}

impl Default for FailurePolicy {
    /// Fail fast, as the harness always has.
    fn default() -> Self {
        FailurePolicy::FailFast
    }
}

/// A fixed-size pool of OS threads that executes experiment matrices.
///
/// The pool itself is trivially cheap to construct (it holds only the job
/// count and failure policy; threads are scoped per call), so binaries
/// create one up front from the parsed arguments and pass it to every sweep.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
    policy: FailurePolicy,
}

impl Pool {
    /// A pool running `jobs` requests concurrently. `jobs == 0` means "use
    /// the machine's available parallelism" (the `--jobs` default).
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 { Self::available_parallelism() } else { jobs };
        Pool { jobs, policy: FailurePolicy::FailFast }
    }

    /// A single-threaded pool: runs every request on the calling thread, in
    /// request order. The parallel paths are defined to produce byte-identical
    /// results to this.
    pub fn serial() -> Pool {
        Pool { jobs: 1, policy: FailurePolicy::FailFast }
    }

    /// The same pool with a different [`FailurePolicy`] (what `--on-error`
    /// selects).
    #[must_use]
    pub fn with_policy(mut self, policy: FailurePolicy) -> Pool {
        self.policy = policy;
        self
    }

    /// The number of hardware threads to use by default.
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The number of worker threads this pool uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The pool's failure policy.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Run every request and return the stats **in request order**,
    /// regardless of which worker finished which request first.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference (the panic of the failing run is propagated).
    pub fn run_matrix(&self, requests: &[RunRequest]) -> Vec<RunStats> {
        Self::unwrap_all(self.execute(requests, false))
    }

    /// Like [`Pool::run_matrix`], but a failed point comes back as a typed
    /// [`RunError`] in its slot instead of panicking; which points still run
    /// after a failure is governed by the pool's [`FailurePolicy`].
    pub fn try_run_matrix(&self, requests: &[RunRequest]) -> Vec<StatsResult> {
        self.execute(requests, false)
    }

    /// Like [`Pool::run_matrix`], with access profiling enabled on every run
    /// (needed by the Fig. 3 / Fig. 6 classification binaries).
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn run_matrix_profiled(&self, requests: &[RunRequest]) -> Vec<RunStats> {
        Self::unwrap_all(self.execute(requests, true))
    }

    /// [`Pool::try_run_matrix`] with access profiling enabled on every run.
    pub fn try_run_matrix_profiled(&self, requests: &[RunRequest]) -> Vec<StatsResult> {
        self.execute(requests, true)
    }

    /// Run a labelled set of requests, preserving labels and order — the
    /// shape the breakdown/traffic tables consume.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn run_labeled(&self, entries: Vec<(String, RunRequest)>) -> Vec<(String, RunStats)> {
        let requests: Vec<RunRequest> = entries.iter().map(|(_, r)| *r).collect();
        let stats = self.run_matrix(&requests);
        entries.into_iter().zip(stats).map(|((label, _), s)| (label, s)).collect()
    }

    /// Like [`Pool::run_labeled`], but each slot carries its own
    /// [`StatsResult`] so a failed row degrades to `n/a` in the tables
    /// instead of tearing the figure down.
    pub fn try_run_labeled(
        &self,
        entries: Vec<(String, RunRequest)>,
    ) -> Vec<(String, StatsResult)> {
        let requests: Vec<RunRequest> = entries.iter().map(|(_, r)| *r).collect();
        let results = self.execute(&requests, false);
        entries.into_iter().zip(results).map(|((label, _), r)| (label, r)).collect()
    }

    /// Sweep core counts for one app/scheduler, with speedups relative to
    /// the 1-core run of the same configuration (the parallel equivalent of
    /// [`crate::speedup_curve`]).
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn sweep_cores(
        &self,
        spec: AppSpec,
        scheduler: Scheduler,
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<ExperimentPoint> {
        let series = vec![(String::new(), spec, scheduler)];
        let mut curves = self.speedup_curves(&series, core_counts, scale, seed);
        curves.pop().map(|(_, points)| points).unwrap_or_default()
    }

    /// Sweep several labelled curves at once, each relative to its own
    /// 1-core baseline. All runs of all curves go through one shared matrix,
    /// so parallelism is harvested across series as well as within them.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn speedup_curves(
        &self,
        series: &[CurveSpec],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<LabeledCurve> {
        let curves = self.try_speedup_curves(series, core_counts, scale, seed);
        if let Some(err) = curves
            .iter()
            .flat_map(|(_, points)| points)
            .filter_map(|p| p.as_ref().err())
            .find(|e| e.is_root_cause())
        {
            panic!("{err}");
        }
        curves
            .into_iter()
            .map(|(label, points)| {
                (label, points.into_iter().map(|p| p.expect("no root cause above")).collect())
            })
            .collect()
    }

    /// Like [`Pool::speedup_curves`], but each point is its own
    /// [`PointResult`], so a failed point renders as `n/a` instead of
    /// aborting the sweep. A point whose 1-core baseline failed reports the
    /// baseline's error (its speedup is undefined) even if its own run
    /// completed.
    pub fn try_speedup_curves(
        &self,
        series: &[CurveSpec],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<ResultCurve> {
        // Per series: one 1-core baseline request, then one request per
        // non-1 core count (1-core entries reuse the baseline stats, exactly
        // as the serial path does).
        let mut requests = Vec::new();
        for &(_, spec, scheduler) in series {
            requests.push(RunRequest::new(spec, scheduler, 1, scale).with_seed(seed));
            for &cores in core_counts.iter().filter(|&&c| c != 1) {
                requests.push(RunRequest::new(spec, scheduler, cores, scale).with_seed(seed));
            }
        }
        let mut results = self.execute(&requests, false).into_iter();
        series
            .iter()
            .map(|(label, spec, scheduler)| {
                let baseline = results.next().expect("one baseline per series");
                let points = core_counts
                    .iter()
                    .map(|&cores| {
                        let request =
                            RunRequest::new(*spec, *scheduler, cores, scale).with_seed(seed);
                        let point_stats = if cores == 1 {
                            baseline.clone()
                        } else {
                            results.next().expect("one run per non-1 core count")
                        };
                        match (&baseline, point_stats) {
                            (Ok(base), Ok(stats)) => {
                                let speedup = stats.speedup_over(base);
                                Ok(ExperimentPoint { request, stats, speedup })
                            }
                            (_, Err(e)) => Err(e),
                            (Err(base_err), Ok(_)) => Err(base_err.clone()),
                        }
                    })
                    .collect();
                (label.clone(), points)
            })
            .collect()
    }

    /// Sweep several labelled curves against one *shared* baseline request
    /// (Fig. 7 normalizes every fine-/coarse-grain series to the coarse
    /// 1-core run). Returns the baseline stats alongside the curves.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn speedup_curves_vs(
        &self,
        baseline: RunRequest,
        series: &[CurveSpec],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> CurveGroup {
        let groups = vec![(baseline, series.to_vec())];
        self.speedup_curve_groups(&groups, core_counts, scale, seed)
            .pop()
            .expect("one group in, one group out")
    }

    /// Sweep several independent *groups* of curves, each normalized to its
    /// own shared baseline request, through one flat matrix — so parallelism
    /// is harvested across groups too (Fig. 7 runs one group per benchmark).
    /// Returns each group's baseline stats alongside its curves, in group
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any simulation fails validation against its serial
    /// reference.
    pub fn speedup_curve_groups(
        &self,
        groups: &[(RunRequest, Vec<CurveSpec>)],
        core_counts: &[u32],
        scale: InputScale,
        seed: u64,
    ) -> Vec<CurveGroup> {
        let mut requests = Vec::new();
        for (baseline, series) in groups {
            requests.push(*baseline);
            for &(_, spec, scheduler) in series {
                for &cores in core_counts {
                    requests.push(RunRequest::new(spec, scheduler, cores, scale).with_seed(seed));
                }
            }
        }
        let mut stats = self.run_matrix(&requests).into_iter();
        groups
            .iter()
            .map(|(_, series)| {
                let baseline_stats = stats.next().expect("one baseline per group");
                let curves = series
                    .iter()
                    .map(|(label, spec, scheduler)| {
                        let points = core_counts
                            .iter()
                            .map(|&cores| {
                                let request = RunRequest::new(*spec, *scheduler, cores, scale)
                                    .with_seed(seed);
                                let point_stats =
                                    stats.next().expect("one run per series per core count");
                                let speedup = point_stats.speedup_over(&baseline_stats);
                                ExperimentPoint { request, stats: point_stats, speedup }
                            })
                            .collect();
                        (label.clone(), points)
                    })
                    .collect();
                (baseline_stats, curves)
            })
            .collect()
    }

    /// Deduplicate, then execute: several figures legitimately ask for the
    /// same point more than once (e.g. `summary` queries Hints on both the
    /// "coarse" and "best" version of apps that have no fine-grain variant).
    /// Runs are deterministic, so one simulation serves every duplicate
    /// slot — results still come back one per request, in request order.
    fn execute(&self, requests: &[RunRequest], profiled: bool) -> Vec<StatsResult> {
        let mut first_of: HashMap<RunRequest, usize> = HashMap::new();
        let mut unique: Vec<RunRequest> = Vec::new();
        let slots: Vec<usize> = requests
            .iter()
            .map(|&r| {
                *first_of.entry(r).or_insert_with(|| {
                    unique.push(r);
                    unique.len() - 1
                })
            })
            .collect();
        let unique_results = self.execute_unique(&unique, profiled);
        slots.into_iter().map(|i| unique_results[i].clone()).collect()
    }

    /// Dynamic work-sharing execution: workers pull the next unclaimed
    /// request index from a shared cursor (so one slow point never idles
    /// the rest behind a static partition) and stash `(index, result)` pairs
    /// locally; the caller re-joins them into request order.
    ///
    /// Every failure mode of a point — including a panic inside the engine —
    /// is captured as a [`RunError`] in that point's slot. Under
    /// [`FailurePolicy::FailFast`] a failure raises a flag that stops the
    /// other workers at their next pull, and every request never claimed
    /// comes back as [`RunError::Skipped`]; the other policies drain the
    /// whole matrix.
    fn execute_unique(&self, requests: &[RunRequest], profiled: bool) -> Vec<StatsResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        let fail_fast = self.policy == FailurePolicy::FailFast;
        let attempts = match self.policy {
            FailurePolicy::Retry { attempts } => attempts.max(1),
            _ => 1,
        };
        let workers = self.jobs.min(requests.len());
        if workers <= 1 {
            let mut results = Vec::with_capacity(requests.len());
            let mut failed = false;
            for &request in requests {
                if failed && fail_fast {
                    results.push(Err(RunError::Skipped { request }));
                    continue;
                }
                let result = run_with_retries(request, profiled, attempts);
                failed |= result.is_err();
                results.push(result);
            }
            return results;
        }
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let mut slots: Vec<Option<StatsResult>> = vec![None; requests.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            if fail_fast && failed.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&request) = requests.get(i) else { break };
                            let result = run_with_retries(request, profiled, attempts);
                            if result.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            local.push((i, result));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, result) in local {
                            slots[i] = Some(result);
                        }
                    }
                    // run_with_retries catches simulation panics, so a worker
                    // unwinding is a harness bug — propagate it.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or(Err(RunError::Skipped { request: requests[i] })))
            .collect()
    }

    /// Panic with the first root-cause error, exactly as the pre-Result
    /// harness did, or hand back the unwrapped stats.
    fn unwrap_all(results: Vec<StatsResult>) -> Vec<RunStats> {
        if let Some(err) =
            results.iter().filter_map(|r| r.as_ref().err()).find(|e| e.is_root_cause())
        {
            panic!("{err}");
        }
        results.into_iter().map(|r| r.expect("no root cause above")).collect()
    }
}

/// Run one point, re-running failures up to `attempts` total times (the
/// [`FailurePolicy::Retry`] loop; the other policies pass `attempts == 1`).
fn run_with_retries(request: RunRequest, profiled: bool, attempts: u32) -> StatsResult {
    let mut result = run_point_result(request, profiled);
    for _ in 1..attempts {
        if result.is_ok() {
            break;
        }
        result = run_point_result(request, profiled);
    }
    result
}

impl Default for Pool {
    /// The default pool uses all available hardware threads.
    fn default() -> Self {
        Pool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_apps::BenchmarkId;

    fn request(cores: u32) -> RunRequest {
        RunRequest::new(
            AppSpec::coarse(BenchmarkId::Sssp),
            Scheduler::Hints,
            cores,
            InputScale::Tiny,
        )
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(Pool::new(0).jobs(), Pool::available_parallelism());
        assert_eq!(Pool::serial().jobs(), 1);
        assert_eq!(Pool::new(3).jobs(), 3);
    }

    #[test]
    fn empty_matrix_is_empty() {
        assert!(Pool::new(4).run_matrix(&[]).is_empty());
    }

    #[test]
    fn matrix_results_are_in_request_order() {
        let requests = vec![request(4), request(1), request(2)];
        let stats = Pool::new(3).run_matrix(&requests);
        assert_eq!(stats.len(), 3);
        for (req, s) in requests.iter().zip(&stats) {
            assert_eq!(s.cores, req.cores as usize);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let requests = vec![request(1), request(2), request(4), request(8)];
        let serial = Pool::serial().run_matrix(&requests);
        let parallel = Pool::new(4).run_matrix(&requests);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn duplicate_requests_are_deduplicated_but_all_answered() {
        let requests = vec![request(2), request(4), request(2), request(2)];
        let stats = Pool::new(2).run_matrix(&requests);
        assert_eq!(stats.len(), 4);
        // Duplicates get the same (deterministic) result as their first
        // occurrence.
        assert_eq!(format!("{:?}", stats[0]), format!("{:?}", stats[2]));
        assert_eq!(format!("{:?}", stats[0]), format!("{:?}", stats[3]));
        assert_eq!(stats[1].cores, 4);
    }

    #[test]
    fn labeled_runs_keep_their_labels() {
        let entries = vec![("a".to_string(), request(1)), ("b".to_string(), request(2))];
        let out = Pool::new(2).run_labeled(entries);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[1].0, "b");
        assert_eq!(out[1].1.cores, 2);
    }

    #[test]
    fn sweep_cores_matches_serial_speedup_curve() {
        let spec = AppSpec::coarse(BenchmarkId::Des);
        let cores = [1, 2, 4];
        let serial =
            crate::runner::speedup_curve(spec, Scheduler::Hints, &cores, InputScale::Tiny, 7);
        let parallel =
            Pool::new(4).sweep_cores(spec, Scheduler::Hints, &cores, InputScale::Tiny, 7);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn shared_baseline_curves_normalize_to_it() {
        let spec = AppSpec::coarse(BenchmarkId::Bfs);
        let baseline = RunRequest::new(spec, Scheduler::Hints, 1, InputScale::Tiny);
        let series = vec![("H".to_string(), spec, Scheduler::Hints)];
        let (baseline_stats, curves) =
            Pool::new(2).speedup_curves_vs(baseline, &series, &[1, 4], InputScale::Tiny, 0xF1605);
        // The 1-core point of the same config is the baseline re-run, so its
        // speedup is exactly 1.
        assert_eq!(baseline_stats.runtime_cycles, curves[0].1[0].stats.runtime_cycles);
        assert!((curves[0].1[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profiled_matrix_collects_accesses() {
        let stats = Pool::new(2).run_matrix_profiled(&[request(2), request(4)]);
        assert!(stats.iter().all(|s| !s.committed_accesses.is_empty()));
    }

    /// A request doomed to a deterministic typed failure: a lost task wake
    /// at cycle 0 wedges the run into a deadlock.
    fn doomed(cores: u32) -> RunRequest {
        use swarm_sim::{FaultEvent, FaultKind};
        request(cores)
            .with_fault(FaultEvent { at_cycle: 0, kind: FaultKind::LostTaskWake { ts: 1 } })
    }

    #[test]
    fn collect_all_reports_each_failure_in_its_slot() {
        use swarm_types::SimError;
        let requests = vec![request(1), doomed(2), request(4)];
        let results = Pool::new(2).with_policy(FailurePolicy::CollectAll).try_run_matrix(&requests);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok(), "points after the failure still run");
        let err = results[1].as_ref().expect_err("the doomed point fails");
        assert!(matches!(err, RunError::Sim { error: SimError::Deadlock { .. }, .. }), "{err}");
    }

    #[test]
    fn fail_fast_skips_unclaimed_points() {
        let requests = vec![doomed(1), request(2), request(4)];
        let results = Pool::serial().try_run_matrix(&requests);
        assert!(results[0].as_ref().is_err_and(RunError::is_root_cause));
        for later in &results[1..] {
            let err = later.as_ref().expect_err("fail-fast skips the rest");
            assert!(matches!(err, RunError::Skipped { .. }), "{err}");
            assert!(!err.is_root_cause());
        }
    }

    #[test]
    fn retry_still_reports_deterministic_failures() {
        let requests = vec![doomed(2), request(1)];
        let results = Pool::serial()
            .with_policy(FailurePolicy::Retry { attempts: 3 })
            .try_run_matrix(&requests);
        // A deterministic failure fails every attempt; retry then behaves
        // like CollectAll and the healthy point still runs.
        assert!(results[0].as_ref().is_err_and(RunError::is_root_cause));
        assert!(results[1].is_ok());
    }

    #[test]
    fn parallel_try_matrix_matches_serial_under_collect_all() {
        let requests = vec![request(1), doomed(2), request(4), doomed(8)];
        let serial =
            Pool::serial().with_policy(FailurePolicy::CollectAll).try_run_matrix(&requests);
        let parallel =
            Pool::new(4).with_policy(FailurePolicy::CollectAll).try_run_matrix(&requests);
        assert_eq!(format!("{serial:#?}"), format!("{parallel:#?}"));
    }

    #[test]
    fn legacy_matrix_panics_with_the_root_cause() {
        let result = std::panic::catch_unwind(|| {
            Pool::serial().run_matrix(&[request(1), doomed(2)]);
        });
        let payload = result.expect_err("the legacy path panics");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("sssp under Hints at 2 cores failed:"), "{msg}");
    }
}
