//! Experiment harness for the reproduction's evaluation (Sections V–VI of
//! the paper): runs the nine benchmarks under the four schedulers at several
//! core counts and prints the tables and series behind every figure.
//!
//! The crate splits into three layers:
//!
//! * [`runner`] — describing and executing one simulation point
//!   ([`RunRequest`] → [`swarm_sim::RunStats`]), plus the hand-written
//!   serial sweep used as the determinism reference;
//! * [`pool`] — the parallel experiment runner: a dynamic work-sharing
//!   thread pool ([`Pool`]) that executes whole scheduler × app × core-count
//!   matrices across OS threads and joins results in deterministic request
//!   order;
//! * [`report`] — plain-text table formatting matching the paper's figures.
//!
//! The harness binaries (one per table/figure — see `REPRODUCING.md` in the
//! repository root for the full index) are thin wrappers over these layers,
//! parameterized by [`HarnessArgs`] (`--cores`, `--scale`, `--seed`,
//! `--apps`, `--schedulers`, `--jobs`).

#![warn(missing_docs)]

pub mod cli;
pub mod pool;
pub mod report;
pub mod runner;

pub use cli::HarnessArgs;
pub use pool::{CurveGroup, CurveSpec, LabeledCurve, Pool};
pub use report::{
    classification_header, format_breakdown_table, format_classification_row, format_speedup_table,
    format_traffic_table, gmean,
};
pub use runner::{run_app, run_app_profiled, speedup_curve, ExperimentPoint, RunRequest};
