//! Experiment harness for the reproduction's evaluation (Sections V–VI of
//! the paper): runs the nine benchmarks under the four schedulers at several
//! core counts and prints the tables and series behind every figure.
//!
//! The crate splits into these layers:
//!
//! * [`runner`] — describing and executing one simulation point
//!   ([`RunRequest`] → [`swarm_sim::RunStats`]), plus the hand-written
//!   serial sweep used as the determinism reference;
//! * [`pool`] — the parallel experiment runner: a dynamic work-sharing
//!   thread pool ([`Pool`]) that executes whole scheduler × app × core-count
//!   matrices across OS threads and joins results in deterministic request
//!   order;
//! * [`report`] — plain-text table formatting matching the paper's figures;
//! * [`figures`] — the body of every figure/table command, parameterized by
//!   [`HarnessArgs`] (`--cores`, `--scale`, `--seed`, `--apps`,
//!   `--schedulers`, `--jobs`);
//! * [`registry`] — the name → figure table behind the unified `swarm`
//!   binary (`swarm list`, `swarm fig2 ...`) and the legacy per-figure shim
//!   binaries (see `REPRODUCING.md` in the repository root for the full
//!   index).

#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod pool;
pub mod registry;
pub mod report;
pub mod runner;

pub use cli::{HarnessArgs, ListArg};
pub use pool::{CurveGroup, CurveSpec, LabeledCurve, Pool};
pub use registry::{find as find_command, FigureSpec, REGISTRY};
pub use report::{
    classification_header, format_breakdown_table, format_classification_row, format_speedup_table,
    format_traffic_table, gmean,
};
pub use runner::{run_app, run_app_profiled, speedup_curve, ExperimentPoint, RunRequest};
