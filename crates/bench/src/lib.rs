//! Experiment harness: runs the nine benchmarks under the four schedulers
//! at several core counts and prints the tables and series behind every
//! figure of the paper's evaluation.
//!
//! The harness binaries (one per table/figure, see DESIGN.md's
//! per-experiment index) are thin wrappers over [`runner`] and [`report`].

pub mod cli;
pub mod report;
pub mod runner;

pub use cli::HarnessArgs;
pub use report::{
    classification_header, format_breakdown_table, format_classification_row, format_speedup_table,
    format_traffic_table, gmean,
};
pub use runner::{run_app, run_app_profiled, speedup_curve, ExperimentPoint, RunRequest};
