//! Experiment harness for the reproduction's evaluation (Sections V–VI of
//! the paper): runs the nine benchmarks under the four schedulers at several
//! core counts and prints the tables and series behind every figure.
//!
//! The crate splits into these layers:
//!
//! * [`runner`] — describing and executing one simulation point
//!   ([`RunRequest`] → [`swarm_sim::RunStats`]), plus the hand-written
//!   serial sweep used as the determinism reference;
//! * [`pool`] — the parallel experiment runner: a dynamic work-sharing
//!   thread pool ([`Pool`]) that executes whole scheduler × app × core-count
//!   matrices across OS threads and joins results in deterministic request
//!   order;
//! * [`report`] — plain-text table formatting matching the paper's figures;
//! * [`figures`] — the body of every figure/table command, parameterized by
//!   [`HarnessArgs`] (`--cores`, `--scale`, `--seed`, `--apps`,
//!   `--schedulers`, `--jobs`, `--on-error`);
//! * [`registry`] — the name → figure table behind the unified `swarm`
//!   binary (`swarm list`, `swarm fig2 ...`) and the legacy per-figure shim
//!   binaries (see `REPRODUCING.md` in the repository root for the full
//!   index).
//!
//! Failure handling: every point runs through [`runner::run_point_result`],
//! which converts panics and typed simulator errors into [`RunError`]
//! values; the [`Pool`]'s [`FailurePolicy`] decides whether a failure stops
//! the matrix (`FailFast`, the default), lets the rest finish (`CollectAll`,
//! rendering failed points as `n/a` cells), or retries. Commands exit with
//! the codes in [`exit_code`].

#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod pool;
pub mod registry;
pub mod report;
pub mod runner;

/// Process exit codes shared by the `swarm` subcommands and the legacy shim
/// binaries.
pub mod exit_code {
    /// Everything ran and validated.
    pub const OK: i32 = 0;
    /// Bad command line (unknown subcommand, malformed `--plan`, ...).
    pub const USAGE: i32 = 2;
    /// Some simulation points failed; the surviving results were printed
    /// with `n/a` cells for the failed points.
    pub const PARTIAL: i32 = 3;
    /// The chaos battery found a contract violation (a fault made a run
    /// hang, panic, or go nondeterministic instead of failing typed).
    pub const CHAOS: i32 = 4;
}

pub use cli::{ExtraFlag, HarnessArgs, ListArg, UsageError};
pub use pool::{
    CurveGroup, CurveSpec, FailurePolicy, LabeledCurve, PointResult, Pool, ResultCurve, StatsResult,
};
pub use registry::{find as find_command, FigureSpec, REGISTRY};
pub use report::{
    classification_header, format_breakdown_table, format_breakdown_table_results,
    format_classification_row, format_speedup_table, format_speedup_table_results,
    format_traffic_queueing_table_results, format_traffic_table, format_traffic_table_results,
    gmean,
};
pub use runner::{
    run_app, run_app_profiled, run_point_result, run_point_result_observed, speedup_curve,
    ExperimentPoint, RunError, RunRequest,
};
