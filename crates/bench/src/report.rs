//! Plain-text table formatting for the harness binaries, matching the
//! quantities the paper's figures plot.

use spatial_hints::{AccessClass, AccessClassification};
use swarm_noc::TrafficClass;
use swarm_sim::RunStats;

use crate::pool::{ResultCurve, StatsResult};
use crate::runner::ExperimentPoint;

/// Geometric mean of a slice of positive values (0 if empty).
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Format a speedup-vs-cores table: one row per core count, one column per
/// labelled series (the layout of Fig. 2a / Fig. 4 / Fig. 7 / Fig. 10).
pub fn format_speedup_table(series: &[(String, Vec<ExperimentPoint>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>8}", "cores"));
    for (label, _) in series {
        out.push_str(&format!("{label:>14}"));
    }
    out.push('\n');
    if let Some((_, first)) = series.first() {
        for (i, point) in first.iter().enumerate() {
            out.push_str(&format!("{:>8}", point.request.cores));
            for (_, points) in series {
                let speedup = points.get(i).map(|p| p.speedup).unwrap_or(f64::NAN);
                out.push_str(&format!("{speedup:>14.2}"));
            }
            out.push('\n');
        }
    }
    out
}

/// [`format_speedup_table`] over Result-typed curves: a failed point renders
/// as an `n/a` cell instead of aborting the figure, and for an all-`Ok`
/// input the output is byte-identical to the legacy formatter.
pub fn format_speedup_table_results(series: &[ResultCurve]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>8}", "cores"));
    for (label, _) in series {
        out.push_str(&format!("{label:>14}"));
    }
    out.push('\n');
    if let Some((_, first)) = series.first() {
        for (i, slot) in first.iter().enumerate() {
            // Every slot knows its core count: a failed one via the request
            // embedded in its error.
            let cores = match slot {
                Ok(point) => point.request.cores,
                Err(err) => err.request().cores,
            };
            out.push_str(&format!("{cores:>8}"));
            for (_, points) in series {
                match points.get(i) {
                    Some(Ok(point)) => out.push_str(&format!("{:>14.2}", point.speedup)),
                    _ => out.push_str(&format!("{:>14}", "n/a")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Format a cycle-breakdown table normalized to the first entry's total
/// (the layout of Fig. 2b / Fig. 5a / Fig. 8a / Fig. 11).
pub fn format_breakdown_table(entries: &[(String, RunStats)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "scheduler", "total", "commit", "abort", "spill", "stall", "empty"
    ));
    let baseline_total = entries.first().map(|(_, s)| s.breakdown.total().max(1)).unwrap_or(1);
    for (label, stats) in entries {
        let b = stats.breakdown;
        let norm = |v: u64| v as f64 / baseline_total as f64;
        out.push_str(&format!(
            "{:>12}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}\n",
            label,
            norm(b.total()),
            norm(b.committed),
            norm(b.aborted),
            norm(b.spill),
            norm(b.stall),
            norm(b.empty)
        ));
    }
    out
}

/// [`format_breakdown_table`] over Result-typed rows: a failed row renders
/// as `n/a` cells. Normalization uses the first `Ok` row's total, so for an
/// all-`Ok` input the output is byte-identical to the legacy formatter.
pub fn format_breakdown_table_results(entries: &[(String, StatsResult)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "scheduler", "total", "commit", "abort", "spill", "stall", "empty"
    ));
    let baseline_total = entries
        .iter()
        .find_map(|(_, r)| r.as_ref().ok())
        .map(|s| s.breakdown.total().max(1))
        .unwrap_or(1);
    for (label, result) in entries {
        match result {
            Ok(stats) => {
                let b = stats.breakdown;
                let norm = |v: u64| v as f64 / baseline_total as f64;
                out.push_str(&format!(
                    "{:>12}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}\n",
                    label,
                    norm(b.total()),
                    norm(b.committed),
                    norm(b.aborted),
                    norm(b.spill),
                    norm(b.stall),
                    norm(b.empty)
                ));
            }
            Err(_) => out.push_str(&na_row(label, 6, 10)),
        }
    }
    out
}

/// Format a NoC-traffic breakdown table normalized to the first entry's
/// total (the layout of Fig. 5b / Fig. 8b).
pub fn format_traffic_table(entries: &[(String, RunStats)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "scheduler", "total", "mem", "abort", "task", "gvt"
    ));
    let baseline_total = entries.first().map(|(_, s)| s.traffic.total().max(1)).unwrap_or(1);
    for (label, stats) in entries {
        let t = stats.traffic;
        let norm = |v: u64| v as f64 / baseline_total as f64;
        out.push_str(&format!(
            "{:>12}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}\n",
            label,
            norm(t.total()),
            norm(t.of(TrafficClass::Memory)),
            norm(t.of(TrafficClass::Abort)),
            norm(t.of(TrafficClass::Task)),
            norm(t.of(TrafficClass::Gvt))
        ));
    }
    out
}

/// [`format_traffic_table`] over Result-typed rows: a failed row renders as
/// `n/a` cells, normalization uses the first `Ok` row's total, and an
/// all-`Ok` input matches the legacy formatter byte for byte.
pub fn format_traffic_table_results(entries: &[(String, StatsResult)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "scheduler", "total", "mem", "abort", "task", "gvt"
    ));
    let baseline_total = entries
        .iter()
        .find_map(|(_, r)| r.as_ref().ok())
        .map(|s| s.traffic.total().max(1))
        .unwrap_or(1);
    for (label, result) in entries {
        match result {
            Ok(stats) => {
                let t = stats.traffic;
                let norm = |v: u64| v as f64 / baseline_total as f64;
                out.push_str(&format!(
                    "{:>12}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}\n",
                    label,
                    norm(t.total()),
                    norm(t.of(TrafficClass::Memory)),
                    norm(t.of(TrafficClass::Abort)),
                    norm(t.of(TrafficClass::Task)),
                    norm(t.of(TrafficClass::Gvt))
                ));
            }
            Err(_) => out.push_str(&na_row(label, 5, 10)),
        }
    }
    out
}

/// [`format_traffic_table_results`] extended with a `queue` column: the
/// NoC queueing cycles each run accumulated under the contention model,
/// normalized to the first `Ok` row's queueing cycles (so the first
/// scheduler reads 1.000 and the others read their relative queueing
/// cost). Only used when `--noc contention` is active; the analytic
/// figures keep the pinned five-column formatter above.
pub fn format_traffic_queueing_table_results(entries: &[(String, StatsResult)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}\n",
        "scheduler", "total", "mem", "abort", "task", "gvt", "queue"
    ));
    let first_ok = entries.iter().find_map(|(_, r)| r.as_ref().ok());
    let baseline_total = first_ok.map(|s| s.traffic.total().max(1)).unwrap_or(1);
    let baseline_queue = first_ok.map(|s| s.noc_queue_cycles.max(1)).unwrap_or(1);
    for (label, result) in entries {
        match result {
            Ok(stats) => {
                let t = stats.traffic;
                let norm = |v: u64| v as f64 / baseline_total as f64;
                out.push_str(&format!(
                    "{:>12}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}\n",
                    label,
                    norm(t.total()),
                    norm(t.of(TrafficClass::Memory)),
                    norm(t.of(TrafficClass::Abort)),
                    norm(t.of(TrafficClass::Task)),
                    norm(t.of(TrafficClass::Gvt)),
                    stats.noc_queue_cycles as f64 / baseline_queue as f64
                ));
            }
            Err(_) => out.push_str(&na_row(label, 6, 10)),
        }
    }
    out
}

/// One table row of `n/a` cells for a failed entry.
fn na_row(label: &str, columns: usize, width: usize) -> String {
    let mut row = format!("{label:>12}");
    for _ in 0..columns {
        row.push_str(&format!("{:>width$}", "n/a"));
    }
    row.push('\n');
    row
}

/// Format an access-classification table (Fig. 3 / Fig. 6): fractions per
/// category, optionally normalized to a baseline total access count.
pub fn format_classification_row(
    label: &str,
    c: &AccessClassification,
    baseline_total: u64,
) -> String {
    let denom = baseline_total.max(1) as f64;
    let mut row = format!("{label:>12}");
    for class in AccessClass::ALL {
        row.push_str(&format!("{:>12.3}", c.of(class) as f64 / denom));
    }
    row.push_str(&format!("{:>12.3}", c.total() as f64 / denom));
    row.push('\n');
    row
}

/// Header row matching [`format_classification_row`].
pub fn classification_header() -> String {
    let mut row = format!("{:>12}", "app");
    for class in AccessClass::ALL {
        row.push_str(&format!("{:>12}", class.label()));
    }
    row.push_str(&format!("{:>12}\n", "total"));
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;
    use crate::runner::RunRequest;
    use spatial_hints::Scheduler;
    use swarm_apps::{AppSpec, BenchmarkId, InputScale};

    #[test]
    fn gmean_of_identical_values_is_the_value() {
        assert!((gmean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
        // gmean(1, 100) = 10
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_and_traffic_tables_render() {
        let entries = Pool::new(2).run_labeled(vec![(
            "Random".to_string(),
            RunRequest::new(
                AppSpec::coarse(BenchmarkId::Nocsim),
                Scheduler::Random,
                4,
                InputScale::Tiny,
            ),
        )]);
        let b = format_breakdown_table(&entries);
        assert!(b.contains("Random"));
        assert!(b.contains("commit"));
        let t = format_traffic_table(&entries);
        assert!(t.contains("gvt"));
    }

    #[test]
    fn speedup_table_renders_pool_curves() {
        let curves = Pool::new(2).speedup_curves(
            &[("Hints".to_string(), AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Hints)],
            &[1, 4],
            InputScale::Tiny,
            0xF1605,
        );
        let table = format_speedup_table(&curves);
        assert!(table.contains("cores"));
        assert!(table.contains("Hints"));
        assert_eq!(table.lines().count(), 3, "header + one row per core count");
    }

    #[test]
    fn result_formatters_match_legacy_output_when_everything_passes() {
        let pool = Pool::new(2);
        let series =
            [("Hints".to_string(), AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Hints)];
        let curves = pool.speedup_curves(&series, &[1, 4], InputScale::Tiny, 0xF1605);
        let try_curves = pool.try_speedup_curves(&series, &[1, 4], InputScale::Tiny, 0xF1605);
        assert_eq!(format_speedup_table(&curves), format_speedup_table_results(&try_curves));

        let entries = vec![(
            "Random".to_string(),
            RunRequest::new(
                AppSpec::coarse(BenchmarkId::Nocsim),
                Scheduler::Random,
                4,
                InputScale::Tiny,
            ),
        )];
        let legacy = pool.run_labeled(entries.clone());
        let tried = pool.try_run_labeled(entries);
        assert_eq!(format_breakdown_table(&legacy), format_breakdown_table_results(&tried));
        assert_eq!(format_traffic_table(&legacy), format_traffic_table_results(&tried));
    }

    #[test]
    fn failed_points_render_as_na_cells() {
        use crate::pool::FailurePolicy;
        use swarm_sim::{FaultEvent, FaultKind};
        let doom = FaultEvent { at_cycle: 0, kind: FaultKind::LostTaskWake { ts: 1 } };
        let pool = Pool::new(2).with_policy(FailurePolicy::CollectAll);
        let entries = vec![
            (
                "Random".to_string(),
                RunRequest::new(
                    AppSpec::coarse(BenchmarkId::Nocsim),
                    Scheduler::Random,
                    4,
                    InputScale::Tiny,
                ),
            ),
            (
                "Hints".to_string(),
                RunRequest::new(
                    AppSpec::coarse(BenchmarkId::Nocsim),
                    Scheduler::Hints,
                    4,
                    InputScale::Tiny,
                )
                .with_fault(doom),
            ),
        ];
        let tried = pool.try_run_labeled(entries);
        assert!(tried[1].1.is_err());
        let b = format_breakdown_table_results(&tried);
        let hints_row = b.lines().find(|l| l.contains("Hints")).expect("a Hints row");
        assert_eq!(hints_row.matches("n/a").count(), 6, "{hints_row}");
        let t = format_traffic_table_results(&tried);
        let hints_row = t.lines().find(|l| l.contains("Hints")).expect("a Hints row");
        assert_eq!(hints_row.matches("n/a").count(), 5, "{hints_row}");

        // And a speedup table whose faulted series fails its baseline.
        let curves = pool.try_speedup_curves(
            &[("Hints".to_string(), AppSpec::coarse(BenchmarkId::Nocsim), Scheduler::Hints)],
            &[1, 4],
            InputScale::Tiny,
            0xF1605,
        );
        let mut curves = curves;
        let err = crate::runner::RunError::Skipped {
            request: RunRequest::new(
                AppSpec::coarse(BenchmarkId::Nocsim),
                Scheduler::Hints,
                4,
                InputScale::Tiny,
            ),
        };
        curves[0].1[1] = Err(err);
        let table = format_speedup_table_results(&curves);
        assert!(table.lines().nth(2).expect("4-core row").contains("n/a"), "{table}");
    }

    #[test]
    fn classification_table_has_all_columns() {
        let header = classification_header();
        for class in AccessClass::ALL {
            assert!(header.contains(class.label()));
        }
        let row = format_classification_row("x", &AccessClassification::default(), 10);
        assert!(row.starts_with(&format!("{:>12}", "x")));
    }
}
