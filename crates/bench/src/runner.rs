//! Running one (benchmark, scheduler, core count) point and sweeps thereof.

use std::fmt;

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, InputScale};
use swarm_sim::{BuildError, FaultEvent, FaultPlan, RunStats, Sim};
use swarm_types::{NocModel, SimError, SystemConfig};

/// Everything needed to run one simulation point.
///
/// Equal requests produce equal results (runs are deterministic), which is
/// what lets [`crate::Pool`] deduplicate repeated points inside a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunRequest {
    /// Which application (and granularity).
    pub spec: AppSpec,
    /// Which scheduler.
    pub scheduler: Scheduler,
    /// Number of simulated cores.
    pub cores: u32,
    /// Input scale.
    pub scale: InputScale,
    /// Workload seed (the same seed produces the same input for every
    /// scheduler and core count, as the paper's methodology requires).
    pub seed: u64,
    /// Optional deterministic fault to inject into the run (see
    /// [`swarm_sim::fault`]). `None` — the case for every figure sweep —
    /// leaves the simulation byte-identical to a fault-free build; the
    /// chaos/robustness suites set it to stress the pipeline.
    pub fault: Option<FaultEvent>,
    /// Which network model to simulate under. `Analytic` — the case for
    /// every pinned figure — is the paper's fixed-latency mesh;
    /// `Contention` adds per-link queueing (`--noc contention`).
    pub noc: NocModel,
}

impl RunRequest {
    /// A convenience constructor with the default seed, no fault, and the
    /// analytic network model.
    pub fn new(spec: AppSpec, scheduler: Scheduler, cores: u32, scale: InputScale) -> Self {
        RunRequest {
            spec,
            scheduler,
            cores,
            scale,
            seed: 0xF1605,
            fault: None,
            noc: NocModel::Analytic,
        }
    }

    /// The same request with a different workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same request with `fault` injected into the run.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultEvent) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The same request under the given network model.
    #[must_use]
    pub fn with_noc(mut self, noc: NocModel) -> Self {
        self.noc = noc;
        self
    }
}

/// Why one simulation point has no statistics: the typed, per-point failure
/// the pool records instead of tearing the whole process down (see
/// [`crate::FailurePolicy`]). Every variant carries the offending request, so
/// reports can name the exact point, and `Display` mirrors the harness's
/// historical panic messages.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The request does not describe a valid simulation.
    InvalidPoint {
        /// The offending request.
        request: RunRequest,
        /// What the builder rejected.
        error: BuildError,
    },
    /// The simulation ran but failed with a typed error (validation
    /// mismatch, deadlock, budget overrun, ...).
    Sim {
        /// The offending request.
        request: RunRequest,
        /// The simulator's error.
        error: SimError,
    },
    /// The simulation panicked (a bug in an app or the engine, surfaced as
    /// a value instead of unwinding through the pool).
    Panicked {
        /// The offending request.
        request: RunRequest,
        /// Best-effort panic message.
        message: String,
    },
    /// The point was never run: an earlier failure aborted the matrix under
    /// [`crate::FailurePolicy::FailFast`].
    Skipped {
        /// The request that was not run.
        request: RunRequest,
    },
}

impl RunError {
    /// The request the failure belongs to.
    pub fn request(&self) -> &RunRequest {
        match self {
            RunError::InvalidPoint { request, .. }
            | RunError::Sim { request, .. }
            | RunError::Panicked { request, .. }
            | RunError::Skipped { request } => request,
        }
    }

    /// Whether this error is a root cause (as opposed to a point skipped as
    /// a *consequence* of another point's failure).
    pub fn is_root_cause(&self) -> bool {
        !matches!(self, RunError::Skipped { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.request();
        let at = format!("{} under {} at {} cores", r.spec.name(), r.scheduler, r.cores);
        match self {
            RunError::InvalidPoint { error, .. } => {
                write!(f, "{at} is not a valid simulation: {error}")
            }
            RunError::Sim { error, .. } => write!(f, "{at} failed: {error}"),
            RunError::Panicked { message, .. } => write!(f, "{at} panicked: {message}"),
            RunError::Skipped { .. } => {
                write!(f, "{at} was skipped after an earlier failure")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// The request that produced this point.
    pub request: RunRequest,
    /// The measured statistics.
    pub stats: RunStats,
    /// Speedup relative to the 1-core baseline of the same app/scale/seed.
    pub speedup: f64,
}

/// Run one point.
///
/// # Panics
///
/// Panics if the simulation fails validation against the serial reference —
/// an experiment must never silently report numbers from a wrong execution.
pub fn run_app(request: RunRequest) -> RunStats {
    run_point(request, false)
}

/// Run one point with access profiling enabled (needed for Fig. 3 / Fig. 6).
///
/// # Panics
///
/// Panics if the simulation fails validation against the serial reference.
pub fn run_app_profiled(request: RunRequest) -> RunStats {
    run_point(request, true)
}

/// Shared single-point entry used by the serial helpers above and legacy
/// callers that want the historical panic-on-failure behavior.
pub(crate) fn run_point(request: RunRequest, profiled: bool) -> RunStats {
    run_point_result(request, profiled).unwrap_or_else(|e| panic!("{e}"))
}

/// Run one point, converting every failure mode — an invalid description, a
/// typed simulator error, even a panic inside the app or engine — into a
/// structured [`RunError`] instead of unwinding.
pub fn run_point_result(request: RunRequest, profiled: bool) -> Result<RunStats, RunError> {
    run_point_guarded(request, profiled, |builder| builder)
}

/// Like [`run_point_result`], but with `observer` attached to the engine so
/// the caller sees simulation progress ([`swarm_sim::SimObserver`] hooks)
/// while the point runs. `swarm serve` uses this for `"progress":true`
/// submissions.
pub fn run_point_result_observed(
    request: RunRequest,
    profiled: bool,
    observer: impl swarm_sim::SimObserver + 'static,
) -> Result<RunStats, RunError> {
    run_point_guarded(request, profiled, |builder| builder.observer(observer))
}

/// The shared guarded runner: builds the machine for `request`, lets
/// `attach` augment the builder (observers), and converts panics into
/// [`RunError::Panicked`].
fn run_point_guarded(
    request: RunRequest,
    profiled: bool,
    attach: impl FnOnce(swarm_sim::SimBuilder) -> swarm_sim::SimBuilder,
) -> Result<RunStats, RunError> {
    let guarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The machine description: plain `.cores(n)` for the analytic
        // model, a full `SystemConfig` when contention is on (the builder
        // rejects combining `.cores` with `.config`).
        let machine = Sim::builder();
        let machine = match request.noc {
            NocModel::Analytic => machine.cores(request.cores),
            NocModel::Contention => {
                let mut cfg = SystemConfig::with_cores(request.cores);
                cfg.noc.model = NocModel::Contention;
                machine.config(cfg)
            }
        };
        let mut builder = attach(
            machine
                .app_boxed(request.spec.build(request.scale, request.seed))
                .scheduler(request.scheduler)
                .profiling(profiled),
        );
        if let Some(fault) = request.fault {
            builder = builder.fault_plan(FaultPlan::from(fault));
        }
        let mut engine =
            builder.build().map_err(|error| RunError::InvalidPoint { request, error })?;
        engine.run().map_err(|error| RunError::Sim { request, error })
    }));
    match guarded {
        Ok(result) => result,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Err(RunError::Panicked { request, message })
        }
    }
}

/// Sweep core counts for one app/scheduler and return speedups relative to
/// the 1-core run of the same configuration.
///
/// This is the hand-written *serial reference path*: [`crate::Pool`] sweeps
/// are defined to produce byte-identical results to it at any `--jobs`
/// level, and `tests/parallel_runner.rs` compares the two.
pub fn speedup_curve(
    spec: AppSpec,
    scheduler: Scheduler,
    core_counts: &[u32],
    scale: InputScale,
    seed: u64,
) -> Vec<ExperimentPoint> {
    let baseline = run_app(RunRequest::new(spec, scheduler, 1, scale).with_seed(seed));
    core_counts
        .iter()
        .map(|&cores| {
            let request = RunRequest::new(spec, scheduler, cores, scale).with_seed(seed);
            let stats = if cores == 1 { baseline.clone() } else { run_app(request) };
            let speedup = stats.speedup_over(&baseline);
            ExperimentPoint { request, stats, speedup }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_apps::BenchmarkId;

    #[test]
    fn run_app_produces_stats() {
        let stats = run_app(RunRequest::new(
            AppSpec::coarse(BenchmarkId::Sssp),
            Scheduler::Hints,
            4,
            InputScale::Tiny,
        ));
        assert!(stats.tasks_committed > 0);
        assert!(stats.runtime_cycles > 0);
    }

    #[test]
    fn profiled_run_collects_accesses() {
        let stats = run_app_profiled(RunRequest::new(
            AppSpec::coarse(BenchmarkId::Kmeans),
            Scheduler::Hints,
            4,
            InputScale::Tiny,
        ));
        assert!(!stats.committed_accesses.is_empty());
    }

    #[test]
    fn run_point_result_reports_typed_failures_without_panicking() {
        use swarm_sim::{FaultEvent, FaultKind};
        use swarm_types::SimError;
        // A lost task wake wedges the run; the Result path must hand back a
        // typed Sim error naming the point, not unwind.
        let request = RunRequest::new(
            AppSpec::coarse(BenchmarkId::Sssp),
            Scheduler::Hints,
            4,
            InputScale::Tiny,
        )
        .with_fault(FaultEvent { at_cycle: 0, kind: FaultKind::LostTaskWake { ts: 1 } });
        let err = run_point_result(request, false).expect_err("a lost wake must fail");
        assert!(matches!(&err, RunError::Sim { error: SimError::Deadlock { .. }, .. }), "{err}");
        assert_eq!(err.request(), &request);
        assert!(err.is_root_cause());
        let msg = err.to_string();
        assert!(msg.contains("sssp under Hints at 4 cores failed:"), "{msg}");
    }

    #[test]
    fn run_errors_display_like_the_legacy_panics() {
        let request = RunRequest::new(
            AppSpec::coarse(BenchmarkId::Des),
            Scheduler::Random,
            8,
            InputScale::Tiny,
        );
        let cases: Vec<(RunError, &str)> = vec![
            (
                RunError::InvalidPoint { request, error: swarm_sim::BuildError::ZeroTaskLimit },
                "is not a valid simulation:",
            ),
            (
                RunError::Sim { request, error: swarm_types::SimError::TaskLimitExceeded(10) },
                "failed:",
            ),
            (RunError::Panicked { request, message: "boom".into() }, "panicked: boom"),
            (RunError::Skipped { request }, "skipped"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.starts_with("des under Random at 8 cores"), "{msg}");
            assert!(msg.contains(needle), "{msg}");
        }
    }

    #[test]
    fn speedup_curve_is_relative_to_one_core() {
        let points = speedup_curve(
            AppSpec::coarse(BenchmarkId::Des),
            Scheduler::Hints,
            &[1, 4],
            InputScale::Tiny,
            7,
        );
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points[1].speedup > 0.0);
    }
}
