//! Running one (benchmark, scheduler, core count) point and sweeps thereof.

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, InputScale};
use swarm_sim::{RunStats, Sim};

/// Everything needed to run one simulation point.
///
/// Equal requests produce equal results (runs are deterministic), which is
/// what lets [`crate::Pool`] deduplicate repeated points inside a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunRequest {
    /// Which application (and granularity).
    pub spec: AppSpec,
    /// Which scheduler.
    pub scheduler: Scheduler,
    /// Number of simulated cores.
    pub cores: u32,
    /// Input scale.
    pub scale: InputScale,
    /// Workload seed (the same seed produces the same input for every
    /// scheduler and core count, as the paper's methodology requires).
    pub seed: u64,
}

impl RunRequest {
    /// A convenience constructor with the default seed.
    pub fn new(spec: AppSpec, scheduler: Scheduler, cores: u32, scale: InputScale) -> Self {
        RunRequest { spec, scheduler, cores, scale, seed: 0xF1605 }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// The request that produced this point.
    pub request: RunRequest,
    /// The measured statistics.
    pub stats: RunStats,
    /// Speedup relative to the 1-core baseline of the same app/scale/seed.
    pub speedup: f64,
}

/// Run one point.
///
/// # Panics
///
/// Panics if the simulation fails validation against the serial reference —
/// an experiment must never silently report numbers from a wrong execution.
pub fn run_app(request: RunRequest) -> RunStats {
    run_point(request, false)
}

/// Run one point with access profiling enabled (needed for Fig. 3 / Fig. 6).
///
/// # Panics
///
/// Panics if the simulation fails validation against the serial reference.
pub fn run_app_profiled(request: RunRequest) -> RunStats {
    run_point(request, true)
}

/// Shared single-point entry used by both the serial helpers above and the
/// thread-pool workers in [`crate::Pool`].
pub(crate) fn run_point(request: RunRequest, profiled: bool) -> RunStats {
    let mut engine = Sim::builder()
        .cores(request.cores)
        .app_boxed(request.spec.build(request.scale, request.seed))
        .scheduler(request.scheduler)
        .profiling(profiled)
        .build()
        .unwrap_or_else(|e| {
            panic!(
                "{} under {} at {} cores is not a valid simulation: {e}",
                request.spec.name(),
                request.scheduler,
                request.cores
            )
        });
    engine.run().unwrap_or_else(|e| {
        panic!(
            "{} under {} at {} cores failed: {e}",
            request.spec.name(),
            request.scheduler,
            request.cores
        )
    })
}

/// Sweep core counts for one app/scheduler and return speedups relative to
/// the 1-core run of the same configuration.
///
/// This is the hand-written *serial reference path*: [`crate::Pool`] sweeps
/// are defined to produce byte-identical results to it at any `--jobs`
/// level, and `tests/parallel_runner.rs` compares the two.
pub fn speedup_curve(
    spec: AppSpec,
    scheduler: Scheduler,
    core_counts: &[u32],
    scale: InputScale,
    seed: u64,
) -> Vec<ExperimentPoint> {
    let baseline = run_app(RunRequest { spec, scheduler, cores: 1, scale, seed });
    core_counts
        .iter()
        .map(|&cores| {
            let request = RunRequest { spec, scheduler, cores, scale, seed };
            let stats = if cores == 1 { baseline.clone() } else { run_app(request) };
            let speedup = stats.speedup_over(&baseline);
            ExperimentPoint { request, stats, speedup }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_apps::BenchmarkId;

    #[test]
    fn run_app_produces_stats() {
        let stats = run_app(RunRequest::new(
            AppSpec::coarse(BenchmarkId::Sssp),
            Scheduler::Hints,
            4,
            InputScale::Tiny,
        ));
        assert!(stats.tasks_committed > 0);
        assert!(stats.runtime_cycles > 0);
    }

    #[test]
    fn profiled_run_collects_accesses() {
        let stats = run_app_profiled(RunRequest::new(
            AppSpec::coarse(BenchmarkId::Kmeans),
            Scheduler::Hints,
            4,
            InputScale::Tiny,
        ));
        assert!(!stats.committed_accesses.is_empty());
    }

    #[test]
    fn speedup_curve_is_relative_to_one_core() {
        let points = speedup_curve(
            AppSpec::coarse(BenchmarkId::Des),
            Scheduler::Hints,
            &[1, 4],
            InputScale::Tiny,
            7,
        );
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points[1].speedup > 0.0);
    }
}
