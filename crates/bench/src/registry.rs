//! The figure registry: one table mapping subcommand names to the figure
//! entry points in [`crate::figures`].
//!
//! The unified `swarm` binary dispatches subcommands through
//! [`find`]/[`REGISTRY`], and each legacy per-figure binary is a two-line
//! shim over [`run_shim`] — so adding a figure means adding one module and
//! one table row, not a new binary with its own argument plumbing.

use crate::figures;

/// One registered figure/table command.
pub struct FigureSpec {
    /// Subcommand name (`swarm <name> ...`).
    pub name: &'static str,
    /// Alternative names accepted by [`find`] — in particular the legacy
    /// standalone binary's name when it differs from the subcommand
    /// (`ablation_lb`, `bench_snapshot`), so [`run_shim`] and older
    /// command lines keep resolving.
    pub aliases: &'static [&'static str],
    /// One-line description shown by `swarm list`.
    pub about: &'static str,
    /// The entry point; receives the arguments after the subcommand name
    /// and returns the process exit code (see [`crate::exit_code`]).
    pub run: fn(&[String]) -> i32,
}

/// Every figure/table command, in the order `swarm list` prints them.
pub const REGISTRY: &[FigureSpec] = &[
    FigureSpec {
        name: "fig2",
        aliases: &[],
        about: "motivation: des speedups and cycle breakdown under all four schedulers",
        run: figures::fig2::run,
    },
    FigureSpec {
        name: "fig3",
        aliases: &[],
        about: "architecture-independent classification of committed memory accesses",
        run: figures::fig3::run,
    },
    FigureSpec {
        name: "fig4",
        aliases: &[],
        about: "speedup of Random/Stealing/Hints from 1 to N cores, per application",
        run: figures::fig4::run,
    },
    FigureSpec {
        name: "fig5",
        aliases: &[],
        about: "core-cycle and NoC-traffic breakdowns at the largest core count",
        run: figures::fig5::run,
    },
    FigureSpec {
        name: "fig6",
        aliases: &[],
        about: "access classification of coarse- vs fine-grain task versions",
        run: figures::fig6::run,
    },
    FigureSpec {
        name: "fig7",
        aliases: &[],
        about: "speedup of fine- vs coarse-grain versions under each scheduler",
        run: figures::fig7::run,
    },
    FigureSpec {
        name: "fig8",
        aliases: &[],
        about: "fine-grain cycle and traffic breakdowns, normalized to CG-Random",
        run: figures::fig8::run,
    },
    FigureSpec {
        name: "fig10",
        aliases: &[],
        about: "speedup of all four schedulers with best task granularity per scheme",
        run: figures::fig10::run,
    },
    FigureSpec {
        name: "fig11",
        aliases: &[],
        about: "cycle breakdown where the load balancer matters (des/nocsim/silo/kmeans)",
        run: figures::fig11::run,
    },
    FigureSpec {
        name: "table1",
        aliases: &[],
        about: "Table I: benchmark characteristics and 1-core run times",
        run: figures::table1::run,
    },
    FigureSpec {
        name: "table2",
        aliases: &[],
        about: "beyond-Table-I workloads (maxflow/triangle/kvstore) characterised and swept",
        run: figures::table2::run,
    },
    FigureSpec {
        name: "sysconfig",
        aliases: &[],
        about: "Table II: configuration of the simulated 256-core system",
        run: figures::sysconfig::run,
    },
    FigureSpec {
        name: "summary",
        aliases: &[],
        about: "Section VI-B gmean speedups and efficiency metrics (supports --json)",
        run: figures::summary::run,
    },
    FigureSpec {
        name: "ablation-lb",
        aliases: &["ablation_lb"],
        about: "Section VI-A ablation: committed-cycles vs idle-count load-balance signal",
        run: figures::ablation_lb::run,
    },
    FigureSpec {
        name: "bench",
        aliases: &["bench_snapshot"],
        about: "microbenchmark snapshot of the memory-system hot path (writes JSON)",
        run: figures::bench_snapshot::run,
    },
    FigureSpec {
        name: "chaos",
        aliases: &[],
        about: "fault-injection battery: every fault must fail typed or complete clean",
        run: figures::chaos::run,
    },
    FigureSpec {
        name: "noc-profile",
        aliases: &["noc_profile"],
        about: "per-link queueing heat tables under the contention NoC model",
        run: figures::noc_profile::run,
    },
    FigureSpec {
        name: "serve",
        aliases: &[],
        about: "long-lived simulation service with a content-addressed result cache",
        run: figures::serve::run,
    },
    FigureSpec {
        name: "bench-serve",
        aliases: &["bench_serve"],
        about: "load-generate against an in-process serve stack; commits req/s and hit-rate series",
        run: figures::bench_serve::run,
    },
];

/// Look a command up by name or alias.
pub fn find(name: &str) -> Option<&'static FigureSpec> {
    REGISTRY.iter().find(|spec| spec.name == name || spec.aliases.contains(&name))
}

/// Entry point for the legacy shim binaries: forward the process arguments
/// to the registered command `name` and exit with its code when nonzero.
///
/// # Panics
///
/// Panics if `name` is not in the registry (a shim referencing a retired
/// command is a bug, not a user error).
pub fn run_shim(name: &str) {
    let spec = find(name).unwrap_or_else(|| panic!("no registered command named '{name}'"));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = (spec.run)(&args);
    if code != crate::exit_code::OK {
        std::process::exit(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_and_alias_is_reachable() {
        // The shim binaries call run_shim with their legacy names, which
        // are either the subcommand name itself or one of its aliases; all
        // of them must resolve to the same spec.
        for spec in REGISTRY {
            assert!(find(spec.name).is_some(), "{} not found", spec.name);
            for alias in spec.aliases {
                assert_eq!(find(alias).unwrap().name, spec.name);
            }
        }
        assert!(find("fig9").is_none(), "the paper has no reproducible fig9");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = REGISTRY
            .iter()
            .flat_map(|s| std::iter::once(s.name).chain(s.aliases.iter().copied()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate command names in the registry");
    }

    #[test]
    fn registry_covers_all_fifteen_legacy_binaries() {
        // Every legacy binary name (the files in src/bin/) must resolve,
        // whether it is a canonical subcommand name or an alias.
        let legacy = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "table1",
            "table2",
            "sysconfig",
            "summary",
            "ablation_lb",
            "bench_snapshot",
        ];
        assert_eq!(legacy.len(), 15);
        for name in legacy {
            assert!(find(name).is_some(), "{name} missing from the registry");
        }
        // The registry carries the fifteen legacy commands plus `chaos`,
        // `noc-profile`, `serve`, and `bench-serve` (which never had
        // standalone binaries).
        assert_eq!(REGISTRY.len(), 19);
        assert!(find("chaos").is_some());
        assert_eq!(find("noc_profile").unwrap().name, "noc-profile");
        assert!(find("serve").is_some());
        assert_eq!(find("bench_serve").unwrap().name, "bench-serve");
    }
}
