//! Minimal command-line parsing shared by every harness entry point (the
//! unified `swarm` binary's subcommands and the legacy per-figure shims).
//!
//! Every figure command accepts:
//!
//! * `--cores 1,4,16,64` — the core counts to sweep (default `1,4,16,64`);
//! * `--scale tiny|small|medium` — workload size (default `small`);
//! * `--seed N` — workload seed (default fixed);
//! * `--apps a,b,c` — restrict to a subset of benchmarks where applicable;
//! * `--schedulers random,stealing,hints,lbhints` — restrict the scheduler
//!   comparison;
//! * `--jobs N` — worker threads for the experiment matrix (default: all
//!   available hardware threads; `--jobs 1` forces the serial path);
//! * `--on-error fail|collect|retry:N` — what the pool does when a point
//!   fails (default `fail`: stop promptly; `collect` runs everything and
//!   reports `n/a` cells; `retry:N` re-runs a failed point up to N times).

use std::str::FromStr;

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};

use crate::pool::{FailurePolicy, Pool};
use crate::runner::RunRequest;

/// A list-valued flag that remembers whether the user set it explicitly.
///
/// Several figures narrow the default app or scheduler set (`fig4` omits
/// LBHints, `table2` defaults to the beyond-Table-I workloads), but an
/// explicit request must always win — even when it happens to name the
/// default set. This used to be hand-rolled twice (`apps`/`apps_explicit`,
/// `schedulers`/`schedulers_explicit`); [`ListArg`] is the one shared
/// implementation.
///
/// Dereferences to a slice, so `args.apps.iter()`, `.len()` and
/// `.contains(..)` work directly.
#[derive(Debug, Clone)]
pub struct ListArg<T> {
    values: Vec<T>,
    explicit: bool,
}

impl<T: Clone> ListArg<T> {
    /// A default (non-explicit) value.
    pub fn implicit(default: Vec<T>) -> Self {
        ListArg { values: default, explicit: false }
    }

    /// Whether the user set this flag explicitly.
    pub fn is_explicit(&self) -> bool {
        self.explicit
    }

    /// The parsed values, replaced by `figure_default` when the flag was not
    /// given explicitly. An explicit value always wins, even when it names
    /// the global default set.
    pub fn or(&self, figure_default: &[T]) -> Vec<T> {
        if self.explicit {
            self.values.clone()
        } else {
            figure_default.to_vec()
        }
    }

    /// Overwrite with values parsed from a comma-separated flag argument and
    /// mark the flag explicit. Keeps the previous value (and implicitness)
    /// when nothing in `raw` parses, matching the harness's tolerance for
    /// malformed flags.
    fn set_from_csv(&mut self, raw: &str)
    where
        T: FromStr,
    {
        let parsed = parse_csv(raw);
        if !parsed.is_empty() {
            self.values = parsed;
            self.explicit = true;
        }
    }
}

impl<T> std::ops::Deref for ListArg<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.values
    }
}

/// Parse a comma-separated list, dropping elements that fail to parse.
fn parse_csv<T: FromStr>(raw: &str) -> Vec<T> {
    raw.split(',').filter_map(|s| s.trim().parse().ok()).collect()
}

/// Parse an `--on-error` value: `fail`, `collect`, or `retry[:N]` (N defaults
/// to 2 total attempts). Anything else leaves the previous policy in place,
/// matching the harness's tolerance for malformed flags.
fn parse_policy(raw: &str) -> Option<FailurePolicy> {
    match raw.to_ascii_lowercase().as_str() {
        "fail" => Some(FailurePolicy::FailFast),
        "collect" => Some(FailurePolicy::CollectAll),
        "retry" => Some(FailurePolicy::Retry { attempts: 2 }),
        other => {
            let attempts = other.strip_prefix("retry:")?.parse().ok()?;
            Some(FailurePolicy::Retry { attempts })
        }
    }
}

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Core counts to sweep (defaults to 1,4,16,64; the `chaos` command
    /// narrows it via [`HarnessArgs::cores_or`]).
    pub cores: ListArg<u32>,
    /// Workload scale.
    pub scale: InputScale,
    /// Workload seed.
    pub seed: u64,
    /// Benchmarks to run (defaults to the nine of Table I; `table2` defaults
    /// to the beyond-Table-I set via [`HarnessArgs::apps_or`]).
    pub apps: ListArg<BenchmarkId>,
    /// Schedulers to compare (defaults to Random/Stealing/Hints/LBHints;
    /// several figures narrow it via [`HarnessArgs::schedulers_or`]).
    pub schedulers: ListArg<Scheduler>,
    /// Worker threads for the experiment matrix (0 = available parallelism).
    pub jobs: usize,
    /// What the pool does when a point fails (`--on-error`).
    pub policy: FailurePolicy,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            cores: ListArg::implicit(vec![1, 4, 16, 64]),
            scale: InputScale::Small,
            seed: 0xF1605,
            apps: ListArg::implicit(BenchmarkId::TABLE1.to_vec()),
            schedulers: ListArg::implicit(Scheduler::ALL.to_vec()),
            jobs: 0,
            policy: FailurePolicy::FailFast,
        }
    }
}

impl HarnessArgs {
    /// Parse the argument slice a `swarm` subcommand receives (everything
    /// after the subcommand name). Unknown flags are ignored so commands
    /// can add their own (e.g. `summary --json`).
    pub fn parse_args(args: &[String]) -> Self {
        Self::parse_from(args.to_vec())
    }

    /// Parse from an explicit argument vector (for tests).
    pub fn parse_from(args: Vec<String>) -> Self {
        let mut parsed = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--cores" => {
                    if let Some(v) = it.next() {
                        parsed.cores.set_from_csv(&v);
                    }
                }
                "--scale" => {
                    if let Some(v) = it.next() {
                        parsed.scale = match v.to_ascii_lowercase().as_str() {
                            "tiny" => InputScale::Tiny,
                            "medium" => InputScale::Medium,
                            _ => InputScale::Small,
                        };
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next() {
                        if let Ok(seed) = v.parse() {
                            parsed.seed = seed;
                        }
                    }
                }
                "--apps" => {
                    if let Some(v) = it.next() {
                        parsed.apps.set_from_csv(&v);
                    }
                }
                "--jobs" => {
                    if let Some(v) = it.next() {
                        if let Ok(jobs) = v.parse() {
                            parsed.jobs = jobs;
                        }
                    }
                }
                "--schedulers" => {
                    if let Some(v) = it.next() {
                        parsed.schedulers.set_from_csv(&v);
                    }
                }
                "--on-error" => {
                    if let Some(v) = it.next() {
                        if let Some(policy) = parse_policy(&v) {
                            parsed.policy = policy;
                        }
                    }
                }
                _ => {}
            }
        }
        parsed
    }

    /// The largest core count in the sweep (used by the breakdown figures,
    /// which the paper reports at the maximum machine size).
    pub fn max_cores(&self) -> u32 {
        self.cores.iter().copied().max().unwrap_or(1)
    }

    /// The experiment pool honouring `--jobs` and `--on-error`.
    pub fn pool(&self) -> Pool {
        Pool::new(self.jobs).with_policy(self.policy)
    }

    /// A request for one simulation point at this invocation's scale and
    /// seed (what almost every figure matrix is built from).
    pub fn request(&self, spec: AppSpec, scheduler: Scheduler, cores: u32) -> RunRequest {
        RunRequest { spec, scheduler, cores, scale: self.scale, seed: self.seed, fault: None }
    }

    /// The core counts to sweep, replaced by `figure_default` when the user
    /// did not pass `--cores` (the `chaos` command sweeps a smaller default
    /// than the figures). An explicit `--cores` always wins.
    pub fn cores_or(&self, figure_default: &[u32]) -> Vec<u32> {
        self.cores.or(figure_default)
    }

    /// The benchmarks to run, replaced by `figure_default` when the user did
    /// not pass `--apps` (the `table2` command defaults to the
    /// beyond-Table-I workloads instead of the Table I nine). An explicit
    /// `--apps` always wins.
    pub fn apps_or(&self, figure_default: &[BenchmarkId]) -> Vec<BenchmarkId> {
        self.apps.or(figure_default)
    }

    /// The schedulers to compare, restricted to `figure_default` when the
    /// user did not pass `--schedulers` (several figures omit LBHints, which
    /// only appears from Fig. 10 on). An explicit `--schedulers` always
    /// wins, even when it names the full default set.
    pub fn schedulers_or(&self, figure_default: &[Scheduler]) -> Vec<Scheduler> {
        self.schedulers.or(figure_default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_cover_the_table1_apps_and_all_schedulers() {
        // The default app set stays the Table I nine so the figure commands
        // keep reproducing the paper's evaluation; the beyond-Table-I
        // workloads are opted into via `--apps` or `apps_or`.
        let args = HarnessArgs::default();
        assert_eq!(&*args.apps, BenchmarkId::TABLE1);
        assert!(!args.apps.is_explicit());
        assert_eq!(args.schedulers.len(), 4);
        assert_eq!(args.max_cores(), 64);
    }

    #[test]
    fn apps_or_respects_explicit_choice() {
        let beyond = BenchmarkId::BEYOND_TABLE1;
        assert_eq!(HarnessArgs::default().apps_or(&beyond), beyond.to_vec());
        let explicit = HarnessArgs::parse_from(s(&["--apps", "kvstore,des"]));
        assert!(explicit.apps.is_explicit());
        assert_eq!(
            explicit.apps_or(&beyond),
            vec![BenchmarkId::Kvstore, BenchmarkId::Des],
            "an explicit --apps must win over the figure default"
        );
    }

    #[test]
    fn parses_cores_scale_and_apps() {
        let args = HarnessArgs::parse_from(s(&[
            "--cores",
            "1,2,8",
            "--scale",
            "tiny",
            "--apps",
            "des,kmeans",
            "--seed",
            "9",
        ]));
        assert_eq!(&*args.cores, [1, 2, 8]);
        assert_eq!(args.scale, InputScale::Tiny);
        assert_eq!(&*args.apps, [BenchmarkId::Des, BenchmarkId::Kmeans]);
        assert_eq!(args.seed, 9);
    }

    #[test]
    fn ignores_unknown_flags_and_bad_values() {
        let args = HarnessArgs::parse_from(s(&["--wat", "--cores", "x", "--schedulers", "hints"]));
        assert_eq!(&*args.cores, [1, 4, 16, 64]);
        assert!(!args.cores.is_explicit());
        assert_eq!(&*args.schedulers, [Scheduler::Hints]);
        // A wholly unparsable list leaves the default in place, implicitly.
        let bad = HarnessArgs::parse_from(s(&["--apps", "zorp,blag"]));
        assert!(!bad.apps.is_explicit());
        assert_eq!(&*bad.apps, BenchmarkId::TABLE1);
    }

    #[test]
    fn jobs_flag_selects_pool_size() {
        let args = HarnessArgs::parse_from(s(&["--jobs", "3"]));
        assert_eq!(args.jobs, 3);
        assert_eq!(args.pool().jobs(), 3);
        // Default (0) resolves to the machine's available parallelism.
        let auto = HarnessArgs::default();
        assert_eq!(auto.pool().jobs(), crate::Pool::available_parallelism());
    }

    #[test]
    fn schedulers_or_respects_explicit_choice() {
        let subset = [Scheduler::Random, Scheduler::Hints];
        assert_eq!(HarnessArgs::default().schedulers_or(&subset), subset.to_vec());
        let explicit = HarnessArgs::parse_from(s(&["--schedulers", "lbhints"]));
        assert_eq!(explicit.schedulers_or(&subset), vec![Scheduler::LbHints]);
        // Explicitly naming the full default set is honoured, not silently
        // replaced by the figure default.
        let full = HarnessArgs::parse_from(s(&["--schedulers", "random,stealing,hints,lbhints"]));
        assert!(full.schedulers.is_explicit());
        assert_eq!(full.schedulers_or(&subset), Scheduler::ALL.to_vec());
    }

    #[test]
    fn cores_or_respects_explicit_choice() {
        assert_eq!(HarnessArgs::default().cores_or(&[1, 16]), vec![1, 16]);
        let explicit = HarnessArgs::parse_from(s(&["--cores", "1,4,16,64"]));
        assert!(explicit.cores.is_explicit());
        assert_eq!(explicit.cores_or(&[1, 16]), vec![1, 4, 16, 64]);
    }

    #[test]
    fn on_error_selects_the_failure_policy() {
        assert_eq!(HarnessArgs::default().policy, FailurePolicy::FailFast);
        let collect = HarnessArgs::parse_from(s(&["--on-error", "collect"]));
        assert_eq!(collect.policy, FailurePolicy::CollectAll);
        assert_eq!(collect.pool().policy(), FailurePolicy::CollectAll);
        let retry = HarnessArgs::parse_from(s(&["--on-error", "retry:5"]));
        assert_eq!(retry.policy, FailurePolicy::Retry { attempts: 5 });
        assert_eq!(
            HarnessArgs::parse_from(s(&["--on-error", "retry"])).policy,
            FailurePolicy::Retry { attempts: 2 }
        );
        // A malformed value leaves the default in place.
        let bad = HarnessArgs::parse_from(s(&["--on-error", "explode"]));
        assert_eq!(bad.policy, FailurePolicy::FailFast);
        let fail = HarnessArgs::parse_from(s(&["--on-error", "collect", "--on-error", "fail"]));
        assert_eq!(fail.policy, FailurePolicy::FailFast);
    }

    #[test]
    fn list_args_deref_to_slices() {
        let args = HarnessArgs::parse_from(s(&["--apps", "des"]));
        assert!(args.apps.contains(&BenchmarkId::Des));
        assert_eq!(args.apps.len(), 1);
        assert_eq!(args.apps.iter().count(), 1);
    }
}
