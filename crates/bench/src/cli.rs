//! Command-line parsing shared by every harness entry point (the unified
//! `swarm` binary's subcommands and the legacy per-figure shims).
//!
//! Every figure command accepts:
//!
//! * `--cores 1,4,16,64` — the core counts to sweep (default `1,4,16,64`);
//! * `--scale tiny|small|medium` — workload size (default `small`);
//! * `--seed N` — workload seed (default fixed);
//! * `--apps a,b,c` — restrict to a subset of benchmarks where applicable;
//! * `--schedulers random,stealing,hints,lbhints` — restrict the scheduler
//!   comparison;
//! * `--noc analytic|contention` — network model (default `analytic`, the
//!   paper's fixed-latency mesh; `contention` adds per-link queueing);
//! * `--jobs N` — worker threads for the experiment matrix (default: all
//!   available hardware threads; `--jobs 1` forces the serial path);
//! * `--on-error fail|collect|retry:N` — what the pool does when a point
//!   fails (default `fail`: stop promptly; `collect` runs everything and
//!   reports `n/a` cells; `retry:N` re-runs a failed point up to N times).
//!
//! Parsing is strict: an unknown `--flag`, a flag missing its value, or an
//! unrecognised value is a usage error (exit 2 with a diagnostic on stderr),
//! not a silent fallback. List flags (`--apps`, `--schedulers`, `--cores`)
//! warn on stderr about each element they drop and fail when an explicitly
//! passed list ends up selecting nothing. Bare positional tokens are still
//! tolerated so wrapper scripts can pass benchmark names positionally.

use std::str::FromStr;

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_types::NocModel;

use crate::pool::{FailurePolicy, Pool};
use crate::runner::RunRequest;

/// Why parsing stopped without producing usable [`HarnessArgs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsageError {
    /// `-h`/`--help` was passed: print usage and exit 0.
    Help,
    /// A malformed flag or value: print the message and exit 2.
    Invalid(String),
}

impl UsageError {
    fn invalid(msg: impl Into<String>) -> Self {
        UsageError::Invalid(msg.into())
    }
}

/// A command-specific flag a figure accepts on top of the shared set (e.g.
/// `summary --json`, `chaos --plan SPEC`). Declaring it here keeps the
/// strict parser from rejecting it as unknown; the figure still extracts
/// the value from the raw argument slice itself.
#[derive(Debug, Clone, Copy)]
pub struct ExtraFlag {
    /// Full flag spelling, including the leading dashes (e.g. `"--json"`).
    pub name: &'static str,
    /// Whether the flag consumes the following token as its value.
    pub takes_value: bool,
}

/// The shared flags, for usage text and did-you-mean suggestions.
const KNOWN_FLAGS: &[&str] = &[
    "--cores",
    "--scale",
    "--seed",
    "--apps",
    "--schedulers",
    "--noc",
    "--jobs",
    "--on-error",
    "--help",
];

/// A list-valued flag that remembers whether the user set it explicitly.
///
/// Several figures narrow the default app or scheduler set (`fig4` omits
/// LBHints, `table2` defaults to the beyond-Table-I workloads), but an
/// explicit request must always win — even when it happens to name the
/// default set. This used to be hand-rolled twice (`apps`/`apps_explicit`,
/// `schedulers`/`schedulers_explicit`); [`ListArg`] is the one shared
/// implementation.
///
/// Dereferences to a slice, so `args.apps.iter()`, `.len()` and
/// `.contains(..)` work directly.
#[derive(Debug, Clone)]
pub struct ListArg<T> {
    values: Vec<T>,
    explicit: bool,
}

impl<T: Clone> ListArg<T> {
    /// A default (non-explicit) value.
    pub fn implicit(default: Vec<T>) -> Self {
        ListArg { values: default, explicit: false }
    }

    /// Whether the user set this flag explicitly.
    pub fn is_explicit(&self) -> bool {
        self.explicit
    }

    /// The parsed values, replaced by `figure_default` when the flag was not
    /// given explicitly. An explicit value always wins, even when it names
    /// the global default set.
    pub fn or(&self, figure_default: &[T]) -> Vec<T> {
        if self.explicit {
            self.values.clone()
        } else {
            figure_default.to_vec()
        }
    }

    /// Overwrite with values parsed from a comma-separated flag argument and
    /// mark the flag explicit. Each element that fails to parse is reported
    /// via `warnings`; a list that ends up selecting nothing is a usage
    /// error (a silently empty selection used to make figures print headers
    /// over zero rows).
    fn set_from_csv(
        &mut self,
        flag: &str,
        raw: &str,
        valid: &str,
        warnings: &mut Vec<String>,
    ) -> Result<(), UsageError>
    where
        T: FromStr,
    {
        let mut values = Vec::new();
        let mut dropped = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.parse() {
                Ok(v) => values.push(v),
                Err(_) => dropped.push(part.to_string()),
            }
        }
        for part in &dropped {
            warnings.push(format!("{flag}: ignoring unrecognized value '{part}' (valid: {valid})"));
        }
        if values.is_empty() {
            return Err(UsageError::invalid(format!(
                "{flag} '{raw}' selects nothing (valid: {valid})"
            )));
        }
        self.values = values;
        self.explicit = true;
        Ok(())
    }
}

impl<T> std::ops::Deref for ListArg<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.values
    }
}

/// Parse an `--on-error` value: `fail`, `collect`, or `retry[:N]` (N defaults
/// to 2 total attempts).
fn parse_policy(raw: &str) -> Option<FailurePolicy> {
    match raw.to_ascii_lowercase().as_str() {
        "fail" => Some(FailurePolicy::FailFast),
        "collect" => Some(FailurePolicy::CollectAll),
        "retry" => Some(FailurePolicy::Retry { attempts: 2 }),
        other => {
            let attempts = other.strip_prefix("retry:")?.parse().ok()?;
            Some(FailurePolicy::Retry { attempts })
        }
    }
}

/// Comma-joined benchmark names, for diagnostics.
fn valid_apps() -> String {
    BenchmarkId::ALL.iter().map(|b| b.name()).collect::<Vec<_>>().join(", ")
}

/// Comma-joined scheduler names, for diagnostics. Display names are
/// capitalised ("LBHints"), but `FromStr` accepts the lowercase spellings,
/// so that is what the diagnostic suggests.
fn valid_schedulers() -> String {
    Scheduler::ALL.iter().map(|s| s.name().to_ascii_lowercase()).collect::<Vec<_>>().join(", ")
}

/// Levenshtein edit distance, for the unknown-flag did-you-mean hint. The
/// candidate set is a handful of short flag names, so the textbook DP is
/// plenty.
pub(crate) fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest known flag within an edit distance of 3, if any (ties break
/// alphabetically so the hint is deterministic).
pub(crate) fn closest_flag<'a>(
    flag: &str,
    candidates: impl Iterator<Item = &'a str>,
) -> Option<&'a str> {
    candidates
        .map(|c| (levenshtein(flag, c), c))
        .filter(|&(d, _)| d <= 3)
        .min_by_key(|&(d, c)| (d, c))
        .map(|(_, c)| c)
}

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Core counts to sweep (defaults to 1,4,16,64; the `chaos` command
    /// narrows it via [`HarnessArgs::cores_or`]).
    pub cores: ListArg<u32>,
    /// Workload scale.
    pub scale: InputScale,
    /// Workload seed.
    pub seed: u64,
    /// Benchmarks to run (defaults to the nine of Table I; `table2` defaults
    /// to the beyond-Table-I set via [`HarnessArgs::apps_or`]).
    pub apps: ListArg<BenchmarkId>,
    /// Schedulers to compare (defaults to Random/Stealing/Hints/LBHints;
    /// several figures narrow it via [`HarnessArgs::schedulers_or`]).
    pub schedulers: ListArg<Scheduler>,
    /// Network model (`--noc`; default analytic, the paper's fixed-latency
    /// mesh).
    pub noc: NocModel,
    /// Worker threads for the experiment matrix (0 = available parallelism).
    pub jobs: usize,
    /// What the pool does when a point fails (`--on-error`).
    pub policy: FailurePolicy,
    /// Diagnostics for tolerated-but-suspect input (dropped list elements);
    /// [`HarnessArgs::parse_args`] prints them to stderr.
    pub warnings: Vec<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            cores: ListArg::implicit(vec![1, 4, 16, 64]),
            scale: InputScale::Small,
            seed: 0xF1605,
            apps: ListArg::implicit(BenchmarkId::TABLE1.to_vec()),
            schedulers: ListArg::implicit(Scheduler::ALL.to_vec()),
            noc: NocModel::Analytic,
            jobs: 0,
            policy: FailurePolicy::FailFast,
            warnings: Vec::new(),
        }
    }
}

/// Print the shared flag usage (the per-command `--help` text).
fn print_flag_usage() {
    println!("common flags (all figure commands):");
    println!("  --cores A,B,C           core counts to sweep (default 1,4,16,64)");
    println!("  --scale tiny|small|medium");
    println!("                          workload size (default small)");
    println!("  --seed N                workload seed");
    println!("  --apps a,b,c            restrict the benchmark set");
    println!("  --schedulers a,b,c      restrict the scheduler comparison");
    println!("  --noc analytic|contention");
    println!("                          network model (default analytic)");
    println!("  --jobs N                worker threads (default: all hardware threads)");
    println!("  --on-error fail|collect|retry:N");
    println!("                          failure policy for the experiment pool");
}

impl HarnessArgs {
    /// Parse the argument slice a `swarm` subcommand receives (everything
    /// after the subcommand name), printing diagnostics. `Err` carries the
    /// process exit code: 0 after `--help`, 2 on a usage error.
    ///
    /// # Errors
    ///
    /// Returns the exit code the command should return: [`crate::exit_code::OK`]
    /// after printing `--help` text, [`crate::exit_code::USAGE`] after a
    /// malformed flag or value.
    pub fn parse_args(args: &[String]) -> Result<Self, i32> {
        Self::parse_args_with(args, &[])
    }

    /// [`HarnessArgs::parse_args`] for commands with extra flags of their
    /// own (e.g. `summary --json`, `chaos --plan`). The extras are accepted
    /// (and skipped) instead of rejected as unknown; the command extracts
    /// their values from the raw slice itself.
    ///
    /// # Errors
    ///
    /// Same contract as [`HarnessArgs::parse_args`].
    pub fn parse_args_with(args: &[String], extras: &[ExtraFlag]) -> Result<Self, i32> {
        match Self::parse_from_with(args.to_vec(), extras) {
            Ok(parsed) => {
                for w in &parsed.warnings {
                    eprintln!("warning: {w}");
                }
                Ok(parsed)
            }
            Err(UsageError::Help) => {
                print_flag_usage();
                Err(crate::exit_code::OK)
            }
            Err(UsageError::Invalid(msg)) => {
                eprintln!("error: {msg}");
                Err(crate::exit_code::USAGE)
            }
        }
    }

    /// Parse from an explicit argument vector with no extra flags.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError::Help`] on `-h`/`--help` and
    /// [`UsageError::Invalid`] on malformed input.
    pub fn parse_from(args: Vec<String>) -> Result<Self, UsageError> {
        Self::parse_from_with(args, &[])
    }

    /// Parse from an explicit argument vector, tolerating the given
    /// command-specific extra flags.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError::Help`] on `-h`/`--help` and
    /// [`UsageError::Invalid`] on an unknown `--flag`, a flag missing its
    /// value, an unrecognised value, or an explicit list flag that selects
    /// nothing.
    pub fn parse_from_with(args: Vec<String>, extras: &[ExtraFlag]) -> Result<Self, UsageError> {
        let mut parsed = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().ok_or_else(|| UsageError::invalid(format!("{name} requires a value")))
            };
            match flag.as_str() {
                "--help" | "-h" => return Err(UsageError::Help),
                "--cores" => {
                    let v = value("--cores")?;
                    parsed.cores.set_from_csv(
                        "--cores",
                        &v,
                        "positive integers",
                        &mut parsed.warnings,
                    )?;
                }
                "--scale" => {
                    let v = value("--scale")?;
                    parsed.scale = match v.to_ascii_lowercase().as_str() {
                        "tiny" => InputScale::Tiny,
                        "small" => InputScale::Small,
                        "medium" => InputScale::Medium,
                        other => {
                            return Err(UsageError::invalid(format!(
                                "unknown scale '{other}' (valid: tiny, small, medium)"
                            )));
                        }
                    };
                }
                "--seed" => {
                    let v = value("--seed")?;
                    parsed.seed = v.parse().map_err(|_| {
                        UsageError::invalid(format!("--seed '{v}' is not a number"))
                    })?;
                }
                "--apps" => {
                    let v = value("--apps")?;
                    parsed.apps.set_from_csv("--apps", &v, &valid_apps(), &mut parsed.warnings)?;
                }
                "--schedulers" => {
                    let v = value("--schedulers")?;
                    parsed.schedulers.set_from_csv(
                        "--schedulers",
                        &v,
                        &valid_schedulers(),
                        &mut parsed.warnings,
                    )?;
                }
                "--noc" => {
                    let v = value("--noc")?;
                    parsed.noc = match v.to_ascii_lowercase().as_str() {
                        "analytic" => NocModel::Analytic,
                        "contention" => NocModel::Contention,
                        other => {
                            return Err(UsageError::invalid(format!(
                                "unknown noc model '{other}' (valid: analytic, contention)"
                            )));
                        }
                    };
                }
                "--jobs" => {
                    let v = value("--jobs")?;
                    parsed.jobs = v.parse().map_err(|_| {
                        UsageError::invalid(format!("--jobs '{v}' is not a number"))
                    })?;
                }
                "--on-error" => {
                    let v = value("--on-error")?;
                    parsed.policy = parse_policy(&v).ok_or_else(|| {
                        UsageError::invalid(format!(
                            "unknown --on-error policy '{v}' (valid: fail, collect, retry:N)"
                        ))
                    })?;
                }
                other if extras.iter().any(|e| e.name == other) => {
                    let extra = extras.iter().find(|e| e.name == other).expect("matched above");
                    if extra.takes_value {
                        value(extra.name)?;
                    }
                }
                other if other.starts_with("--") => {
                    let known = KNOWN_FLAGS.iter().copied().chain(extras.iter().map(|e| e.name));
                    let hint = match closest_flag(other, known) {
                        Some(best) => format!(" (did you mean '{best}'?)"),
                        None => String::new(),
                    };
                    return Err(UsageError::invalid(format!("unknown flag '{other}'{hint}")));
                }
                // Bare positionals (and single-dash tokens other than -h)
                // stay tolerated: wrapper scripts pass benchmark names
                // positionally and the figures ignore them.
                _ => {}
            }
        }
        Ok(parsed)
    }

    /// The largest core count in the sweep (used by the breakdown figures,
    /// which the paper reports at the maximum machine size).
    pub fn max_cores(&self) -> u32 {
        self.cores.iter().copied().max().unwrap_or(1)
    }

    /// The experiment pool honouring `--jobs` and `--on-error`.
    pub fn pool(&self) -> Pool {
        Pool::new(self.jobs).with_policy(self.policy)
    }

    /// A request for one simulation point at this invocation's scale, seed
    /// and network model (what almost every figure matrix is built from).
    pub fn request(&self, spec: AppSpec, scheduler: Scheduler, cores: u32) -> RunRequest {
        RunRequest {
            spec,
            scheduler,
            cores,
            scale: self.scale,
            seed: self.seed,
            fault: None,
            noc: self.noc,
        }
    }

    /// The core counts to sweep, replaced by `figure_default` when the user
    /// did not pass `--cores` (the `chaos` command sweeps a smaller default
    /// than the figures). An explicit `--cores` always wins.
    pub fn cores_or(&self, figure_default: &[u32]) -> Vec<u32> {
        self.cores.or(figure_default)
    }

    /// The benchmarks to run, replaced by `figure_default` when the user did
    /// not pass `--apps` (the `table2` command defaults to the
    /// beyond-Table-I workloads instead of the Table I nine). An explicit
    /// `--apps` always wins.
    pub fn apps_or(&self, figure_default: &[BenchmarkId]) -> Vec<BenchmarkId> {
        self.apps.or(figure_default)
    }

    /// The schedulers to compare, restricted to `figure_default` when the
    /// user did not pass `--schedulers` (several figures omit LBHints, which
    /// only appears from Fig. 10 on). An explicit `--schedulers` always
    /// wins, even when it names the full default set.
    pub fn schedulers_or(&self, figure_default: &[Scheduler]) -> Vec<Scheduler> {
        self.schedulers.or(figure_default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn parse(v: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(s(v)).expect("arguments parse")
    }

    fn parse_err(v: &[&str]) -> String {
        match HarnessArgs::parse_from(s(v)) {
            Err(UsageError::Invalid(msg)) => msg,
            other => panic!("expected a usage error, got {other:?}"),
        }
    }

    #[test]
    fn defaults_cover_the_table1_apps_and_all_schedulers() {
        // The default app set stays the Table I nine so the figure commands
        // keep reproducing the paper's evaluation; the beyond-Table-I
        // workloads are opted into via `--apps` or `apps_or`.
        let args = HarnessArgs::default();
        assert_eq!(&*args.apps, BenchmarkId::TABLE1);
        assert!(!args.apps.is_explicit());
        assert_eq!(args.schedulers.len(), 4);
        assert_eq!(args.max_cores(), 64);
        assert_eq!(args.noc, NocModel::Analytic);
    }

    #[test]
    fn apps_or_respects_explicit_choice() {
        let beyond = BenchmarkId::BEYOND_TABLE1;
        assert_eq!(HarnessArgs::default().apps_or(&beyond), beyond.to_vec());
        let explicit = parse(&["--apps", "kvstore,des"]);
        assert!(explicit.apps.is_explicit());
        assert_eq!(
            explicit.apps_or(&beyond),
            vec![BenchmarkId::Kvstore, BenchmarkId::Des],
            "an explicit --apps must win over the figure default"
        );
    }

    #[test]
    fn parses_cores_scale_apps_and_noc() {
        let args = parse(&[
            "--cores",
            "1,2,8",
            "--scale",
            "tiny",
            "--apps",
            "des,kmeans",
            "--seed",
            "9",
            "--noc",
            "contention",
        ]);
        assert_eq!(&*args.cores, [1, 2, 8]);
        assert_eq!(args.scale, InputScale::Tiny);
        assert_eq!(&*args.apps, [BenchmarkId::Des, BenchmarkId::Kmeans]);
        assert_eq!(args.seed, 9);
        assert_eq!(args.noc, NocModel::Contention);
        assert!(args.warnings.is_empty());
    }

    #[test]
    fn unknown_scale_is_a_usage_error_naming_the_valid_set() {
        // `--scale full` used to fall through to Small silently; figures
        // then reported Small numbers under a "full"-scale invocation.
        let msg = parse_err(&["--scale", "full"]);
        assert!(msg.contains("full") && msg.contains("tiny, small, medium"), "got: {msg}");
        let typo = parse_err(&["--scale", "smal"]);
        assert!(typo.contains("smal"), "got: {typo}");
    }

    #[test]
    fn unknown_flags_are_rejected_with_a_hint() {
        let msg = parse_err(&["--schedulres", "hints"]);
        assert!(msg.contains("--schedulres"), "got: {msg}");
        assert!(msg.contains("did you mean '--schedulers'"), "got: {msg}");
        // Nothing close: no hint, still an error.
        let none = parse_err(&["--bogus-flag"]);
        assert!(none.contains("--bogus-flag") && !none.contains("did you mean"), "got: {none}");
        // Bare positionals stay tolerated for wrapper scripts.
        let ok = parse(&["bfs", "--cores", "1,2"]);
        assert_eq!(&*ok.cores, [1, 2]);
    }

    #[test]
    fn extra_flags_are_tolerated_when_declared() {
        let extras = [
            ExtraFlag { name: "--json", takes_value: false },
            ExtraFlag { name: "--plan", takes_value: true },
        ];
        let args = HarnessArgs::parse_from_with(s(&["--json", "--cores", "1,2"]), &extras)
            .expect("declared extra flag parses");
        assert_eq!(&*args.cores, [1, 2]);
        // A value-taking extra consumes its value so the value is not
        // mistaken for a positional or flag.
        let planned = HarnessArgs::parse_from_with(s(&["--plan", "dup@3", "--jobs", "2"]), &extras)
            .expect("--plan consumes its value");
        assert_eq!(planned.jobs, 2);
        // ... and missing its value is an error like any other flag.
        let msg = match HarnessArgs::parse_from_with(s(&["--plan"]), &extras) {
            Err(UsageError::Invalid(msg)) => msg,
            other => panic!("expected usage error, got {other:?}"),
        };
        assert!(msg.contains("--plan requires a value"), "got: {msg}");
        // Undeclared, it is rejected.
        assert!(matches!(HarnessArgs::parse_from(s(&["--json"])), Err(UsageError::Invalid(_))));
    }

    #[test]
    fn trailing_flag_without_value_is_a_usage_error() {
        let msg = parse_err(&["--jobs"]);
        assert!(msg.contains("--jobs requires a value"), "got: {msg}");
        let scale = parse_err(&["--cores", "1,2", "--scale"]);
        assert!(scale.contains("--scale requires a value"), "got: {scale}");
    }

    #[test]
    fn dropped_list_elements_warn_and_empty_lists_fail() {
        // Partial drop: warn, keep the parsable subset.
        let args = parse(&["--schedulers", "hints,hintz"]);
        assert_eq!(&*args.schedulers, [Scheduler::Hints]);
        assert_eq!(args.warnings.len(), 1);
        assert!(args.warnings[0].contains("hintz"), "got: {:?}", args.warnings);
        // Wholly unparsable: usage error naming the valid set.
        let msg = parse_err(&["--schedulers", "hintz"]);
        assert!(msg.contains("hintz") && msg.contains("hints"), "got: {msg}");
        let apps = parse_err(&["--apps", "zorp,blag"]);
        assert!(apps.contains("zorp,blag") && apps.contains("bfs"), "got: {apps}");
        let cores = parse_err(&["--cores", "x"]);
        assert!(cores.contains("--cores"), "got: {cores}");
    }

    #[test]
    fn bad_seed_jobs_and_noc_are_usage_errors() {
        assert!(parse_err(&["--seed", "nine"]).contains("--seed"));
        assert!(parse_err(&["--jobs", "many"]).contains("--jobs"));
        let noc = parse_err(&["--noc", "magic"]);
        assert!(noc.contains("analytic, contention"), "got: {noc}");
    }

    #[test]
    fn help_flag_requests_usage() {
        assert!(matches!(HarnessArgs::parse_from(s(&["--help"])), Err(UsageError::Help)));
        assert!(matches!(HarnessArgs::parse_from(s(&["-h"])), Err(UsageError::Help)));
    }

    #[test]
    fn jobs_flag_selects_pool_size() {
        let args = parse(&["--jobs", "3"]);
        assert_eq!(args.jobs, 3);
        assert_eq!(args.pool().jobs(), 3);
        // Default (0) resolves to the machine's available parallelism.
        let auto = HarnessArgs::default();
        assert_eq!(auto.pool().jobs(), crate::Pool::available_parallelism());
    }

    #[test]
    fn schedulers_or_respects_explicit_choice() {
        let subset = [Scheduler::Random, Scheduler::Hints];
        assert_eq!(HarnessArgs::default().schedulers_or(&subset), subset.to_vec());
        let explicit = parse(&["--schedulers", "lbhints"]);
        assert_eq!(explicit.schedulers_or(&subset), vec![Scheduler::LbHints]);
        // Explicitly naming the full default set is honoured, not silently
        // replaced by the figure default.
        let full = parse(&["--schedulers", "random,stealing,hints,lbhints"]);
        assert!(full.schedulers.is_explicit());
        assert_eq!(full.schedulers_or(&subset), Scheduler::ALL.to_vec());
    }

    #[test]
    fn cores_or_respects_explicit_choice() {
        assert_eq!(HarnessArgs::default().cores_or(&[1, 16]), vec![1, 16]);
        let explicit = parse(&["--cores", "1,4,16,64"]);
        assert!(explicit.cores.is_explicit());
        assert_eq!(explicit.cores_or(&[1, 16]), vec![1, 4, 16, 64]);
    }

    #[test]
    fn on_error_selects_the_failure_policy() {
        assert_eq!(HarnessArgs::default().policy, FailurePolicy::FailFast);
        let collect = parse(&["--on-error", "collect"]);
        assert_eq!(collect.policy, FailurePolicy::CollectAll);
        assert_eq!(collect.pool().policy(), FailurePolicy::CollectAll);
        let retry = parse(&["--on-error", "retry:5"]);
        assert_eq!(retry.policy, FailurePolicy::Retry { attempts: 5 });
        assert_eq!(parse(&["--on-error", "retry"]).policy, FailurePolicy::Retry { attempts: 2 });
        // A malformed policy is a usage error, not a silent default.
        let msg = parse_err(&["--on-error", "explode"]);
        assert!(msg.contains("explode") && msg.contains("retry:N"), "got: {msg}");
        let fail = parse(&["--on-error", "collect", "--on-error", "fail"]);
        assert_eq!(fail.policy, FailurePolicy::FailFast);
    }

    #[test]
    fn request_carries_the_noc_model() {
        use swarm_apps::AppSpec;
        let args = parse(&["--noc", "contention"]);
        let spec = AppSpec::coarse(BenchmarkId::Bfs);
        let req = args.request(spec, Scheduler::Hints, 16);
        assert_eq!(req.noc, NocModel::Contention);
        assert_eq!(parse(&[]).request(spec, Scheduler::Hints, 16).noc, NocModel::Analytic);
    }

    #[test]
    fn list_args_deref_to_slices() {
        let args = parse(&["--apps", "des"]);
        assert!(args.apps.contains(&BenchmarkId::Des));
        assert_eq!(args.apps.len(), 1);
        assert_eq!(args.apps.iter().count(), 1);
    }
}
