//! Section VI-B "putting it all together": geometric-mean speedups of
//! Random, Hints, Hints with fine-grain versions, and LBHints at the largest
//! core count, plus efficiency metrics (aborted-cycle and traffic
//! reductions). Optionally dumps machine-readable JSON with `--json`.

use crate::{gmean, HarnessArgs, RunRequest};
use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};

struct AppSummary {
    app: String,
    cores: u32,
    random_speedup: f64,
    stealing_speedup: f64,
    hints_speedup: f64,
    hints_fg_speedup: f64,
    lbhints_speedup: f64,
    abort_cycle_reduction_hints_vs_random: f64,
    traffic_reduction_hints_vs_random: f64,
}

/// Hand-rolled JSON dump (the offline build has no serde_json). Strings
/// here are app names, which never need escaping.
fn to_json_pretty(summaries: &[AppSummary]) -> String {
    let objects: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "  {{\n    \"app\": \"{}\",\n    \"cores\": {},\n    \"random_speedup\": {},\n    \
                 \"stealing_speedup\": {},\n    \"hints_speedup\": {},\n    \
                 \"hints_fg_speedup\": {},\n    \"lbhints_speedup\": {},\n    \
                 \"abort_cycle_reduction_hints_vs_random\": {},\n    \
                 \"traffic_reduction_hints_vs_random\": {}\n  }}",
                s.app,
                s.cores,
                s.random_speedup,
                s.stealing_speedup,
                s.hints_speedup,
                s.hints_fg_speedup,
                s.lbhints_speedup,
                s.abort_cycle_reduction_hints_vs_random,
                s.traffic_reduction_hints_vs_random
            )
        })
        .collect();
    format!("[\n{}\n]", objects.join(",\n"))
}

/// The six runs the summary needs per app, in matrix order.
const RUNS_PER_APP: usize = 6;

/// Run the `summary` command with the argument slice that follows the
/// subcommand name (`swarm summary <args...>`).
pub fn run(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let extras = [crate::ExtraFlag { name: "--json", takes_value: false }];
    let args = match HarnessArgs::parse_args_with(args, &extras) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let cores = args.max_cores();

    // Per app: 1-core Random baseline, then Random/Stealing/Hints on the
    // coarse version and Hints/LBHints on the best (fine where available)
    // version, all at the target core count — one flat matrix.
    let requests: Vec<RunRequest> = args
        .apps
        .iter()
        .flat_map(|&bench| {
            let cg = AppSpec::coarse(bench);
            let best_fg = if BenchmarkId::WITH_FINE_GRAIN.contains(&bench) {
                AppSpec::fine(bench)
            } else {
                cg
            };
            [
                (cg, Scheduler::Random, 1),
                (cg, Scheduler::Random, cores),
                (cg, Scheduler::Stealing, cores),
                (cg, Scheduler::Hints, cores),
                (best_fg, Scheduler::Hints, cores),
                (best_fg, Scheduler::LbHints, cores),
            ]
            .map(|(spec, scheduler, c)| args.request(spec, scheduler, c))
        })
        .collect();
    let all_stats = args.pool().run_matrix(&requests);

    let summaries: Vec<AppSummary> = args
        .apps
        .iter()
        .zip(all_stats.chunks(RUNS_PER_APP))
        .map(|(&bench, stats)| {
            let [baseline, random, stealing, hints, hints_fg, lbhints] =
                [0, 1, 2, 3, 4, 5].map(|i| &stats[i]);
            AppSummary {
                app: bench.name().to_string(),
                cores,
                random_speedup: random.speedup_over(baseline),
                stealing_speedup: stealing.speedup_over(baseline),
                hints_speedup: hints.speedup_over(baseline),
                hints_fg_speedup: hints_fg.speedup_over(baseline),
                lbhints_speedup: lbhints.speedup_over(baseline),
                abort_cycle_reduction_hints_vs_random: random.breakdown.aborted.max(1) as f64
                    / hints.breakdown.aborted.max(1) as f64,
                traffic_reduction_hints_vs_random: random.traffic.total().max(1) as f64
                    / hints.traffic.total().max(1) as f64,
            }
        })
        .collect();

    if json {
        println!("{}", to_json_pretty(&summaries));
        return crate::exit_code::OK;
    }

    println!("Section VI-B summary at {cores} cores (speedups over 1-core Random)");
    println!(
        "{:<8}{:>10}{:>10}{:>10}{:>12}{:>10}{:>14}{:>14}",
        "app", "Random", "Stealing", "Hints", "Hints(FG)", "LBHints", "abort red.", "traffic red."
    );
    for s in &summaries {
        println!(
            "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>12.2}{:>10.2}{:>13.1}x{:>13.1}x",
            s.app,
            s.random_speedup,
            s.stealing_speedup,
            s.hints_speedup,
            s.hints_fg_speedup,
            s.lbhints_speedup,
            s.abort_cycle_reduction_hints_vs_random,
            s.traffic_reduction_hints_vs_random
        );
    }
    let col =
        |f: fn(&AppSummary) -> f64| -> f64 { gmean(&summaries.iter().map(f).collect::<Vec<_>>()) };
    println!(
        "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>12.2}{:>10.2}{:>13.1}x{:>13.1}x",
        "gmean",
        col(|s| s.random_speedup),
        col(|s| s.stealing_speedup),
        col(|s| s.hints_speedup),
        col(|s| s.hints_fg_speedup),
        col(|s| s.lbhints_speedup),
        col(|s| s.abort_cycle_reduction_hints_vs_random),
        col(|s| s.traffic_reduction_hints_vs_random)
    );

    crate::exit_code::OK
}
