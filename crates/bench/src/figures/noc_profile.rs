//! `swarm noc-profile`: per-link contention heat report.
//!
//! Runs each selected app under the **contention** NoC model (the command
//! exists to profile link queueing, so `--noc` is implied) and prints, per
//! app × scheduler, a mesh-shaped heat table of queueing cycles per
//! directed link plus the per-class queueing totals and the hottest link.

use spatial_hints::Scheduler;
use swarm_apps::AppSpec;
use swarm_noc::{LinkStats, DIR_LABELS, LINKS_PER_TILE};
use swarm_types::{NocModel, SystemConfig, TileId};

use crate::HarnessArgs;

/// Traffic-class labels in [`swarm_noc::TrafficClass::ALL`] order, matching
/// `LinkStats::class_queue_cycles`.
const CLASS_LABELS: [&str; 4] = ["mem", "abort", "task", "gvt"];

/// Render the per-link heat table for one run: one row per tile, one
/// column per link direction, cells holding the link's queueing cycles
/// (`.` for links no message ever crossed).
fn heat_table(stats: &LinkStats, cfg: &SystemConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>8}", "tile"));
    for dir in DIR_LABELS {
        out.push_str(&format!("{dir:>12}"));
    }
    out.push('\n');
    for tile in 0..cfg.num_tiles() {
        let (x, y) = (tile as u32 % cfg.tiles_x, tile as u32 / cfg.tiles_x);
        out.push_str(&format!("{:>8}", format!("({x},{y})")));
        for dir in 0..LINKS_PER_TILE {
            let link = &stats.links[tile * LINKS_PER_TILE + dir];
            if link.messages == 0 {
                out.push_str(&format!("{:>12}", "."));
            } else {
                out.push_str(&format!("{:>12}", link.queue_cycles));
            }
        }
        out.push('\n');
    }
    out
}

/// One-line summary of the hottest link of a run, if any link saw traffic.
fn hottest_line(stats: &LinkStats, cfg: &SystemConfig) -> Option<String> {
    let (id, link) = stats.hottest_link()?;
    let tile = TileId(id / LINKS_PER_TILE as u32);
    let (x, y) = (tile.0 % cfg.tiles_x, tile.0 / cfg.tiles_x);
    let dir = DIR_LABELS[id as usize % LINKS_PER_TILE];
    Some(format!(
        "hottest link: ({x},{y}) {dir} — {} queue cycles, {} msgs, {} flits, occupancy max {} mean {:.2}",
        link.queue_cycles, link.messages, link.flits, link.max_occupancy, link.mean_occupancy()
    ))
}

/// Run the `noc-profile` command with the argument slice that follows the
/// subcommand name (`swarm noc-profile <args...>`).
pub fn run(args: &[String]) -> i32 {
    let mut args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    // Profiling link contention only makes sense under the contention
    // model; under the analytic model every counter reads zero.
    args.noc = NocModel::Contention;
    let args = &args;
    let schedulers = args.schedulers_or(&[Scheduler::Random, Scheduler::Hints]);
    let cores = args.max_cores();
    let cfg = SystemConfig::with_cores(cores);

    let entries = args.pool().try_run_labeled(
        args.apps
            .iter()
            .flat_map(|&bench| {
                let spec = AppSpec::coarse(bench);
                schedulers
                    .iter()
                    .map(move |&s| (s.name().to_string(), args.request(spec, s, cores)))
            })
            .collect(),
    );

    for (bench, app_entries) in args.apps.iter().zip(entries.chunks(schedulers.len())) {
        for (label, result) in app_entries {
            let Ok(stats) = result else { continue };
            let Some(link_stats) = &stats.link_stats else { continue };
            println!(
                "NoC profile [{}/{label}] at {cores} cores ({}x{} tiles): \
                 {} total queueing cycles over {} cycles",
                bench.name(),
                cfg.tiles_x,
                cfg.tiles_y,
                link_stats.total_queue_cycles(),
                stats.runtime_cycles,
            );
            let per_class: Vec<String> = CLASS_LABELS
                .iter()
                .zip(link_stats.class_queue_cycles)
                .map(|(label, cycles)| format!("{label} {cycles}"))
                .collect();
            println!("per-class queueing cycles: {}", per_class.join(", "));
            if let Some(line) = hottest_line(link_stats, &cfg) {
                println!("{line}");
            }
            println!("per-link queueing cycles ('.' = link never used):");
            println!("{}", heat_table(link_stats, &cfg));
        }
    }

    super::report_failures(entries.iter().filter_map(|(_, r)| r.as_ref().err()))
}
