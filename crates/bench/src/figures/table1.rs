//! Table I: benchmark information — source, input, 1-core Swarm run time,
//! 1-core Swarm vs tuned serial, number of task functions, hint patterns.
//!
//! The "vs serial" column compares the 1-core Swarm run time against an
//! idealized serial execution (the same committed work without any
//! task-management or speculation overhead), which is how our substrate can
//! approximate the paper's tuned-serial comparison.

use crate::{HarnessArgs, RunRequest};
use spatial_hints::Scheduler;
use swarm_apps::AppSpec;

/// Run the `table1` command with the argument slice that follows the
/// subcommand name (`swarm table1 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let requests: Vec<RunRequest> = args
        .apps
        .iter()
        .map(|&bench| args.request(AppSpec::coarse(bench), Scheduler::Random, 1))
        .collect();
    let all_stats = args.pool().run_matrix(&requests);

    println!("Table I: benchmark information (scale: {:?}, seed: {:#x})", args.scale, args.seed);
    println!(
        "{:<8} {:<20} {:<22} {:>14} {:>12} {:>6}  hint pattern",
        "bench", "source", "paper input", "1c run (cyc)", "vs serial", "#fns"
    );
    for (&bench, stats) in args.apps.iter().zip(&all_stats) {
        let num_fns = AppSpec::coarse(bench).build(args.scale, args.seed).num_task_fns();
        // Idealized serial time: the committed work minus queueing overheads
        // is what a tuned serial implementation would execute.
        let serial_estimate = stats.breakdown.committed.max(1);
        let vs_serial = serial_estimate as f64 / stats.runtime_cycles.max(1) as f64;
        println!(
            "{:<8} {:<20} {:<22} {:>14} {:>11.0}% {:>6}  {}",
            bench.name(),
            bench.source(),
            bench.paper_input(),
            stats.runtime_cycles,
            (vs_serial - 1.0) * 100.0,
            num_fns,
            bench.hint_pattern()
        );
    }

    crate::exit_code::OK
}
