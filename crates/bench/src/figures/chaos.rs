//! The `swarm chaos` subcommand: the fault-injection conformance battery.
//!
//! For every selected app × scheduler × core count, injects each fault of
//! [`swarm_sim::standard_faults`] (or one whole `--plan` of faults) and
//! asserts the chaos contract via [`swarm_sim::chaos`]: the faulted run must
//! either complete validation-clean and bit-identical on repeat, or fail
//! with the same typed `SimError` on repeat — never hang (a cycle-budget
//! watchdog guards every run), panic, or go silently wrong.
//!
//! Flags beyond the shared harness set:
//!
//! * `--plan "<fault>[;<fault>...]"` — check one specific fault plan instead
//!   of the curated per-fault sweep; the text format is
//!   `kind[:k=v[,k=v]]@cycle`, e.g. `lost-wake:ts=50@100;squeeze:tile=0,cap=2@400`.
//!   A malformed plan exits with [`crate::exit_code::USAGE`].
//!
//! Exits with [`crate::exit_code::CHAOS`] on the first contract violation,
//! [`crate::exit_code::OK`] otherwise.

use crate::HarnessArgs;
use spatial_hints::Scheduler;
use swarm_apps::AppSpec;
use swarm_sim::chaos::{check_chaos, check_plan, ChaosOptions, ChaosOutcome};
use swarm_sim::conformance::MapperSpec;
use swarm_sim::{standard_faults, FaultPlan, SwarmApp, TaskMapper};
use swarm_types::SystemConfig;

/// Watchdog cycle budget per battery run: far above any tiny/small-scale
/// run, so only a genuine hang trips it — as a typed error, not a timeout.
const WATCHDOG_CYCLES: u64 = 10_000_000;

/// The cycle at which each curated fault fires (early enough that every
/// tiny-scale run is still busy).
const FAULT_CYCLE: u64 = 100;

/// Run the `chaos` command with the argument slice that follows the
/// subcommand name (`swarm chaos <args...>`).
pub fn run(raw: &[String]) -> i32 {
    let extras = [crate::ExtraFlag { name: "--plan", takes_value: true }];
    let args = match HarnessArgs::parse_args_with(raw, &extras) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let plan = match extract_plan(raw) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("error: invalid --plan: {e}");
            return crate::exit_code::USAGE;
        }
    };
    let cores = args.cores_or(&[1, 16]);

    type Builder = Box<dyn Fn(&SystemConfig) -> Box<dyn TaskMapper>>;
    let builders: Vec<(Scheduler, Builder)> = args
        .schedulers
        .iter()
        .map(|&s| {
            let build: Builder = Box::new(move |cfg: &SystemConfig| s.build(cfg));
            (s, build)
        })
        .collect();
    let mappers: Vec<MapperSpec<'_>> = builders
        .iter()
        .map(|(s, build)| MapperSpec { name: s.name(), build: build.as_ref() })
        .collect();
    let opts = ChaosOptions {
        core_counts: cores.clone(),
        config: SystemConfig::with_cores,
        max_cycles: WATCHDOG_CYCLES,
    };
    let faults = standard_faults(FAULT_CYCLE);

    match &plan {
        Some(plan) => println!(
            "Chaos battery: plan [{plan}] x {} schedulers x cores {cores:?} (scale {:?})",
            mappers.len(),
            args.scale
        ),
        None => println!(
            "Chaos battery: {} standard faults x {} schedulers x cores {cores:?} (scale {:?})",
            faults.len(),
            mappers.len(),
            args.scale
        ),
    }
    println!("{:<10}{:>8}{:>12}{:>14}{:>8}", "app", "combos", "completed", "typed-failed", "runs");

    for &bench in args.apps.iter() {
        let spec = AppSpec::coarse(bench);
        let (scale, seed) = (args.scale, args.seed);
        let make = move || -> Box<dyn SwarmApp> { spec.build(scale, seed) };
        let (combos, completed, runs) = match &plan {
            Some(plan) => match check_plan(&make, &mappers, plan, &opts) {
                Ok(combos) => {
                    let completed = combos
                        .iter()
                        .filter(|c| matches!(c.outcome, ChaosOutcome::Completed { .. }))
                        .count();
                    (combos.len(), completed, combos.len() * 2)
                }
                Err(violation) => return report_violation(&violation),
            },
            None => match check_chaos(&make, &mappers, &faults, &opts) {
                Ok(report) => (report.combos.len(), report.completed(), report.runs),
                Err(violation) => return report_violation(&violation),
            },
        };
        println!(
            "{:<10}{:>8}{:>12}{:>14}{:>8}",
            bench.name(),
            combos,
            completed,
            combos - completed,
            runs
        );
    }
    println!("chaos contract held: every combo completed clean or failed typed, twice over");
    crate::exit_code::OK
}

/// Print a contract violation and pick the chaos exit code.
fn report_violation(violation: &str) -> i32 {
    eprintln!("chaos violation: {violation}");
    crate::exit_code::CHAOS
}

/// Pull `--plan <text>` out of the raw argument slice ([`HarnessArgs`]
/// ignores flags it does not know).
fn extract_plan(raw: &[String]) -> Result<Option<FaultPlan>, String> {
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        if flag == "--plan" {
            return match it.next() {
                Some(text) => text.parse::<FaultPlan>().map(Some).map_err(|e| e.to_string()),
                None => Err("missing value after --plan".to_string()),
            };
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn a_tiny_battery_passes_clean() {
        let code = run(&s(&[
            "--scale",
            "tiny",
            "--apps",
            "sssp",
            "--schedulers",
            "hints",
            "--cores",
            "4",
        ]));
        assert_eq!(code, crate::exit_code::OK);
    }

    #[test]
    fn an_explicit_plan_is_checked_instead_of_the_sweep() {
        let code = run(&s(&[
            "--scale",
            "tiny",
            "--apps",
            "des",
            "--schedulers",
            "random",
            "--cores",
            "1",
            "--plan",
            "lost-wake:ts=3@0",
        ]));
        assert_eq!(code, crate::exit_code::OK, "a typed deadlock satisfies the contract");
    }

    #[test]
    fn a_malformed_plan_is_a_usage_error() {
        assert_eq!(run(&s(&["--plan", "warp-core-breach@9"])), crate::exit_code::USAGE);
        assert_eq!(run(&s(&["--plan"])), crate::exit_code::USAGE);
    }
}
