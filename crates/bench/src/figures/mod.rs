//! One module per figure/table command of the evaluation.
//!
//! Each module exposes a single `run(args: &[String])` entry point taking
//! the argument slice that follows the subcommand name; the
//! [`registry`](crate::registry) maps subcommand names to these entry
//! points, and both the unified `swarm` binary and the legacy per-figure
//! shim binaries dispatch through it. Keeping the bodies here (instead of
//! in `src/bin/*.rs`) means the figure logic is ordinary library code:
//! unit-testable, documented, and free of per-binary argument-plumbing
//! boilerplate.

pub mod ablation_lb;
pub mod bench_snapshot;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod summary;
pub mod sysconfig;
pub mod table1;
pub mod table2;
