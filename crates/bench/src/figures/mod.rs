//! One module per figure/table command of the evaluation.
//!
//! Each module exposes a single `run(args: &[String]) -> i32` entry point
//! taking the argument slice that follows the subcommand name and returning
//! the process exit code (see [`crate::exit_code`]); the
//! [`registry`](crate::registry) maps subcommand names to these entry
//! points, and both the unified `swarm` binary and the legacy per-figure
//! shim binaries dispatch through it. Keeping the bodies here (instead of
//! in `src/bin/*.rs`) means the figure logic is ordinary library code:
//! unit-testable, documented, and free of per-binary argument-plumbing
//! boilerplate.

use crate::runner::RunError;

pub mod ablation_lb;
pub mod bench_serve;
pub mod bench_snapshot;
pub mod chaos;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod noc_profile;
pub mod serve;
pub mod summary;
pub mod sysconfig;
pub mod table1;
pub mod table2;

/// Print every distinct root-cause failure to stderr and pick the exit
/// code: [`crate::exit_code::OK`] when every point ran, otherwise
/// [`crate::exit_code::PARTIAL`] — the tables above have already rendered
/// the missing points as `n/a` cells.
pub(crate) fn report_failures<'a>(errors: impl IntoIterator<Item = &'a RunError>) -> i32 {
    let mut root_causes: Vec<String> = Vec::new();
    let mut any = false;
    for err in errors {
        any = true;
        if err.is_root_cause() {
            let msg = err.to_string();
            // A baseline failure is cloned into every point it dooms;
            // report each distinct cause once.
            if !root_causes.contains(&msg) {
                root_causes.push(msg);
            }
        }
    }
    if !any {
        return crate::exit_code::OK;
    }
    for msg in &root_causes {
        eprintln!("error: {msg}");
    }
    eprintln!("warning: some points failed; their cells render as n/a above");
    crate::exit_code::PARTIAL
}
