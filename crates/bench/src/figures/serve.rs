//! The `serve` subcommand: a long-lived simulation service.
//!
//! ```text
//! swarm serve                         # pipe mode: protocol on stdin/stdout
//! swarm serve --tcp 127.0.0.1:7433    # TCP mode: one session per connection
//! swarm serve --cache-dir .swarm-cache
//! ```
//!
//! The protocol, cache, and scheduling core live in `swarm_serve`; this
//! module supplies the [`PointRunner`] implementation on top of the
//! work-sharing [`Pool`] (so `--jobs` means the same thing it means for
//! every sweep command) and maps the session outcome onto the harness exit
//! codes: a protocol error or invalid point exits
//! [`USAGE`](crate::exit_code::USAGE), a simulation failure exits
//! [`PARTIAL`](crate::exit_code::PARTIAL) — after the session completes,
//! since a serve session keeps answering across bad requests by design.

use std::path::PathBuf;
use std::sync::mpsc;

use swarm_serve::{
    FailureKind, PipeSummary, PointFailure, PointOutcome, PointRunner, RunPoint, ServeOptions,
    Server, TcpServer,
};
use swarm_sim::SimObserver;

use crate::pool::{FailurePolicy, Pool};
use crate::runner::{run_point_result_observed, RunError, RunRequest};

/// A serve [`RunPoint`] as a harness [`RunRequest`] — field for field; the
/// two types exist so `swarm_serve` does not depend on this crate.
fn to_request(point: &RunPoint) -> RunRequest {
    RunRequest {
        spec: point.spec,
        scheduler: point.scheduler,
        cores: point.cores,
        scale: point.scale,
        seed: point.seed,
        fault: point.fault,
        noc: point.noc,
    }
}

/// Project a [`RunError`] onto the protocol failure taxonomy. The wire
/// message is the error's display form, which already names the point.
fn to_failure(err: &RunError) -> PointFailure {
    let kind = match err {
        RunError::InvalidPoint { .. } => FailureKind::InvalidPoint,
        RunError::Sim { .. } => FailureKind::Sim,
        RunError::Panicked { .. } => FailureKind::Panicked,
        RunError::Skipped { .. } => FailureKind::Skipped,
    };
    PointFailure { kind, message: err.to_string() }
}

/// Streams GVT updates out of the engine thread to the session handler.
struct GvtSender {
    tx: mpsc::Sender<u64>,
}

impl SimObserver for GvtSender {
    fn on_gvt_update(&mut self, now: u64) {
        // The receiver may have hung up (the handler stops draining on I/O
        // failure); progress is best-effort, the run itself must not care.
        let _ = self.tx.send(now);
    }
}

/// The [`PointRunner`] the server schedules on: batches go through the
/// work-sharing [`Pool`] under [`FailurePolicy::CollectAll`] (one bad point
/// must not skip its batch-mates), observed runs get a [`GvtSender`]
/// attached.
pub(crate) struct PoolRunner {
    pool: Pool,
}

impl PoolRunner {
    pub(crate) fn new(jobs: usize) -> PoolRunner {
        PoolRunner { pool: Pool::new(jobs).with_policy(FailurePolicy::CollectAll) }
    }
}

impl PointRunner for PoolRunner {
    fn run_batch(&self, points: &[RunPoint]) -> Vec<PointOutcome> {
        let requests: Vec<RunRequest> = points.iter().map(to_request).collect();
        self.pool
            .try_run_matrix(&requests)
            .into_iter()
            .map(|result| result.map_err(|err| to_failure(&err)))
            .collect()
    }

    fn run_observed(&self, point: &RunPoint, on_gvt: &mut dyn FnMut(u64)) -> PointOutcome {
        let request = to_request(point);
        let result = std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            let engine =
                scope.spawn(move || run_point_result_observed(request, false, GvtSender { tx }));
            // Drain until the engine drops its sender (run complete).
            for gvt in rx {
                on_gvt(gvt);
            }
            engine.join().expect("the observed runner converts panics into RunError")
        });
        result.map_err(|err| to_failure(&err))
    }
}

/// The flags `serve` accepts (all optional), for usage and did-you-mean.
const SERVE_FLAGS: &[&str] = &[
    "--tcp",
    "--cache-dir",
    "--jobs",
    "--mem-entries",
    "--inflight",
    "--batch",
    "--progress-every",
    "--help",
];

fn usage() -> String {
    [
        "usage: swarm serve [--tcp ADDR] [--cache-dir DIR] [--jobs N]",
        "                   [--mem-entries N] [--inflight N] [--batch N] [--progress-every N]",
        "",
        "Long-lived simulation service speaking line-delimited JSON.",
        "Default is pipe mode (requests on stdin, events on stdout);",
        "--tcp ADDR serves one session per TCP connection instead.",
        "",
        "  --tcp ADDR            listen on ADDR (e.g. 127.0.0.1:7433; port 0 picks one)",
        "  --cache-dir DIR       persist results to DIR (content-addressed, survives restarts)",
        "  --jobs N              simulation worker threads (0 = available parallelism)",
        "  --mem-entries N       in-memory cache capacity in results (default 1024)",
        "  --inflight N          max queued points per client per batch (default 4)",
        "  --batch N             max points per dispatch batch (default 16)",
        "  --progress-every N    emit one progress event per N GVT updates (default 64)",
    ]
    .join("\n")
}

#[derive(Debug)]
struct ServeArgs {
    tcp: Option<String>,
    jobs: usize,
    options: ServeOptions,
}

fn parse_serve_args(args: &[String]) -> Result<Option<ServeArgs>, String> {
    let mut it = args.iter();
    let mut tcp = None;
    let mut jobs = 0usize;
    let mut options = ServeOptions::default();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--tcp" => tcp = Some(value("--tcp")?),
            "--cache-dir" => options.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--jobs" => {
                jobs = parse_num(&value("--jobs")?, "--jobs")?;
            }
            "--mem-entries" => {
                options.mem_entries = parse_num(&value("--mem-entries")?, "--mem-entries")?;
            }
            "--inflight" => {
                options.inflight_per_client = parse_num(&value("--inflight")?, "--inflight")?;
            }
            "--batch" => {
                options.batch_points = parse_num(&value("--batch")?, "--batch")?;
            }
            "--progress-every" => {
                options.progress_every =
                    parse_num(&value("--progress-every")?, "--progress-every")?;
            }
            other => {
                let mut msg = format!("unknown flag '{other}'");
                if let Some(near) = crate::cli::closest_flag(other, SERVE_FLAGS.iter().copied()) {
                    msg.push_str(&format!(" (did you mean '{near}'?)"));
                }
                return Err(msg);
            }
        }
    }
    Ok(Some(ServeArgs { tcp, jobs, options }))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{flag}: '{raw}' is not a valid number"))
}

/// Run the `serve` command with the argument slice following the
/// subcommand name.
pub fn run(args: &[String]) -> i32 {
    let parsed = match parse_serve_args(args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            println!("{}", usage());
            return crate::exit_code::OK;
        }
        Err(msg) => {
            eprintln!("swarm serve: {msg}");
            eprintln!("{}", usage());
            return crate::exit_code::USAGE;
        }
    };
    let runner = PoolRunner::new(parsed.jobs);
    let server = match Server::new(runner, parsed.options) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("swarm serve: creating cache directory failed: {err}");
            return crate::exit_code::USAGE;
        }
    };
    match parsed.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            match server.serve_pipe(stdin.lock(), stdout.lock()) {
                Ok(summary) => summary_exit_code(summary),
                Err(err) => {
                    eprintln!("swarm serve: session I/O failed: {err}");
                    crate::exit_code::PARTIAL
                }
            }
        }
        Some(addr) => {
            let tcp = match TcpServer::spawn(addr.as_str(), server) {
                Ok(tcp) => tcp,
                Err(err) => {
                    eprintln!("swarm serve: binding {addr} failed: {err}");
                    return crate::exit_code::USAGE;
                }
            };
            eprintln!("swarm serve: listening on {}", tcp.local_addr());
            // Serve until the process is killed: the accept loop owns the
            // lifetime; joining it blocks forever, which is the point of a
            // long-lived service.
            loop {
                std::thread::park();
            }
        }
    }
}

/// Map what a pipe session saw onto the harness exit codes: protocol
/// errors and invalid points are usage errors, simulation failures are
/// partial results, a clean session is OK.
fn summary_exit_code(summary: PipeSummary) -> i32 {
    if summary.saw_protocol_error || summary.saw_invalid_point {
        crate::exit_code::USAGE
    } else if summary.saw_run_failure {
        crate::exit_code::PARTIAL
    } else {
        crate::exit_code::OK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_apps::{AppSpec, BenchmarkId, InputScale};

    #[test]
    fn pool_runner_matches_the_direct_runner_bit_for_bit() {
        let point = RunPoint::new(
            AppSpec::coarse(BenchmarkId::Sssp),
            Scheduler::Hints,
            4,
            InputScale::Tiny,
        );
        let direct = crate::runner::run_point_result(to_request(&point), false).unwrap();
        let via_pool = PoolRunner::new(1).run_batch(&[point]).pop().unwrap().unwrap();
        assert_eq!(via_pool, direct);
    }

    #[test]
    fn observed_run_streams_gvt_and_matches_the_unobserved_run() {
        let point =
            RunPoint::new(AppSpec::coarse(BenchmarkId::Des), Scheduler::Hints, 4, InputScale::Tiny);
        let mut gvts: Vec<u64> = Vec::new();
        let observed = PoolRunner::new(1).run_observed(&point, &mut |gvt| gvts.push(gvt)).unwrap();
        let direct = crate::runner::run_point_result(to_request(&point), false).unwrap();
        assert_eq!(observed, direct, "observation must not perturb the run");
        assert!(!gvts.is_empty(), "a real run advances GVT at least once");
        assert!(gvts.windows(2).all(|w| w[0] <= w[1]), "GVT is monotonic: {gvts:?}");
    }

    #[test]
    fn failures_project_onto_the_protocol_taxonomy() {
        let request = to_request(&RunPoint::new(
            AppSpec::coarse(BenchmarkId::Bfs),
            Scheduler::Random,
            2,
            InputScale::Tiny,
        ));
        let cases = [
            (
                RunError::InvalidPoint { request, error: swarm_sim::BuildError::ZeroTaskLimit },
                FailureKind::InvalidPoint,
            ),
            (
                RunError::Sim { request, error: swarm_types::SimError::TaskLimitExceeded(1) },
                FailureKind::Sim,
            ),
            (RunError::Panicked { request, message: "boom".into() }, FailureKind::Panicked),
            (RunError::Skipped { request }, FailureKind::Skipped),
        ];
        for (err, kind) in cases {
            let failure = to_failure(&err);
            assert_eq!(failure.kind, kind);
            assert_eq!(failure.message, err.to_string());
        }
    }

    #[test]
    fn serve_args_parse_strictly_with_did_you_mean() {
        let ok = parse_serve_args(&["--jobs".into(), "2".into(), "--batch".into(), "8".into()])
            .unwrap()
            .unwrap();
        assert_eq!(ok.jobs, 2);
        assert_eq!(ok.options.batch_points, 8);
        assert!(parse_serve_args(&["--help".into()]).unwrap().is_none());
        let err = parse_serve_args(&["--tpc".into(), "x".into()]).unwrap_err();
        assert!(err.contains("did you mean '--tcp'?"), "{err}");
        let err = parse_serve_args(&["--cache-dir".into()]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }
}
