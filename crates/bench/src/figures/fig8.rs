//! Fig. 8: core-cycle and NoC-traffic breakdowns of the fine-grain versions
//! of bfs, sssp, astar and color at the largest core count, under Random,
//! Stealing and Hints, normalized to the coarse-grain version under Random.

use crate::{
    format_breakdown_table_results, format_traffic_queueing_table_results,
    format_traffic_table_results, HarnessArgs,
};
use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_types::NocModel;

/// Run the `fig8` command with the argument slice that follows the
/// subcommand name (`swarm fig8 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let args = &args;
    let schedulers =
        args.schedulers_or(&[Scheduler::Random, Scheduler::Stealing, Scheduler::Hints]);
    let cores = args.max_cores();
    let benches: Vec<BenchmarkId> =
        BenchmarkId::WITH_FINE_GRAIN.into_iter().filter(|b| args.apps.contains(b)).collect();

    // Per bench: the CG-Random normalization baseline (as in the paper),
    // then the FG runs — all batched into one labelled matrix.
    let entries = args.pool().try_run_labeled(
        benches
            .iter()
            .flat_map(|&bench| {
                let base = args.request(AppSpec::coarse(bench), Scheduler::Random, cores);
                std::iter::once(("CG-Random".to_string(), base)).chain(schedulers.iter().map(
                    move |&s| {
                        (format!("FG-{}", s.name()), args.request(AppSpec::fine(bench), s, cores))
                    },
                ))
            })
            .collect(),
    );

    for (bench, bench_entries) in benches.iter().zip(entries.chunks(schedulers.len() + 1)) {
        println!(
            "Fig. 8a [{}]: FG core-cycle breakdown at {cores} cores (normalized to CG-Random)",
            bench.name()
        );
        println!("{}", format_breakdown_table_results(bench_entries));
        println!(
            "Fig. 8b [{}]: FG NoC data breakdown at {cores} cores (normalized to CG-Random)",
            bench.name()
        );
        // The contention model adds the queueing-delay column; analytic
        // output stays byte-identical to the pinned figures.
        if args.noc == NocModel::Contention {
            println!("{}", format_traffic_queueing_table_results(bench_entries));
        } else {
            println!("{}", format_traffic_table_results(bench_entries));
        }
    }

    super::report_failures(entries.iter().filter_map(|(_, r)| r.as_ref().err()))
}
