//! Table II: configuration of the simulated system (formerly the `table2`
//! binary; renamed so `table2` can report the beyond-Table-I workloads).
//!
//! This is the one harness binary that runs no simulations (it only prints
//! the machine parameters), so it takes no sweep or `--jobs` flags.

use swarm_types::SystemConfig;

/// Run the `sysconfig` command with the argument slice that follows the
/// subcommand name (`swarm sysconfig <args...>`).
pub fn run(_args: &[String]) -> i32 {
    let cfg = SystemConfig::paper_256core();
    println!("Table II: configuration of the {}-core system", cfg.num_cores());
    println!(
        "  Cores       {} cores in {} tiles ({} cores/tile)",
        cfg.num_cores(),
        cfg.num_tiles(),
        cfg.cores_per_tile
    );
    println!(
        "  L1 caches   {} lines/core, {}-cycle latency",
        cfg.cache.l1_lines, cfg.cache.l1_latency
    );
    println!(
        "  L2 caches   {} lines/tile, {}-cycle latency",
        cfg.cache.l2_lines, cfg.cache.l2_latency
    );
    println!(
        "  L3 cache    {} lines/slice (static NUCA), {}-cycle bank latency",
        cfg.cache.l3_lines_per_tile, cfg.cache.l3_latency
    );
    println!("  Main mem    {}-cycle latency", cfg.cache.mem_latency);
    println!(
        "  NoC         {}x{} mesh, {}-bit links, X-Y routing, {} cycle/hop (+{} on turns)",
        cfg.tiles_x, cfg.tiles_y, cfg.noc.link_bits, cfg.noc.hop_latency, cfg.noc.turn_penalty
    );
    println!(
        "  Queues      {} task queue entries/core ({} total), {} commit queue entries/core ({} total)",
        cfg.queues.task_queue_per_core,
        cfg.queues.task_queue_per_core * cfg.num_cores(),
        cfg.queues.commit_queue_per_core,
        cfg.queues.commit_queue_per_core * cfg.num_cores()
    );
    println!("  Swarm instrs {} cycles per enqueue/dequeue/finish", cfg.spec.task_mgmt_cost);
    println!(
        "  Conflicts   {}-bit {}-way Bloom filters, {}-cycle checks (+{}/comparison)",
        cfg.spec.bloom_bits,
        cfg.spec.bloom_hashes,
        cfg.spec.conflict_check_cost,
        cfg.spec.conflict_compare_cost
    );
    println!("  Commits     GVT updates every {} cycles", cfg.spec.gvt_epoch);
    println!(
        "  Spills      coalescers fire at {}% occupancy, spill up to {} tasks",
        cfg.queues.spill_threshold_pct, cfg.queues.spill_batch
    );
    println!(
        "  LB          {} buckets/tile, reconfig every {} cycles, correction {}%",
        cfg.lb_buckets_per_tile, cfg.lb_epoch, cfg.lb_correction_pct
    );

    crate::exit_code::OK
}
