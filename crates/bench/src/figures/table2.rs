//! Table 2 (this repository, not the paper): the workloads beyond Table I —
//! `maxflow`, `triangle` and `kvstore` — characterised like Table I and
//! swept across all four schedulers.
//!
//! The paper's evaluation fixes nine benchmarks; these three were added
//! because their hint/locality structure stresses the mechanisms
//! differently: `maxflow` pushes write sets two hops wide (vertex hints
//! cover a smaller access share), `triangle` hints by the lower-degree
//! endpoint of each edge (a long-tail hint distribution), and `kvstore`
//! draws keys from a Zipfian so a few hints dominate (the load balancer's
//! favourite regime). See the module docs of `swarm_apps::{maxflow,
//! triangle, kvstore}`.
//!
//! Defaults to the three new workloads and all four schedulers; `--apps`
//! and `--schedulers` override. Pool-parallel like every other harness
//! binary: `--jobs N` output is byte-identical to `--jobs 1`.

use crate::{format_speedup_table_results, CurveSpec, HarnessArgs};
use swarm_apps::{AppSpec, BenchmarkId};

/// Run the `table2` command with the argument slice that follows the
/// subcommand name (`swarm table2 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let apps = args.apps_or(&BenchmarkId::BEYOND_TABLE1);

    println!("Table 2: workloads beyond Table I (scale: {:?}, seed: {:#x})", args.scale, args.seed);
    println!(
        "{:<9} {:<9} {:<10} {:<24} {:>6}  hint pattern",
        "bench", "kind", "source", "input", "#fns"
    );
    for &bench in &apps {
        let app = AppSpec::coarse(bench).build(args.scale, args.seed);
        println!(
            "{:<9} {:<9} {:<10} {:<24} {:>6}  {}",
            bench.name(),
            if bench.is_ordered() { "ordered" } else { "unordered" },
            bench.source(),
            bench.paper_input(),
            app.num_task_fns(),
            bench.hint_pattern()
        );
    }
    println!();

    let series: Vec<CurveSpec> = apps
        .iter()
        .flat_map(|&bench| {
            args.schedulers.iter().map(move |&s| (s.name().to_string(), AppSpec::coarse(bench), s))
        })
        .collect();
    let curves = args.pool().try_speedup_curves(&series, &args.cores, args.scale, args.seed);

    for (bench, app_curves) in apps.iter().zip(curves.chunks(args.schedulers.len())) {
        println!("Table 2 [{}]: speedup vs cores", bench.name());
        println!("{}", format_speedup_table_results(app_curves));
    }

    super::report_failures(
        curves.iter().flat_map(|(_, points)| points).filter_map(|p| p.as_ref().err()),
    )
}
