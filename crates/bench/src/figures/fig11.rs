//! Fig. 11: core-cycle breakdown of des, nocsim, silo and kmeans at the
//! largest core count under Random, Stealing, Hints and LBHints (normalized
//! to Random) — the benchmarks where the data-centric load balancer matters.

use crate::{format_breakdown_table_results, HarnessArgs};
use swarm_apps::{AppSpec, BenchmarkId};

/// Run the `fig11` command with the argument slice that follows the
/// subcommand name (`swarm fig11 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let args = &args;
    let cores = args.max_cores();
    let benches: Vec<BenchmarkId> =
        [BenchmarkId::Des, BenchmarkId::Nocsim, BenchmarkId::Silo, BenchmarkId::Kmeans]
            .into_iter()
            .filter(|b| args.apps.contains(b))
            .collect();

    let entries = args.pool().try_run_labeled(
        benches
            .iter()
            .flat_map(|&bench| {
                let spec = AppSpec::coarse(bench);
                args.schedulers
                    .iter()
                    .map(move |&s| (s.name().to_string(), args.request(spec, s, cores)))
            })
            .collect(),
    );

    for (bench, bench_entries) in benches.iter().zip(entries.chunks(args.schedulers.len())) {
        println!(
            "Fig. 11 [{}]: core-cycle breakdown at {cores} cores (normalized to Random)",
            bench.name()
        );
        println!("{}", format_breakdown_table_results(bench_entries));
    }

    super::report_failures(entries.iter().filter_map(|(_, r)| r.as_ref().err()))
}
