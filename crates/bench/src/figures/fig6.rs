//! Fig. 6: access classification of coarse-grain (CG) vs fine-grain (FG)
//! versions of bfs, sssp, astar and color. FG bars are normalized to the CG
//! total of the same application, so values above 1.0 show the extra
//! accesses (work) fine-grain tasks perform.

use crate::{classification_header, format_classification_row, HarnessArgs, RunRequest};
use spatial_hints::{classify_accesses, ClassifierConfig, Scheduler};
use swarm_apps::{AppSpec, BenchmarkId};

/// Run the `fig6` command with the argument slice that follows the
/// subcommand name (`swarm fig6 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let benches: Vec<BenchmarkId> =
        BenchmarkId::WITH_FINE_GRAIN.into_iter().filter(|b| args.apps.contains(b)).collect();

    // CG and FG profiled runs for every selected bench, in one matrix.
    let labeled: Vec<(String, AppSpec)> = benches
        .iter()
        .flat_map(|&bench| {
            [
                (format!("{}-cg", bench.name()), AppSpec::coarse(bench)),
                (format!("{}-fg", bench.name()), AppSpec::fine(bench)),
            ]
        })
        .collect();
    let requests: Vec<RunRequest> =
        labeled.iter().map(|&(_, spec)| args.request(spec, Scheduler::Hints, 4)).collect();
    let all_stats = args.pool().run_matrix_profiled(&requests);

    println!("Fig. 6: access classification, coarse-grain vs fine-grain (normalized to CG total)");
    print!("{}", classification_header());
    let mut cg_total = 0;
    for (i, ((label, _), stats)) in labeled.iter().zip(&all_stats).enumerate() {
        let classification =
            classify_accesses(&stats.committed_accesses, ClassifierConfig::default());
        // Even entries are the CG runs: they set the normalization baseline
        // for themselves and the FG run that follows.
        if i % 2 == 0 {
            cg_total = classification.total();
        }
        print!("{}", format_classification_row(label, &classification, cg_total));
    }

    crate::exit_code::OK
}
