//! Section VI-A ablation: committed-cycles vs idle-task-count as the load
//! balancer's signal, on the four load-imbalanced benchmarks. The paper
//! finds the idle-count variant performs significantly worse because
//! balancing queued tasks does not balance useful work.

use crate::{HarnessArgs, RunRequest};
use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};

const SIGNALS: [Scheduler; 3] = [Scheduler::Hints, Scheduler::LbHints, Scheduler::IdleLb];

/// Run the `ablation_lb` command with the argument slice that follows the
/// subcommand name (`swarm ablation_lb <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let args = &args;
    let cores = args.max_cores();
    let benches: Vec<BenchmarkId> =
        [BenchmarkId::Des, BenchmarkId::Nocsim, BenchmarkId::Silo, BenchmarkId::Kmeans]
            .into_iter()
            .filter(|b| args.apps.contains(b))
            .collect();

    let requests: Vec<RunRequest> = benches
        .iter()
        .flat_map(|&bench| {
            SIGNALS
                .iter()
                .map(move |&scheduler| args.request(AppSpec::coarse(bench), scheduler, cores))
        })
        .collect();
    let all_stats = args.pool().run_matrix(&requests);

    println!("Section VI-A ablation at {cores} cores: load-balancer signal comparison");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>16}{:>16}",
        "app", "Hints", "LBHints", "IdleLB", "LB vs Hints", "Idle vs Hints"
    );
    for (bench, stats) in benches.iter().zip(all_stats.chunks(SIGNALS.len())) {
        let [hints, lb, idle] = [0, 1, 2].map(|i| stats[i].runtime_cycles as f64);
        println!(
            "{:<8}{:>12.0}{:>12.0}{:>12.0}{:>15.1}%{:>15.1}%",
            bench.name(),
            hints,
            lb,
            idle,
            (hints / lb - 1.0) * 100.0,
            (hints / idle - 1.0) * 100.0
        );
    }
    println!("(positive percentages mean the load balancer improved over plain Hints)");

    crate::exit_code::OK
}
