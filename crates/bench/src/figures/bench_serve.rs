//! The `bench-serve` load generator: measure the serving stack end to end.
//!
//! Spins up an in-process TCP [`swarm_serve::Server`] (on an ephemeral
//! port, scheduling on the same pool-backed runner as `swarm serve`),
//! then replays a seeded, deterministic request mix from concurrent
//! protocol clients and reports requests/s, points/s, the cache hit rate,
//! and per-request latency percentiles. Two series are committed to the
//! benchmark snapshot (`BENCH_mechanisms.json` by default) so the serving
//! path's throughput and cache effectiveness are tracked in version
//! control alongside the memory-system mechanisms:
//!
//! ```text
//! swarm bench-serve [--clients N] [--requests N] [--distinct N]
//!                   [--scale S] [--seed N] [--jobs N] [--out PATH] [--test]
//! ```
//!
//! The mix draws each request from `--distinct` precomputed matrices via a
//! [`hash64`] chain, so repeats are guaranteed and the measured hit rate is
//! a property of the seed, not of wall-clock chance. `--test` is the CI
//! smoke mode: fewer clients and requests, same schema.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_serve::{
    parse_event, proto::render_request, CacheReport, Event, Request, RunPoint, ServeOptions,
    Server, SubmitRequest, TcpServer,
};
use swarm_types::hash64;

use crate::cli::HarnessArgs;
use crate::figures::serve::PoolRunner;

/// Applications the mix draws from (fast at tiny scale, all Table I).
const MIX_APPS: &[BenchmarkId] = &[BenchmarkId::Sssp, BenchmarkId::Bfs, BenchmarkId::Des];

/// Schedulers the mix draws from.
const MIX_SCHEDULERS: &[Scheduler] = &[Scheduler::Hints, Scheduler::Random];

/// Core counts the mix draws from.
const MIX_CORES: &[u32] = &[1, 2, 4];

/// Build the pool of distinct run matrices the request mix draws from.
/// Everything derives from `seed` through [`hash64`] chains: same seed,
/// same matrices, same measured hit rate.
fn build_matrices(distinct: usize, scale: InputScale, seed: u64) -> Vec<Vec<RunPoint>> {
    (0..distinct as u64)
        .map(|m| {
            let h = hash64(seed ^ hash64(m.wrapping_add(1)));
            let len = 1 + (h % 3) as usize;
            (0..len as u64)
                .map(|p| {
                    let hp = hash64(h ^ hash64(p.wrapping_add(1)));
                    let app = MIX_APPS[(hp % MIX_APPS.len() as u64) as usize];
                    let scheduler =
                        MIX_SCHEDULERS[((hp >> 8) % MIX_SCHEDULERS.len() as u64) as usize];
                    let cores = MIX_CORES[((hp >> 16) % MIX_CORES.len() as u64) as usize];
                    RunPoint::new(AppSpec::coarse(app), scheduler, cores, scale)
                })
                .collect()
        })
        .collect()
}

/// What one client thread measured.
#[derive(Default)]
struct ClientReport {
    latencies: Vec<Duration>,
    points_ok: u64,
    points_failed: u64,
    cache: CacheReport,
    protocol_violations: u64,
}

/// Replay `requests` submissions drawn from `matrices` over one TCP
/// connection, measuring submit-to-run-done latency for each.
fn run_client(
    addr: std::net::SocketAddr,
    client: u64,
    requests: usize,
    seed: u64,
    matrices: &[Vec<RunPoint>],
) -> std::io::Result<ClientReport> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut report = ClientReport::default();
    let mut line = String::new();
    for request in 0..requests as u64 {
        let pick = hash64(seed ^ (client << 32) ^ request) % matrices.len() as u64;
        let id = format!("c{client}-r{request}");
        let submit = Request::Submit(SubmitRequest {
            id: id.clone(),
            points: matrices[pick as usize].clone(),
            progress: false,
        });
        let start = Instant::now();
        writer.write_all(render_request(&submit).as_bytes())?;
        writer.write_all(b"\n")?;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                report.protocol_violations += 1;
                return Ok(report);
            }
            match parse_event(line.trim_end()) {
                Err(_) | Ok(Event::Protocol(_)) => report.protocol_violations += 1,
                Ok(Event::PointFinished { .. }) => report.points_ok += 1,
                Ok(Event::PointFailed { .. }) => report.points_failed += 1,
                Ok(Event::RunDone { id: done_id, cache, .. }) => {
                    if done_id != id {
                        report.protocol_violations += 1;
                    }
                    report.latencies.push(start.elapsed());
                    report.cache.hits += cache.hits;
                    report.cache.misses += cache.misses;
                    report.cache.disk_hits += cache.disk_hits;
                    break;
                }
                Ok(_) => {}
            }
        }
    }
    writer.write_all(render_request(&Request::Shutdown).as_bytes())?;
    writer.write_all(b"\n")?;
    Ok(report)
}

/// Percentile by nearest-rank on a sorted slice.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Merge the serve series into the benchmark snapshot at `path`,
/// preserving every non-`serve_`-prefixed entry (the mechanisms series the
/// `bench` command owns) and the file's spaced, 4-space-indented layout.
fn merge_snapshot(path: &str, serve_entries: &[String]) -> std::io::Result<()> {
    let mut kept: Vec<String> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(value) = swarm_serve::json::parse(&text) {
            if let Some(results) = value.get("results").and_then(swarm_serve::Value::as_arr) {
                for entry in results {
                    let name = entry.get("name").and_then(swarm_serve::Value::as_str);
                    if name.is_some_and(|n| !n.starts_with("serve_")) {
                        kept.push(format!("    {}", entry.render_spaced()));
                    }
                }
            }
        }
    }
    kept.extend(serve_entries.iter().cloned());
    let json = format!(
        "{{\n  \"bench\": \"mechanisms\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n{}\n  ]\n}}\n",
        kept.join(",\n")
    );
    std::fs::write(path, json)
}

/// Run the `bench-serve` command with the argument slice following the
/// subcommand name.
pub fn run(raw: &[String]) -> i32 {
    let extras = [
        crate::ExtraFlag { name: "--clients", takes_value: true },
        crate::ExtraFlag { name: "--requests", takes_value: true },
        crate::ExtraFlag { name: "--distinct", takes_value: true },
        crate::ExtraFlag { name: "--out", takes_value: true },
        crate::ExtraFlag { name: "--test", takes_value: false },
    ];
    let args = match HarnessArgs::parse_args_with(raw, &extras) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let fast = raw.iter().any(|a| a == "--test");
    let (mut clients, mut requests, mut distinct) =
        if fast { (2usize, 4usize, 3usize) } else { (4, 25, 8) };
    let mut out = String::from("BENCH_mechanisms.json");
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("bench-serve: {name} requires a positive integer");
                std::process::exit(crate::exit_code::USAGE);
            })
        };
        match flag.as_str() {
            "--clients" => clients = num("--clients"),
            "--requests" => requests = num("--requests"),
            "--distinct" => distinct = num("--distinct"),
            "--out" => {
                out = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("bench-serve: --out requires a path");
                    std::process::exit(crate::exit_code::USAGE);
                });
            }
            _ => {}
        }
    }

    let matrices = build_matrices(distinct, args.scale, args.seed);
    let total_points: usize = matrices.iter().map(Vec::len).sum();
    println!(
        "bench-serve: {clients} clients x {requests} requests over {distinct} distinct matrices \
         ({total_points} distinct points, scale {:?}, seed {:#x})",
        args.scale, args.seed
    );

    let server = Server::new(PoolRunner::new(args.jobs), ServeOptions::default())
        .expect("no cache dir is configured, so server creation cannot fail");
    let tcp = TcpServer::spawn("127.0.0.1:0", server).expect("binding an ephemeral port");
    let addr = tcp.local_addr();

    let seed = args.seed;
    let start = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let matrices = &matrices;
        let handles: Vec<_> = (0..clients as u64)
            .map(|client| scope.spawn(move || run_client(addr, client, requests, seed, matrices)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic").unwrap_or_default())
            .collect()
    });
    let elapsed = start.elapsed();
    tcp.shutdown();

    let mut latencies: Vec<Duration> = Vec::new();
    let mut points_ok = 0u64;
    let mut points_failed = 0u64;
    let mut violations = 0u64;
    let mut cache = CacheReport::default();
    for report in &reports {
        latencies.extend(&report.latencies);
        points_ok += report.points_ok;
        points_failed += report.points_failed;
        violations += report.protocol_violations;
        cache.hits += report.cache.hits;
        cache.misses += report.cache.misses;
        cache.disk_hits += report.cache.disk_hits;
    }
    latencies.sort_unstable();

    let completed = latencies.len();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let req_per_sec = completed as f64 / secs;
    let points_per_sec = (points_ok + points_failed) as f64 / secs;
    let lookups = cache.hits + cache.misses;
    let hit_rate = if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
    let p50 = percentile(&latencies, 50.0);
    let p90 = percentile(&latencies, 90.0);
    let p99 = percentile(&latencies, 99.0);

    println!("{:<28}{:>14}", "metric", "value");
    println!("{:<28}{:>14}", "requests completed", completed);
    println!("{:<28}{:>14.1}", "requests/s", req_per_sec);
    println!("{:<28}{:>14.1}", "points/s", points_per_sec);
    println!("{:<28}{:>14.3}", "cache hit rate", hit_rate);
    println!("{:<28}{:>14.1}", "latency p50 (us)", p50.as_nanos() as f64 / 1e3);
    println!("{:<28}{:>14.1}", "latency p90 (us)", p90.as_nanos() as f64 / 1e3);
    println!("{:<28}{:>14.1}", "latency p99 (us)", p99.as_nanos() as f64 / 1e3);
    println!("{:<28}{:>14}", "points ok", points_ok);
    println!("{:<28}{:>14}", "points failed", points_failed);
    println!("{:<28}{:>14}", "protocol violations", violations);

    let serve_entries = vec![
        format!(
            "    {{\"name\": \"serve_requests_per_sec\", \"requests_per_sec\": {req_per_sec:.1}}}"
        ),
        format!("    {{\"name\": \"serve_cache_hit_rate\", \"hit_rate\": {hit_rate:.3}}}"),
        format!(
            "    {{\"name\": \"serve_latency_p50_us\", \"us\": {:.1}}}",
            p50.as_nanos() as f64 / 1e3
        ),
        format!(
            "    {{\"name\": \"serve_latency_p99_us\", \"us\": {:.1}}}",
            p99.as_nanos() as f64 / 1e3
        ),
    ];
    match merge_snapshot(&out, &serve_entries) {
        Ok(()) => println!("wrote {out}"),
        Err(err) => {
            eprintln!("bench-serve: writing {out} failed: {err}");
            return crate::exit_code::PARTIAL;
        }
    }

    if violations > 0 {
        eprintln!("bench-serve: {violations} protocol violations — the serving stack is broken");
        crate::exit_code::CHAOS
    } else if points_failed > 0 {
        crate::exit_code::PARTIAL
    } else {
        crate::exit_code::OK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_deterministic_in_the_seed() {
        let a = build_matrices(8, InputScale::Tiny, 0xF1605);
        let b = build_matrices(8, InputScale::Tiny, 0xF1605);
        assert_eq!(a, b);
        let c = build_matrices(8, InputScale::Tiny, 0xF1606);
        assert_ne!(a, c, "a different seed draws a different mix");
        assert!(a.iter().all(|m| (1..=3).contains(&m.len())));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn snapshot_merge_preserves_foreign_entries_and_replaces_serve_series() {
        let path =
            std::env::temp_dir().join(format!("bench_serve_merge_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let original = "{\n  \"bench\": \"mechanisms\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n    {\"name\": \"lru_set_insert\", \"ns_per_op\": 8.3},\n    {\"name\": \"serve_cache_hit_rate\", \"hit_rate\": 0.1}\n  ]\n}\n";
        std::fs::write(&path, original).unwrap();
        let entries =
            vec!["    {\"name\": \"serve_cache_hit_rate\", \"hit_rate\": 0.9}".to_string()];
        merge_snapshot(&path, &entries).unwrap();
        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("{\"name\": \"lru_set_insert\", \"ns_per_op\": 8.3}"), "{merged}");
        assert!(merged.contains("\"hit_rate\": 0.9"), "{merged}");
        assert!(!merged.contains("0.1"), "stale serve series must be replaced: {merged}");
        swarm_serve::json::parse(&merged).expect("merged snapshot stays valid JSON");
        std::fs::remove_file(&path).unwrap();
    }
}
