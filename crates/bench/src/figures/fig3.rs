//! Fig. 3: architecture-independent classification of memory accesses made
//! by committing tasks, per application: arguments, single-/multi-hint ×
//! read-only/read-write.

use crate::{classification_header, format_classification_row, HarnessArgs, RunRequest};
use spatial_hints::{classify_accesses, ClassifierConfig, Scheduler};
use swarm_apps::AppSpec;

/// Run the `fig3` command with the argument slice that follows the
/// subcommand name (`swarm fig3 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let requests: Vec<RunRequest> = args
        .apps
        .iter()
        .map(|&bench| args.request(AppSpec::coarse(bench), Scheduler::Hints, 4))
        .collect();
    let all_stats = args.pool().run_matrix_profiled(&requests);

    println!("Fig. 3: classification of memory accesses (fractions of each app's total)");
    print!("{}", classification_header());
    for (bench, stats) in args.apps.iter().zip(&all_stats) {
        let classification =
            classify_accesses(&stats.committed_accesses, ClassifierConfig::default());
        print!(
            "{}",
            format_classification_row(bench.name(), &classification, classification.total())
        );
    }

    crate::exit_code::OK
}
