//! Fig. 10: speedup of Random, Stealing, Hints and LBHints from 1 to N
//! cores on all nine applications. For the four benchmarks with fine-grain
//! versions, the hint-based schedulers use the fine-grain variant (the paper
//! reports the best-performing version per scheme).

use crate::{format_speedup_table_results, CurveSpec, HarnessArgs};
use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};

/// Run the `fig10` command with the argument slice that follows the
/// subcommand name (`swarm fig10 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let series: Vec<CurveSpec> = args
        .apps
        .iter()
        .flat_map(|&bench| {
            args.schedulers.iter().map(move |&s| {
                let hint_based = matches!(s, Scheduler::Hints | Scheduler::LbHints);
                let spec = if hint_based && BenchmarkId::WITH_FINE_GRAIN.contains(&bench) {
                    AppSpec::fine(bench)
                } else {
                    AppSpec::coarse(bench)
                };
                (format!("{}{}", s.name(), if spec.fine_grain { "(FG)" } else { "" }), spec, s)
            })
        })
        .collect();
    let curves = args.pool().try_speedup_curves(&series, &args.cores, args.scale, args.seed);

    for (bench, app_curves) in args.apps.iter().zip(curves.chunks(args.schedulers.len())) {
        println!("Fig. 10 [{}]: speedup vs cores", bench.name());
        println!("{}", format_speedup_table_results(app_curves));
    }

    super::report_failures(
        curves.iter().flat_map(|(_, points)| points).filter_map(|p| p.as_ref().err()),
    )
}
