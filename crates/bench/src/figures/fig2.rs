//! Fig. 2: motivation — des under Random, Stealing, Hints and LBHints:
//! (a) speedup from 1 to N cores and (b) cycle breakdown at the largest
//! core count, normalized to Random.

use crate::{format_breakdown_table_results, format_speedup_table_results, CurveSpec, HarnessArgs};
use swarm_apps::{AppSpec, BenchmarkId};

/// Run the `fig2` command with the argument slice that follows the
/// subcommand name (`swarm fig2 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let spec = AppSpec::coarse(BenchmarkId::Des);

    // One matrix serves both parts: the largest core count is always part
    // of the sweep, so Fig. 2b reuses those points instead of re-running.
    let series: Vec<CurveSpec> =
        args.schedulers.iter().map(|&s| (s.name().to_string(), spec, s)).collect();
    let curves = args.pool().try_speedup_curves(&series, &args.cores, args.scale, args.seed);

    println!("Fig. 2a: des speedup vs cores (relative to 1-core Swarm)");
    println!("{}", format_speedup_table_results(&curves));

    let max = args.max_cores();
    println!("Fig. 2b: des cycle breakdown at {max} cores (normalized to Random)");
    let entries: Vec<_> = curves
        .iter()
        .map(|(label, points)| {
            let at_max = points
                .iter()
                .find(|p| {
                    let cores = match p {
                        Ok(point) => point.request.cores,
                        Err(err) => err.request().cores,
                    };
                    cores == max
                })
                .expect("max_cores is the largest swept core count");
            (label.clone(), at_max.clone().map(|p| p.stats))
        })
        .collect();
    println!("{}", format_breakdown_table_results(&entries));

    super::report_failures(
        curves.iter().flat_map(|(_, points)| points).filter_map(|p| p.as_ref().err()),
    )
}
