//! Fig. 7: speedup of fine-grain (FG) vs coarse-grain (CG) versions of bfs,
//! sssp, astar and color under Random, Stealing and Hints. All speedups are
//! relative to the CG version on one core.

use crate::{format_speedup_table, CurveSpec, HarnessArgs, RunRequest};
use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};

/// Run the `fig7` command with the argument slice that follows the
/// subcommand name (`swarm fig7 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let schedulers =
        args.schedulers_or(&[Scheduler::Random, Scheduler::Stealing, Scheduler::Hints]);
    let benches: Vec<BenchmarkId> =
        BenchmarkId::WITH_FINE_GRAIN.into_iter().filter(|b| args.apps.contains(b)).collect();

    // One group per bench: the shared baseline (coarse-grain on one core
    // under Hints) plus the CG/FG × scheduler series — all benches batched
    // into one flat matrix.
    let groups: Vec<(RunRequest, Vec<CurveSpec>)> = benches
        .iter()
        .map(|&bench| {
            let baseline = args.request(AppSpec::coarse(bench), Scheduler::Hints, 1);
            let series: Vec<CurveSpec> =
                [("CG", AppSpec::coarse(bench)), ("FG", AppSpec::fine(bench))]
                    .into_iter()
                    .flat_map(|(label, spec)| {
                        schedulers
                            .iter()
                            .map(move |&s| (format!("{label}-{}", s.short_label()), spec, s))
                    })
                    .collect();
            (baseline, series)
        })
        .collect();
    let results = args.pool().speedup_curve_groups(&groups, &args.cores, args.scale, args.seed);

    for (bench, (_, curves)) in benches.iter().zip(&results) {
        println!(
            "Fig. 7 [{}]: CG and FG speedup vs cores (relative to CG at 1 core)",
            bench.name()
        );
        println!("{}", format_speedup_table(curves));
    }

    crate::exit_code::OK
}
