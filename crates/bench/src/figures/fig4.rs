//! Fig. 4: speedup of the Random, Stealing and Hints schedulers from 1 to N
//! cores, for each of the nine applications.

use crate::{format_speedup_table_results, CurveSpec, HarnessArgs};
use spatial_hints::Scheduler;
use swarm_apps::AppSpec;

/// Run the `fig4` command with the argument slice that follows the
/// subcommand name (`swarm fig4 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    // Fig. 4 compares Random, Stealing and Hints (LBHints appears in Fig. 10).
    let schedulers =
        args.schedulers_or(&[Scheduler::Random, Scheduler::Stealing, Scheduler::Hints]);

    // One flat matrix across all apps × schedulers × core counts, chunked
    // back into one table per app.
    let series: Vec<CurveSpec> = args
        .apps
        .iter()
        .flat_map(|&bench| {
            let spec = AppSpec::coarse(bench);
            schedulers.iter().map(move |&s| (s.name().to_string(), spec, s))
        })
        .collect();
    let curves = args.pool().try_speedup_curves(&series, &args.cores, args.scale, args.seed);

    for (bench, app_curves) in args.apps.iter().zip(curves.chunks(schedulers.len())) {
        println!("Fig. 4 [{}]: speedup vs cores", bench.name());
        println!("{}", format_speedup_table_results(app_curves));
    }

    super::report_failures(
        curves.iter().flat_map(|(_, points)| points).filter_map(|p| p.as_ref().err()),
    )
}
