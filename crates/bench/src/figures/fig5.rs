//! Fig. 5: (a) core-cycle breakdown and (b) NoC-traffic breakdown for every
//! application at the largest core count, under Random, Stealing and Hints,
//! normalized to Random.

use crate::{
    format_breakdown_table_results, format_traffic_queueing_table_results,
    format_traffic_table_results, HarnessArgs,
};
use spatial_hints::Scheduler;
use swarm_apps::AppSpec;
use swarm_types::NocModel;

/// Run the `fig5` command with the argument slice that follows the
/// subcommand name (`swarm fig5 <args...>`).
pub fn run(args: &[String]) -> i32 {
    let args = match HarnessArgs::parse_args(args) {
        Ok(args) => args,
        Err(code) => return code,
    };
    let args = &args;
    let schedulers =
        args.schedulers_or(&[Scheduler::Random, Scheduler::Stealing, Scheduler::Hints]);
    let cores = args.max_cores();

    // One flat labelled matrix across all apps × schedulers.
    let entries = args.pool().try_run_labeled(
        args.apps
            .iter()
            .flat_map(|&bench| {
                let spec = AppSpec::coarse(bench);
                schedulers
                    .iter()
                    .map(move |&s| (s.name().to_string(), args.request(spec, s, cores)))
            })
            .collect(),
    );

    for (bench, app_entries) in args.apps.iter().zip(entries.chunks(schedulers.len())) {
        println!(
            "Fig. 5a [{}]: core-cycle breakdown at {cores} cores (normalized to Random)",
            bench.name()
        );
        println!("{}", format_breakdown_table_results(app_entries));
        println!(
            "Fig. 5b [{}]: NoC data breakdown at {cores} cores (normalized to Random)",
            bench.name()
        );
        // Under the contention model, add the queueing-delay column; the
        // default analytic output stays byte-identical to the pinned
        // figures.
        if args.noc == NocModel::Contention {
            println!("{}", format_traffic_queueing_table_results(app_entries));
        } else {
            println!("{}", format_traffic_table_results(app_entries));
        }
    }

    super::report_failures(entries.iter().filter_map(|(_, r)| r.as_ref().err()))
}
