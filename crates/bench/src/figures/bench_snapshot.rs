//! Machine-readable snapshot of the `mechanisms` microbenchmarks.
//!
//! Times the memory-system hot-path mechanisms with the same
//! calibrate-then-median harness the vendored criterion shim uses, and emits
//! `BENCH_mechanisms.json` (ns/op per mechanism) so the performance
//! trajectory of the hot path is tracked in version control, not just in
//! terminal scrollback.
//!
//! ```text
//! bench_snapshot [--out PATH]   # default: BENCH_mechanisms.json
//! ```

use std::time::Instant;

use swarm_mem::{AccessKind, CacheModel, LruSet, SimMemory};
use swarm_sim::BloomFilter;
use swarm_types::{CacheConfig, CoreId, LineAddr};

/// Samples taken per mechanism; the median is reported.
const SAMPLES: usize = 20;

/// Median ns/op of `payload`, calibrated so one sample runs >= 1 ms.
fn time_ns(mut payload: impl FnMut()) -> f64 {
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            payload();
        }
        if start.elapsed().as_micros() >= 1_000 || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                payload();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// Run the `bench_snapshot` command with the argument slice that follows the
/// subcommand name (`swarm bench <args...>`).
pub fn run(args: &[String]) {
    let mut args = args.iter().cloned();
    let mut out = String::from("BENCH_mechanisms.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out requires a path"),
            other => panic!("unknown argument {other:?} (expected --out PATH)"),
        }
    }

    let mut results: Vec<(&str, f64)> = Vec::new();

    {
        let mut caches = CacheModel::new(CacheConfig::default(), 64, 4);
        let mut i = 0u64;
        results.push((
            "cache_model_access_64tiles",
            time_ns(|| {
                i = i.wrapping_add(1);
                let core = CoreId((i % 256) as u32);
                std::hint::black_box(caches.access(core, LineAddr(i % 8192), AccessKind::Read));
            }),
        ));
    }
    {
        let mut lru = LruSet::new(4096);
        let mut i = 0u64;
        results.push((
            "lru_set_insert",
            time_ns(|| {
                i = i.wrapping_add(1);
                std::hint::black_box(lru.insert(i % 16384));
            }),
        ));
    }
    {
        let mut lru = LruSet::new(4096);
        for i in 0..4096u64 {
            lru.insert(i);
        }
        let mut i = 0u64;
        results.push((
            "lru_set_touch_hot",
            time_ns(|| {
                i = i.wrapping_add(1);
                std::hint::black_box(lru.touch(i % 4096));
            }),
        ));
    }
    {
        let mut mem = SimMemory::new();
        for i in 0..8192u64 {
            mem.store(i * 8, i);
        }
        let mut i = 0u64;
        results.push((
            "sim_memory_load_store",
            time_ns(|| {
                i = i.wrapping_add(1);
                let addr = (i % 8192) * 8;
                let value = mem.load(addr);
                std::hint::black_box(mem.store(addr, value.wrapping_add(1)));
            }),
        ));
    }
    {
        let mut mem = SimMemory::new();
        let mut i = 0u64;
        results.push((
            "sim_memory_store_logged",
            time_ns(|| {
                i = i.wrapping_add(8);
                std::hint::black_box(mem.store_logged(i % 65536, i));
            }),
        ));
    }
    {
        let mut filter = BloomFilter::new(2048, 8);
        let mut i = 0u64;
        results.push((
            "bloom_insert_2kbit_8way",
            time_ns(|| {
                i = i.wrapping_add(1);
                filter.insert(LineAddr(i % 4096));
            }),
        ));
    }

    // Hand-rolled JSON (the offline build has no serde_json); mechanism
    // names are static identifiers, so nothing needs escaping.
    let entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!("    {{\"name\": \"{name}\", \"ns_per_op\": {ns:.1}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"mechanisms\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));

    println!("{:<32}{:>12}", "mechanism", "ns/op");
    for (name, ns) in &results {
        println!("{name:<32}{ns:>12.1}");
    }
    println!("wrote {out}");
}
