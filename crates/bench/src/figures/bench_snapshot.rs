//! Machine-readable snapshot of the `mechanisms` microbenchmarks.
//!
//! Times the memory-system hot-path mechanisms with the same
//! calibrate-then-median harness the vendored criterion shim uses, and emits
//! `BENCH_mechanisms.json` (ns/op per mechanism) so the performance
//! trajectory of the hot path is tracked in version control, not just in
//! terminal scrollback.
//!
//! ```text
//! bench_snapshot [--out PATH] [--test]   # default: BENCH_mechanisms.json
//! ```
//!
//! Most entries are ns/op of one mechanism; the `engine_cycles_per_sec`
//! entry is whole-engine throughput (simulated cycles per wall-clock
//! second) on a synthetic chain workload that isolates the engine hot
//! loop. `--test` is the CI smoke mode: fewer samples, smaller workload,
//! same output schema.

use std::time::Instant;

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_mem::{AccessKind, CacheModel, LruSet, SimMemory};
use swarm_sim::{BloomFilter, InitialTask, RoundRobinMapper, Sim, SwarmApp, TaskCtx};
use swarm_types::{CacheConfig, CoreId, Hint, LineAddr, NocModel};

use crate::runner::{run_app, RunRequest};

/// Samples taken per mechanism; the median is reported.
const SAMPLES: usize = 20;

/// Samples per mechanism in `--test` (smoke) mode.
const SAMPLES_FAST: usize = 3;

/// Median ns/op of `payload`, calibrated so one sample runs >= 1 ms
/// (>= 100 us in `--test` mode).
fn time_ns_mode(fast: bool, mut payload: impl FnMut()) -> f64 {
    let floor_us = if fast { 100 } else { 1_000 };
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            payload();
        }
        if start.elapsed().as_micros() >= floor_us || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }
    let samples = if fast { SAMPLES_FAST } else { SAMPLES };
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                payload();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// Synthetic workload that isolates the engine hot loop: `roots` ordered
/// task chains of length `chain + 1`, each task touching one private line
/// and enqueuing its successor. Memory-system costs are minimal (every
/// access is a warm hit on a distinct line), so wall time is dominated by
/// the dispatch/finish/commit machinery this series tracks.
struct EngineLoop {
    roots: u64,
    chain: u64,
}

impl SwarmApp for EngineLoop {
    fn name(&self) -> &str {
        "engine_loop"
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        (0..self.roots)
            .map(|i| InitialTask::new(0, i, Hint::value(i), vec![i, self.chain]))
            .collect()
    }

    fn run_task(&self, _fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let (slot, left) = (args[0], args[1]);
        ctx.update(0x10_0000 + slot * 64, |v| v.wrapping_add(1));
        if left > 0 {
            ctx.enqueue(0, ts + 1, Hint::value(slot), vec![slot, left - 1]);
        }
    }
}

/// One full engine run of the [`EngineLoop`] workload; returns the
/// simulated runtime in cycles.
fn engine_loop_run(roots: u64, chain: u64) -> u64 {
    let mut engine = Sim::builder()
        .app(EngineLoop { roots, chain })
        .mapper(Box::new(RoundRobinMapper::new()))
        .cores(64)
        .build()
        .expect("engine_loop workload builds");
    engine.run().expect("engine_loop workload runs").runtime_cycles
}

/// Run the `bench_snapshot` command with the argument slice that follows the
/// subcommand name (`swarm bench <args...>`).
pub fn run(args: &[String]) -> i32 {
    let mut args = args.iter().cloned();
    let mut out = String::from("BENCH_mechanisms.json");
    let mut fast = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out requires a path"),
            "--test" => fast = true,
            other => panic!("unknown argument {other:?} (expected --out PATH or --test)"),
        }
    }
    let mut results: Vec<(&str, f64)> = Vec::new();

    {
        let mut caches = CacheModel::new(CacheConfig::default(), 64, 4);
        let mut i = 0u64;
        results.push((
            "cache_model_access_64tiles",
            time_ns_mode(fast, || {
                i = i.wrapping_add(1);
                let core = CoreId((i % 256) as u32);
                std::hint::black_box(caches.access(core, LineAddr(i % 8192), AccessKind::Read));
            }),
        ));
    }
    {
        let mut lru = LruSet::new(4096);
        let mut i = 0u64;
        results.push((
            "lru_set_insert",
            time_ns_mode(fast, || {
                i = i.wrapping_add(1);
                std::hint::black_box(lru.insert(i % 16384));
            }),
        ));
    }
    {
        let mut lru = LruSet::new(4096);
        for i in 0..4096u64 {
            lru.insert(i);
        }
        let mut i = 0u64;
        results.push((
            "lru_set_touch_hot",
            time_ns_mode(fast, || {
                i = i.wrapping_add(1);
                std::hint::black_box(lru.touch(i % 4096));
            }),
        ));
    }
    {
        let mut mem = SimMemory::new();
        for i in 0..8192u64 {
            mem.store(i * 8, i);
        }
        let mut i = 0u64;
        results.push((
            "sim_memory_load_store",
            time_ns_mode(fast, || {
                i = i.wrapping_add(1);
                let addr = (i % 8192) * 8;
                let value = mem.load(addr);
                std::hint::black_box(mem.store(addr, value.wrapping_add(1)));
            }),
        ));
    }
    {
        let mut mem = SimMemory::new();
        let mut i = 0u64;
        results.push((
            "sim_memory_store_logged",
            time_ns_mode(fast, || {
                i = i.wrapping_add(8);
                std::hint::black_box(mem.store_logged(i % 65536, i));
            }),
        ));
    }
    {
        let mut filter = BloomFilter::new(2048, 8);
        let mut i = 0u64;
        results.push((
            "bloom_insert_2kbit_8way",
            time_ns_mode(fast, || {
                i = i.wrapping_add(1);
                filter.insert(LineAddr(i % 4096));
            }),
        ));
    }

    // Whole-engine throughput: simulated cycles per wall-clock second on
    // the [`EngineLoop`] workload (the engine hot loop, with the memory
    // system reduced to warm hits). This is the machine-readable series
    // the ROADMAP's hot-loop item is tracked by.
    let (roots, chain) = if fast { (64, 7) } else { (256, 15) };
    let sim_cycles = engine_loop_run(roots, chain);
    let ns_per_run = time_ns_mode(fast, || {
        std::hint::black_box(engine_loop_run(roots, chain));
    });
    let engine_cycles_per_sec = sim_cycles as f64 * 1e9 / ns_per_run;

    // NoC queueing under the contention model: total link-queueing cycles
    // for Random vs Hints on two Table I apps at 16 cores, tiny scale.
    // These runs are deterministic (cycle counts, not wall time), and the
    // series is the machine-readable record that hint-based spatial
    // locality pays measurably fewer queueing cycles than random mapping.
    let mut noc_queueing: Vec<(String, u64)> = Vec::new();
    for bench in [BenchmarkId::Bfs, BenchmarkId::Des] {
        for scheduler in [Scheduler::Random, Scheduler::Hints] {
            let stats = run_app(
                RunRequest::new(AppSpec::coarse(bench), scheduler, 16, InputScale::Tiny)
                    .with_noc(NocModel::Contention),
            );
            let name =
                format!("noc_queueing_{}_{}", bench.name(), scheduler.name().to_ascii_lowercase());
            noc_queueing.push((name, stats.noc_queue_cycles));
        }
    }

    // Hand-rolled JSON (the offline build has no serde_json); mechanism
    // names are static identifiers, so nothing needs escaping.
    let mut entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!("    {{\"name\": \"{name}\", \"ns_per_op\": {ns:.1}}}"))
        .collect();
    entries.push(format!(
        "    {{\"name\": \"engine_cycles_per_sec\", \"cycles_per_sec\": {engine_cycles_per_sec:.0}}}"
    ));
    for (name, cycles) in &noc_queueing {
        entries.push(format!("    {{\"name\": \"{name}\", \"queue_cycles\": {cycles}}}"));
    }
    // The `serve_*` series belong to `bench-serve`; rewriting this file
    // must not drop them (and vice versa — bench-serve preserves ours).
    if let Ok(text) = std::fs::read_to_string(&out) {
        if let Ok(value) = swarm_serve::json::parse(&text) {
            if let Some(existing) = value.get("results").and_then(swarm_serve::Value::as_arr) {
                for entry in existing {
                    let name = entry.get("name").and_then(swarm_serve::Value::as_str);
                    if name.is_some_and(|n| n.starts_with("serve_")) {
                        entries.push(format!("    {}", entry.render_spaced()));
                    }
                }
            }
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"mechanisms\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));

    println!("{:<32}{:>12}", "mechanism", "ns/op");
    for (name, ns) in &results {
        println!("{name:<32}{ns:>12.1}");
    }
    println!("{:<32}{engine_cycles_per_sec:>12.0}", "engine_cycles_per_sec");
    for (name, cycles) in &noc_queueing {
        println!("{name:<32}{cycles:>12}");
    }
    println!("wrote {out}");

    crate::exit_code::OK
}
