//! Legacy shim: identical to `swarm fig4` (see `swarm_bench::figures::fig4`).

fn main() {
    swarm_bench::registry::run_shim("fig4");
}
