//! Fig. 4: speedup of the Random, Stealing and Hints schedulers from 1 to N
//! cores, for each of the nine applications.

use spatial_hints::Scheduler;
use swarm_apps::AppSpec;
use swarm_bench::{format_speedup_table, speedup_curve, HarnessArgs};

fn main() {
    let mut args = HarnessArgs::parse();
    // Fig. 4 compares Random, Stealing and Hints (LBHints appears in Fig. 10).
    if args.schedulers == Scheduler::ALL.to_vec() {
        args.schedulers = vec![Scheduler::Random, Scheduler::Stealing, Scheduler::Hints];
    }
    for bench in args.apps {
        let spec = AppSpec::coarse(bench);
        println!("Fig. 4 [{}]: speedup vs cores", bench.name());
        let series: Vec<(String, _)> = args
            .schedulers
            .iter()
            .map(|&s| {
                (s.name().to_string(), speedup_curve(spec, s, &args.cores, args.scale, args.seed))
            })
            .collect();
        println!("{}", format_speedup_table(&series));
    }
}
