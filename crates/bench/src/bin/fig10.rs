//! Fig. 10: speedup of Random, Stealing, Hints and LBHints from 1 to N
//! cores on all nine applications. For the four benchmarks with fine-grain
//! versions, the hint-based schedulers use the fine-grain variant (the paper
//! reports the best-performing version per scheme).

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{format_speedup_table, speedup_curve, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    for bench in args.apps {
        println!("Fig. 10 [{}]: speedup vs cores", bench.name());
        let series: Vec<(String, _)> = args
            .schedulers
            .iter()
            .map(|&s| {
                let hint_based = matches!(s, Scheduler::Hints | Scheduler::LbHints);
                let spec = if hint_based && BenchmarkId::WITH_FINE_GRAIN.contains(&bench) {
                    AppSpec::fine(bench)
                } else {
                    AppSpec::coarse(bench)
                };
                (
                    format!("{}{}", s.name(), if spec.fine_grain { "(FG)" } else { "" }),
                    speedup_curve(spec, s, &args.cores, args.scale, args.seed),
                )
            })
            .collect();
        println!("{}", format_speedup_table(&series));
    }
}
