//! Legacy shim: identical to `swarm fig10` (see `swarm_bench::figures::fig10`).

fn main() {
    swarm_bench::registry::run_shim("fig10");
}
