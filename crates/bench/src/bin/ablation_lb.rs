//! Legacy shim: identical to `swarm ablation-lb` (see `swarm_bench::figures::ablation_lb`).

fn main() {
    swarm_bench::registry::run_shim("ablation_lb");
}
