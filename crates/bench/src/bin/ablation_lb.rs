//! Section VI-A ablation: committed-cycles vs idle-task-count as the load
//! balancer's signal, on the four load-imbalanced benchmarks. The paper
//! finds the idle-count variant performs significantly worse because
//! balancing queued tasks does not balance useful work.

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{run_app, HarnessArgs, RunRequest};

fn main() {
    let args = HarnessArgs::parse();
    let cores = args.max_cores();
    let apps = [BenchmarkId::Des, BenchmarkId::Nocsim, BenchmarkId::Silo, BenchmarkId::Kmeans];
    println!("Section VI-A ablation at {cores} cores: load-balancer signal comparison");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>16}{:>16}",
        "app", "Hints", "LBHints", "IdleLB", "LB vs Hints", "Idle vs Hints"
    );
    for bench in apps {
        if !args.apps.contains(&bench) {
            continue;
        }
        let spec = AppSpec::coarse(bench);
        let run = |scheduler: Scheduler| {
            run_app(RunRequest { spec, scheduler, cores, scale: args.scale, seed: args.seed })
                .runtime_cycles as f64
        };
        let hints = run(Scheduler::Hints);
        let lb = run(Scheduler::LbHints);
        let idle = run(Scheduler::IdleLb);
        println!(
            "{:<8}{:>12.0}{:>12.0}{:>12.0}{:>15.1}%{:>15.1}%",
            bench.name(),
            hints,
            lb,
            idle,
            (hints / lb - 1.0) * 100.0,
            (hints / idle - 1.0) * 100.0
        );
    }
    println!("(positive percentages mean the load balancer improved over plain Hints)");
}
