//! Legacy shim: identical to `swarm fig11` (see `swarm_bench::figures::fig11`).

fn main() {
    swarm_bench::registry::run_shim("fig11");
}
