//! Fig. 11: core-cycle breakdown of des, nocsim, silo and kmeans at the
//! largest core count under Random, Stealing, Hints and LBHints (normalized
//! to Random) — the benchmarks where the data-centric load balancer matters.

use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{format_breakdown_table, run_app, HarnessArgs, RunRequest};

fn main() {
    let args = HarnessArgs::parse();
    let cores = args.max_cores();
    let fig11_apps =
        [BenchmarkId::Des, BenchmarkId::Nocsim, BenchmarkId::Silo, BenchmarkId::Kmeans];
    for bench in fig11_apps {
        if !args.apps.contains(&bench) {
            continue;
        }
        let spec = AppSpec::coarse(bench);
        let entries: Vec<(String, _)> = args
            .schedulers
            .iter()
            .map(|&s| {
                let stats = run_app(RunRequest {
                    spec,
                    scheduler: s,
                    cores,
                    scale: args.scale,
                    seed: args.seed,
                });
                (s.name().to_string(), stats)
            })
            .collect();
        println!(
            "Fig. 11 [{}]: core-cycle breakdown at {cores} cores (normalized to Random)",
            bench.name()
        );
        println!("{}", format_breakdown_table(&entries));
    }
}
