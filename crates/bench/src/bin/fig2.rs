//! Legacy shim: identical to `swarm fig2` (see `swarm_bench::figures::fig2`).

fn main() {
    swarm_bench::registry::run_shim("fig2");
}
