//! Fig. 2: motivation — des under Random, Stealing, Hints and LBHints:
//! (a) speedup from 1 to N cores and (b) cycle breakdown at the largest
//! core count, normalized to Random.

use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{
    format_breakdown_table, format_speedup_table, run_app, speedup_curve, HarnessArgs, RunRequest,
};

fn main() {
    let args = HarnessArgs::parse();
    let spec = AppSpec::coarse(BenchmarkId::Des);

    println!("Fig. 2a: des speedup vs cores (relative to 1-core Swarm)");
    let series: Vec<(String, _)> = args
        .schedulers
        .iter()
        .map(|&s| {
            (s.name().to_string(), speedup_curve(spec, s, &args.cores, args.scale, args.seed))
        })
        .collect();
    println!("{}", format_speedup_table(&series));

    println!("Fig. 2b: des cycle breakdown at {} cores (normalized to Random)", args.max_cores());
    let entries: Vec<(String, _)> = args
        .schedulers
        .iter()
        .map(|&s| {
            let stats = run_app(RunRequest {
                spec,
                scheduler: s,
                cores: args.max_cores(),
                scale: args.scale,
                seed: args.seed,
            });
            (s.name().to_string(), stats)
        })
        .collect();
    println!("{}", format_breakdown_table(&entries));
}
