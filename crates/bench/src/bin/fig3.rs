//! Fig. 3: architecture-independent classification of memory accesses made
//! by committing tasks, per application: arguments, single-/multi-hint ×
//! read-only/read-write.

use spatial_hints::{classify_accesses, ClassifierConfig, Scheduler};
use swarm_apps::AppSpec;
use swarm_bench::{
    classification_header, format_classification_row, run_app_profiled, HarnessArgs, RunRequest,
};

fn main() {
    let args = HarnessArgs::parse();
    println!("Fig. 3: classification of memory accesses (fractions of each app's total)");
    print!("{}", classification_header());
    for bench in args.apps {
        let spec = AppSpec::coarse(bench);
        let stats = run_app_profiled(RunRequest {
            spec,
            scheduler: Scheduler::Hints,
            cores: 4,
            scale: args.scale,
            seed: args.seed,
        });
        let classification =
            classify_accesses(&stats.committed_accesses, ClassifierConfig::default());
        print!(
            "{}",
            format_classification_row(bench.name(), &classification, classification.total())
        );
    }
}
