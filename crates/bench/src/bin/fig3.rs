//! Legacy shim: identical to `swarm fig3` (see `swarm_bench::figures::fig3`).

fn main() {
    swarm_bench::registry::run_shim("fig3");
}
