//! Fig. 8: core-cycle and NoC-traffic breakdowns of the fine-grain versions
//! of bfs, sssp, astar and color at the largest core count, under Random,
//! Stealing and Hints, normalized to the coarse-grain version under Random.

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{format_breakdown_table, format_traffic_table, run_app, HarnessArgs, RunRequest};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.schedulers == Scheduler::ALL.to_vec() {
        args.schedulers = vec![Scheduler::Random, Scheduler::Stealing, Scheduler::Hints];
    }
    let cores = args.max_cores();
    for bench in BenchmarkId::WITH_FINE_GRAIN {
        if !args.apps.contains(&bench) {
            continue;
        }
        // The normalization baseline is the coarse-grain version under
        // Random (as in the paper).
        let baseline = run_app(RunRequest {
            spec: AppSpec::coarse(bench),
            scheduler: Scheduler::Random,
            cores,
            scale: args.scale,
            seed: args.seed,
        });
        let mut entries = vec![("CG-Random".to_string(), baseline)];
        for &scheduler in &args.schedulers {
            let stats = run_app(RunRequest {
                spec: AppSpec::fine(bench),
                scheduler,
                cores,
                scale: args.scale,
                seed: args.seed,
            });
            entries.push((format!("FG-{}", scheduler.name()), stats));
        }
        println!(
            "Fig. 8a [{}]: FG core-cycle breakdown at {cores} cores (normalized to CG-Random)",
            bench.name()
        );
        println!("{}", format_breakdown_table(&entries));
        println!(
            "Fig. 8b [{}]: FG NoC data breakdown at {cores} cores (normalized to CG-Random)",
            bench.name()
        );
        println!("{}", format_traffic_table(&entries));
    }
}
