//! Legacy shim: identical to `swarm fig8` (see `swarm_bench::figures::fig8`).

fn main() {
    swarm_bench::registry::run_shim("fig8");
}
