//! Legacy shim: identical to `swarm fig6` (see `swarm_bench::figures::fig6`).

fn main() {
    swarm_bench::registry::run_shim("fig6");
}
