//! Fig. 6: access classification of coarse-grain (CG) vs fine-grain (FG)
//! versions of bfs, sssp, astar and color. FG bars are normalized to the CG
//! total of the same application, so values above 1.0 show the extra
//! accesses (work) fine-grain tasks perform.

use spatial_hints::{classify_accesses, ClassifierConfig, Scheduler};
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{
    classification_header, format_classification_row, run_app_profiled, HarnessArgs, RunRequest,
};

fn main() {
    let args = HarnessArgs::parse();
    println!("Fig. 6: access classification, coarse-grain vs fine-grain (normalized to CG total)");
    print!("{}", classification_header());
    for bench in BenchmarkId::WITH_FINE_GRAIN {
        if !args.apps.contains(&bench) {
            continue;
        }
        let mut cg_total = 0;
        for (label, spec) in [
            (format!("{}-cg", bench.name()), AppSpec::coarse(bench)),
            (format!("{}-fg", bench.name()), AppSpec::fine(bench)),
        ] {
            let stats = run_app_profiled(RunRequest {
                spec,
                scheduler: Scheduler::Hints,
                cores: 4,
                scale: args.scale,
                seed: args.seed,
            });
            let classification =
                classify_accesses(&stats.committed_accesses, ClassifierConfig::default());
            if cg_total == 0 {
                cg_total = classification.total();
            }
            print!("{}", format_classification_row(&label, &classification, cg_total));
        }
    }
}
