//! Fig. 5: (a) core-cycle breakdown and (b) NoC-traffic breakdown for every
//! application at the largest core count, under Random, Stealing and Hints,
//! normalized to Random.

use spatial_hints::Scheduler;
use swarm_apps::AppSpec;
use swarm_bench::{format_breakdown_table, format_traffic_table, run_app, HarnessArgs, RunRequest};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.schedulers == Scheduler::ALL.to_vec() {
        args.schedulers = vec![Scheduler::Random, Scheduler::Stealing, Scheduler::Hints];
    }
    let cores = args.max_cores();
    for bench in args.apps {
        let spec = AppSpec::coarse(bench);
        let entries: Vec<(String, _)> = args
            .schedulers
            .iter()
            .map(|&s| {
                let stats = run_app(RunRequest {
                    spec,
                    scheduler: s,
                    cores,
                    scale: args.scale,
                    seed: args.seed,
                });
                (s.name().to_string(), stats)
            })
            .collect();
        println!(
            "Fig. 5a [{}]: core-cycle breakdown at {cores} cores (normalized to Random)",
            bench.name()
        );
        println!("{}", format_breakdown_table(&entries));
        println!(
            "Fig. 5b [{}]: NoC data breakdown at {cores} cores (normalized to Random)",
            bench.name()
        );
        println!("{}", format_traffic_table(&entries));
    }
}
