//! Legacy shim: identical to `swarm fig5` (see `swarm_bench::figures::fig5`).

fn main() {
    swarm_bench::registry::run_shim("fig5");
}
