//! Legacy shim: identical to `swarm summary` (see `swarm_bench::figures::summary`).

fn main() {
    swarm_bench::registry::run_shim("summary");
}
