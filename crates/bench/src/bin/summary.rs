//! Section VI-B "putting it all together": geometric-mean speedups of
//! Random, Hints, Hints with fine-grain versions, and LBHints at the largest
//! core count, plus efficiency metrics (aborted-cycle and traffic
//! reductions). Optionally dumps machine-readable JSON with `--json`.

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::{gmean, run_app, HarnessArgs, RunRequest};

struct AppSummary {
    app: String,
    cores: u32,
    random_speedup: f64,
    stealing_speedup: f64,
    hints_speedup: f64,
    hints_fg_speedup: f64,
    lbhints_speedup: f64,
    abort_cycle_reduction_hints_vs_random: f64,
    traffic_reduction_hints_vs_random: f64,
}

/// Hand-rolled JSON dump (the offline build has no serde_json). Strings
/// here are app names, which never need escaping.
fn to_json_pretty(summaries: &[AppSummary]) -> String {
    let objects: Vec<String> = summaries
        .iter()
        .map(|s| {
            format!(
                "  {{\n    \"app\": \"{}\",\n    \"cores\": {},\n    \"random_speedup\": {},\n    \
                 \"stealing_speedup\": {},\n    \"hints_speedup\": {},\n    \
                 \"hints_fg_speedup\": {},\n    \"lbhints_speedup\": {},\n    \
                 \"abort_cycle_reduction_hints_vs_random\": {},\n    \
                 \"traffic_reduction_hints_vs_random\": {}\n  }}",
                s.app,
                s.cores,
                s.random_speedup,
                s.stealing_speedup,
                s.hints_speedup,
                s.hints_fg_speedup,
                s.lbhints_speedup,
                s.abort_cycle_reduction_hints_vs_random,
                s.traffic_reduction_hints_vs_random
            )
        })
        .collect();
    format!("[\n{}\n]", objects.join(",\n"))
}

fn main() {
    let args = HarnessArgs::parse();
    let json = std::env::args().any(|a| a == "--json");
    let cores = args.max_cores();
    let mut summaries = Vec::new();

    for bench in args.apps.clone() {
        let run = |spec: AppSpec, scheduler: Scheduler, c: u32| {
            run_app(RunRequest { spec, scheduler, cores: c, scale: args.scale, seed: args.seed })
        };
        let cg = AppSpec::coarse(bench);
        let best_fg =
            if BenchmarkId::WITH_FINE_GRAIN.contains(&bench) { AppSpec::fine(bench) } else { cg };
        let baseline = run(cg, Scheduler::Random, 1);
        let random = run(cg, Scheduler::Random, cores);
        let stealing = run(cg, Scheduler::Stealing, cores);
        let hints = run(cg, Scheduler::Hints, cores);
        let hints_fg = run(best_fg, Scheduler::Hints, cores);
        let lbhints = run(best_fg, Scheduler::LbHints, cores);
        summaries.push(AppSummary {
            app: bench.name().to_string(),
            cores,
            random_speedup: random.speedup_over(&baseline),
            stealing_speedup: stealing.speedup_over(&baseline),
            hints_speedup: hints.speedup_over(&baseline),
            hints_fg_speedup: hints_fg.speedup_over(&baseline),
            lbhints_speedup: lbhints.speedup_over(&baseline),
            abort_cycle_reduction_hints_vs_random: random.breakdown.aborted.max(1) as f64
                / hints.breakdown.aborted.max(1) as f64,
            traffic_reduction_hints_vs_random: random.traffic.total().max(1) as f64
                / hints.traffic.total().max(1) as f64,
        });
    }

    if json {
        println!("{}", to_json_pretty(&summaries));
        return;
    }

    println!("Section VI-B summary at {cores} cores (speedups over 1-core Random)");
    println!(
        "{:<8}{:>10}{:>10}{:>10}{:>12}{:>10}{:>14}{:>14}",
        "app", "Random", "Stealing", "Hints", "Hints(FG)", "LBHints", "abort red.", "traffic red."
    );
    for s in &summaries {
        println!(
            "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>12.2}{:>10.2}{:>13.1}x{:>13.1}x",
            s.app,
            s.random_speedup,
            s.stealing_speedup,
            s.hints_speedup,
            s.hints_fg_speedup,
            s.lbhints_speedup,
            s.abort_cycle_reduction_hints_vs_random,
            s.traffic_reduction_hints_vs_random
        );
    }
    let col =
        |f: fn(&AppSummary) -> f64| -> f64 { gmean(&summaries.iter().map(f).collect::<Vec<_>>()) };
    println!(
        "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>12.2}{:>10.2}{:>13.1}x{:>13.1}x",
        "gmean",
        col(|s| s.random_speedup),
        col(|s| s.stealing_speedup),
        col(|s| s.hints_speedup),
        col(|s| s.hints_fg_speedup),
        col(|s| s.lbhints_speedup),
        col(|s| s.abort_cycle_reduction_hints_vs_random),
        col(|s| s.traffic_reduction_hints_vs_random)
    );
}
