//! Legacy shim: identical to `swarm sysconfig` (see `swarm_bench::figures::sysconfig`).

fn main() {
    swarm_bench::registry::run_shim("sysconfig");
}
