//! Legacy shim: identical to `swarm fig7` (see `swarm_bench::figures::fig7`).

fn main() {
    swarm_bench::registry::run_shim("fig7");
}
