//! Fig. 7: speedup of fine-grain (FG) vs coarse-grain (CG) versions of bfs,
//! sssp, astar and color under Random, Stealing and Hints. All speedups are
//! relative to the CG version on one core.

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId};
use swarm_bench::runner::ExperimentPoint;
use swarm_bench::{format_speedup_table, run_app, HarnessArgs, RunRequest};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.schedulers == Scheduler::ALL.to_vec() {
        args.schedulers = vec![Scheduler::Random, Scheduler::Stealing, Scheduler::Hints];
    }
    for bench in BenchmarkId::WITH_FINE_GRAIN {
        if !args.apps.contains(&bench) {
            continue;
        }
        println!(
            "Fig. 7 [{}]: CG and FG speedup vs cores (relative to CG at 1 core)",
            bench.name()
        );
        // The common baseline: coarse-grain on one core under Hints.
        let baseline = run_app(RunRequest {
            spec: AppSpec::coarse(bench),
            scheduler: Scheduler::Hints,
            cores: 1,
            scale: args.scale,
            seed: args.seed,
        });
        let mut series = Vec::new();
        for (label, spec) in [("CG", AppSpec::coarse(bench)), ("FG", AppSpec::fine(bench))] {
            for &scheduler in &args.schedulers {
                let points: Vec<ExperimentPoint> = args
                    .cores
                    .iter()
                    .map(|&cores| {
                        let request = RunRequest {
                            spec,
                            scheduler,
                            cores,
                            scale: args.scale,
                            seed: args.seed,
                        };
                        let stats = run_app(request);
                        let speedup = stats.speedup_over(&baseline);
                        ExperimentPoint { request, stats, speedup }
                    })
                    .collect();
                series.push((format!("{label}-{}", scheduler.short_label()), points));
            }
        }
        println!("{}", format_speedup_table(&series));
    }
}
