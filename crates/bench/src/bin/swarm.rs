//! The unified harness binary: every figure and table of the evaluation as
//! one subcommand each, driven by the [`swarm_bench::registry`].
//!
//! ```text
//! swarm list                 # what can I run?
//! swarm fig2 --scale small   # any figure, same flags as the legacy binary
//! swarm summary --json
//! swarm sysconfig
//! swarm bench --out BENCH_mechanisms.json
//! ```
//!
//! The legacy per-figure binaries (`fig2`, `table2`, ...) still work; they
//! are two-line shims over the same registry, and their output is
//! byte-identical to the corresponding `swarm` subcommand.

use swarm_bench::registry;

fn print_usage() {
    println!("usage: swarm <command> [flags...]");
    println!();
    println!("Reproduces the figures and tables of 'Data-Centric Execution of");
    println!("Speculative Parallel Programs' (MICRO 2016). Common flags:");
    println!("  --cores 1,4,16,64     core counts to sweep");
    println!("  --scale tiny|small|medium");
    println!("  --seed N              workload seed");
    println!("  --apps a,b,c          restrict the benchmark set");
    println!("  --schedulers r,s,h,l  restrict the scheduler comparison");
    println!("  --noc analytic|contention");
    println!("                        network model: fixed-latency mesh (default) or");
    println!("                        per-link queueing (see 'swarm noc-profile')");
    println!("  --jobs N              worker threads (output is identical at any N)");
    println!("  --on-error fail|collect|retry:N");
    println!("                        failure policy: stop promptly (default), run");
    println!("                        everything and print n/a cells, or retry");
    println!();
    println!("exit codes: 0 ok, 2 usage error, 3 some points failed, 4 chaos violation");
    println!();
    println!("commands:");
    print_command_table();
    println!();
    println!("Run 'swarm list' for the same table, or see REPRODUCING.md for");
    println!("per-figure details and expected runtimes.");
}

fn print_command_table() {
    for spec in registry::REGISTRY {
        println!("  {:<12} {}", spec.name, spec.about);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") | Some("help") => print_usage(),
        Some("list") => print_command_table(),
        Some(name) => match registry::find(name) {
            Some(spec) => {
                let rest = &args[1..];
                if rest.iter().any(|a| a == "--help" || a == "-h") {
                    // Intercepted here so the help text can include the
                    // command table; the shared parser would otherwise
                    // print only the flag summary.
                    println!("swarm {}: {}", spec.name, spec.about);
                    println!();
                    print_usage();
                } else {
                    let code = (spec.run)(rest);
                    if code != swarm_bench::exit_code::OK {
                        std::process::exit(code);
                    }
                }
            }
            None => {
                eprintln!("swarm: unknown command '{name}'");
                eprintln!("Run 'swarm list' to see the available commands.");
                std::process::exit(2);
            }
        },
    }
}
