//! Legacy shim: identical to `swarm table2` (see `swarm_bench::figures::table2`).

fn main() {
    swarm_bench::registry::run_shim("table2");
}
