//! Legacy shim: identical to `swarm table1` (see `swarm_bench::figures::table1`).

fn main() {
    swarm_bench::registry::run_shim("table1");
}
