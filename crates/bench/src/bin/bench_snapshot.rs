//! Legacy shim: identical to `swarm bench` (see `swarm_bench::figures::bench_snapshot`).

fn main() {
    swarm_bench::registry::run_shim("bench_snapshot");
}
