//! Criterion benchmarks behind the benchmark tables: the single-core run of
//! every benchmark — the Table I nine and the beyond-Table-I three — at
//! tiny scale (the tables' "1-core run-time" column, scaled).

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};

use spatial_hints::Scheduler;
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_bench::{run_app, RunRequest};

fn bench_table1_single_core_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_single_core");
    group.sample_size(10);
    for bench in BenchmarkId::ALL {
        group.bench_with_input(CriterionId::from_parameter(bench.name()), &bench, |b, &bench| {
            b.iter(|| {
                run_app(RunRequest::new(
                    AppSpec::coarse(bench),
                    Scheduler::Random,
                    1,
                    InputScale::Tiny,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(tables, bench_table1_single_core_runs);
criterion_main!(tables);
