//! Criterion benchmarks behind the evaluation figures: for each figure
//! family, time the simulated runs that regenerate it (at tiny scale, so
//! `cargo bench` completes quickly). The figure *content* (speedups,
//! breakdowns) is produced by the harness binaries; these benches track the
//! cost of regenerating them and act as end-to-end performance regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};

use spatial_hints::{classify_accesses, ClassifierConfig, Scheduler};
use swarm_apps::{AppSpec, BenchmarkId, InputScale};
use swarm_bench::{run_app, run_app_profiled, Pool, RunRequest};

const CORES: u32 = 16;

/// Fig. 2 / Fig. 4 / Fig. 10 family: scheduler comparison on one app.
fn bench_fig_scheduler_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scheduler_sweep");
    group.sample_size(10);
    for scheduler in Scheduler::ALL {
        group.bench_with_input(
            CriterionId::from_parameter(scheduler.name()),
            &scheduler,
            |b, &scheduler| {
                b.iter(|| {
                    run_app(RunRequest::new(
                        AppSpec::coarse(BenchmarkId::Des),
                        scheduler,
                        CORES,
                        InputScale::Tiny,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Fig. 3 / Fig. 6 family: profiled runs plus access classification.
fn bench_fig_access_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_access_classification");
    group.sample_size(10);
    for bench in [BenchmarkId::Sssp, BenchmarkId::Kmeans] {
        group.bench_with_input(CriterionId::from_parameter(bench.name()), &bench, |b, &bench| {
            b.iter(|| {
                let stats = run_app_profiled(RunRequest::new(
                    AppSpec::coarse(bench),
                    Scheduler::Hints,
                    4,
                    InputScale::Tiny,
                ));
                classify_accesses(&stats.committed_accesses, ClassifierConfig::default())
            })
        });
    }
    group.finish();
}

/// Fig. 7 / Fig. 8 family: fine-grain vs coarse-grain versions.
fn bench_fig_fine_grain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_granularity");
    group.sample_size(10);
    for (label, spec) in [
        ("sssp-cg", AppSpec::coarse(BenchmarkId::Sssp)),
        ("sssp-fg", AppSpec::fine(BenchmarkId::Sssp)),
    ] {
        group.bench_with_input(CriterionId::from_parameter(label), &spec, |b, &spec| {
            b.iter(|| run_app(RunRequest::new(spec, Scheduler::Hints, CORES, InputScale::Tiny)))
        });
    }
    group.finish();
}

/// Fig. 10 / Fig. 11 family: the load balancer on an imbalanced workload.
fn bench_fig_load_balancer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_load_balancer");
    group.sample_size(10);
    for scheduler in [Scheduler::Hints, Scheduler::LbHints, Scheduler::IdleLb] {
        group.bench_with_input(
            CriterionId::from_parameter(scheduler.name()),
            &scheduler,
            |b, &scheduler| {
                b.iter(|| {
                    run_app(RunRequest::new(
                        AppSpec::coarse(BenchmarkId::Nocsim),
                        scheduler,
                        CORES,
                        InputScale::Tiny,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Whole-figure regeneration, serial vs parallel: the Fig. 2a matrix
/// (4 schedulers × 4 core counts on des) through a 1-job and an all-cores
/// [`Pool`]. The gap between the two is the wall-clock win `--jobs` buys.
fn bench_fig_matrix_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_matrix_jobs");
    group.sample_size(10);
    let series: Vec<_> = Scheduler::ALL
        .iter()
        .map(|&s| (s.name().to_string(), AppSpec::coarse(BenchmarkId::Des), s))
        .collect();
    for (label, pool) in [("serial", Pool::serial()), ("parallel", Pool::new(0))] {
        group.bench_with_input(CriterionId::from_parameter(label), &pool, |b, pool| {
            b.iter(|| pool.speedup_curves(&series, &[1, 4, 16], InputScale::Tiny, 0xF1605))
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_fig_scheduler_comparison,
    bench_fig_access_classification,
    bench_fig_fine_grain,
    bench_fig_load_balancer,
    bench_fig_matrix_parallelism
);
criterion_main!(figures);
