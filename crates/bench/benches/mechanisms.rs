//! Criterion microbenchmarks of the mechanisms the paper adds to Swarm:
//! hint hashing, same-hint serialization structures (Bloom signatures),
//! the load-balancer tile map, and the cache/memory substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use spatial_hints::TileMap;
use swarm_mem::{AccessKind, CacheModel, LruSet, SimMemory};
use swarm_sim::BloomFilter;
use swarm_types::{hash_to_bucket, CacheConfig, CoreId, Hint, LineAddr, TileId};

fn bench_hint_hashing(c: &mut Criterion) {
    c.bench_function("hint_to_tile_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(Hint::value(i).to_tile(64))
        })
    });
    c.bench_function("hint_to_bucket_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(hash_to_bucket(i, 1024))
        })
    });
}

fn bench_bloom_filter(c: &mut Criterion) {
    c.bench_function("bloom_insert_2kbit_8way", |b| {
        let mut filter = BloomFilter::new(2048, 8);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            filter.insert(LineAddr(i % 4096));
        })
    });
    c.bench_function("bloom_check_2kbit_8way", |b| {
        let mut filter = BloomFilter::new(2048, 8);
        for i in 0..64u64 {
            filter.insert(LineAddr(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(filter.maybe_contains(LineAddr(i % 4096)))
        })
    });
}

fn bench_tile_map_rebalance(c: &mut Criterion) {
    c.bench_function("tile_map_rebalance_1024_buckets", |b| {
        let weights: Vec<u64> = (0..1024u64).map(|i| (i * 37) % 997).collect();
        b.iter(|| {
            let mut map = TileMap::new(1024, 64);
            black_box(map.rebalance(&weights, 80))
        })
    });
}

fn bench_memory_substrate(c: &mut Criterion) {
    c.bench_function("sim_memory_store_logged", |b| {
        let mut mem = SimMemory::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(8);
            black_box(mem.store_logged(i % 65536, i))
        })
    });
    c.bench_function("cache_model_access_64tiles", |b| {
        let mut caches = CacheModel::new(CacheConfig::default(), 64, 4);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let core = CoreId((i % 256) as u32);
            black_box(caches.access(core, LineAddr(i % 8192), AccessKind::Read))
        })
    });
    c.bench_function("lru_set_insert", |b| {
        let mut lru = LruSet::new(4096);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(lru.insert(i % 16384))
        })
    });
    c.bench_function("lru_set_touch_hot", |b| {
        // Steady-state touch of a full set: the dominant L1/L2 operation on
        // every cache hit.
        let mut lru = LruSet::new(4096);
        for i in 0..4096u64 {
            lru.insert(i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(lru.touch(i % 4096))
        })
    });
    c.bench_function("sim_memory_load_store", |b| {
        // A read-modify-write over a warmed working set: the paged backing
        // store's steady-state load/store path.
        let mut mem = SimMemory::new();
        for i in 0..8192u64 {
            mem.store(i * 8, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = (i % 8192) * 8;
            let value = mem.load(addr);
            black_box(mem.store(addr, value.wrapping_add(1)))
        })
    });
    let _ = TileId(0);
}

criterion_group!(
    name = mechanisms;
    config = Criterion::default().sample_size(20);
    targets = bench_hint_hashing, bench_bloom_filter, bench_tile_map_rebalance, bench_memory_substrate
);
criterion_main!(mechanisms);
