//! Golden-output test: every `swarm <figure>` subcommand must be
//! byte-identical to the legacy standalone binary it subsumed, at the same
//! flags. This pins the shim/registry redesign to the old binaries' exact
//! output — the same property the release pipeline checks at `--scale
//! small` against the pinned PR 4 outputs, kept fast here by running at
//! `--scale tiny` with trimmed app sets.
//!
//! `bench` (the old `bench_snapshot`) is deliberately absent: it measures
//! wall-clock times, so its output is legitimately nondeterministic.

use std::process::{Command, Output};

/// Run one harness binary with `args` and return its stdout, asserting a
/// clean exit.
fn stdout_of(bin: &str, args: &[&str]) -> Vec<u8> {
    let Output { status, stdout, stderr } =
        Command::new(bin).args(args).output().unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        status.success(),
        "{bin} {args:?} exited with {status}; stderr:\n{}",
        String::from_utf8_lossy(&stderr)
    );
    stdout
}

/// Assert `swarm <subcommand> <args...>` and `<legacy binary> <args...>`
/// print identical bytes.
fn assert_identical(swarm_bin: &str, legacy_bin: &str, subcommand: &str, args: &[&str]) {
    let mut swarm_args = vec![subcommand];
    swarm_args.extend_from_slice(args);
    let via_swarm = stdout_of(swarm_bin, &swarm_args);
    let via_legacy = stdout_of(legacy_bin, args);
    assert!(
        via_swarm == via_legacy,
        "`swarm {subcommand} {args:?}` differs from the legacy `{legacy_bin}`:\n\
         --- swarm ---\n{}\n--- legacy ---\n{}",
        String::from_utf8_lossy(&via_swarm),
        String::from_utf8_lossy(&via_legacy),
    );
    assert!(!via_swarm.is_empty(), "{subcommand} printed nothing");
}

/// Fast sweep flags: tiny inputs, two core counts, a 2-worker pool (the
/// pool is byte-identical at any job count, so this also keeps exercising
/// the parallel path).
const SWEEP: &[&str] = &["--scale", "tiny", "--cores", "1,8", "--jobs", "2"];

macro_rules! golden {
    ($test:ident, $name:literal, $legacy_env:literal, extra: $extra:expr) => {
        #[test]
        fn $test() {
            let mut args: Vec<&str> = SWEEP.to_vec();
            args.extend_from_slice($extra);
            assert_identical(env!("CARGO_BIN_EXE_swarm"), env!($legacy_env), $name, &args);
        }
    };
}

// The two-app subsets keep the tiny sweeps fast while still covering the
// multi-app chunking logic of each figure; fine-grain figures pick apps
// that have fine-grain variants.
golden!(fig2_matches_legacy, "fig2", "CARGO_BIN_EXE_fig2", extra: &[]);
golden!(fig3_matches_legacy, "fig3", "CARGO_BIN_EXE_fig3", extra: &["--apps", "des,sssp"]);
golden!(fig4_matches_legacy, "fig4", "CARGO_BIN_EXE_fig4", extra: &["--apps", "des,sssp"]);
golden!(fig5_matches_legacy, "fig5", "CARGO_BIN_EXE_fig5", extra: &["--apps", "des,sssp"]);
golden!(fig6_matches_legacy, "fig6", "CARGO_BIN_EXE_fig6", extra: &["--apps", "sssp,astar"]);
golden!(fig7_matches_legacy, "fig7", "CARGO_BIN_EXE_fig7", extra: &["--apps", "sssp,astar"]);
golden!(fig8_matches_legacy, "fig8", "CARGO_BIN_EXE_fig8", extra: &["--apps", "sssp,astar"]);
golden!(fig10_matches_legacy, "fig10", "CARGO_BIN_EXE_fig10", extra: &["--apps", "des,sssp"]);
golden!(fig11_matches_legacy, "fig11", "CARGO_BIN_EXE_fig11", extra: &["--apps", "des,kmeans"]);
golden!(table1_matches_legacy, "table1", "CARGO_BIN_EXE_table1", extra: &["--apps", "des,sssp"]);
golden!(table2_matches_legacy, "table2", "CARGO_BIN_EXE_table2", extra: &[]);
golden!(
    ablation_lb_matches_legacy,
    "ablation-lb",
    "CARGO_BIN_EXE_ablation_lb",
    extra: &["--apps", "des,kmeans"]
);
golden!(
    summary_matches_legacy,
    "summary",
    "CARGO_BIN_EXE_summary",
    extra: &["--apps", "des,sssp"]
);
golden!(
    summary_json_matches_legacy,
    "summary",
    "CARGO_BIN_EXE_summary",
    extra: &["--apps", "des,sssp", "--json"]
);

#[test]
fn sysconfig_matches_legacy() {
    // No sweep flags: sysconfig runs no simulations.
    assert_identical(
        env!("CARGO_BIN_EXE_swarm"),
        env!("CARGO_BIN_EXE_sysconfig"),
        "sysconfig",
        &[],
    );
}

#[test]
fn legacy_alias_names_resolve_too() {
    // `swarm ablation_lb` (the legacy binary's name) must behave exactly
    // like the canonical `swarm ablation-lb`.
    let swarm = env!("CARGO_BIN_EXE_swarm");
    let args = ["--scale", "tiny", "--cores", "1,4", "--jobs", "2", "--apps", "des"];
    let dashed = stdout_of(swarm, &[&["ablation-lb"], &args[..]].concat());
    let underscored = stdout_of(swarm, &[&["ablation_lb"], &args[..]].concat());
    assert_eq!(dashed, underscored);
}

#[test]
fn swarm_list_names_every_command() {
    let listing = String::from_utf8(stdout_of(env!("CARGO_BIN_EXE_swarm"), &["list"])).unwrap();
    for spec in swarm_bench::REGISTRY {
        assert!(listing.contains(spec.name), "swarm list omits {}", spec.name);
    }
    // Explicit pins for the serving stack: `swarm list` is the discovery
    // surface the docs point at, so these names are part of the contract.
    assert!(listing.contains("serve"), "{listing}");
    assert!(listing.contains("bench-serve"), "{listing}");
}

#[test]
fn serve_pipe_round_trips_a_submission_end_to_end() {
    use std::io::Write;
    use std::process::Stdio;
    // One two-point matrix submitted twice through the real binary's pipe
    // mode: the repeat must be served from cache with identical stats.
    let submit = concat!(
        "{\"type\":\"submit\",\"id\":\"g\",\"points\":[",
        "{\"app\":\"sssp\",\"scheduler\":\"hints\",\"cores\":2,\"scale\":\"tiny\"},",
        "{\"app\":\"bfs\",\"scheduler\":\"random\",\"cores\":1,\"scale\":\"tiny\"}]}\n",
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_swarm"))
        .args(["serve", "--jobs", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawning swarm serve");
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(submit.as_bytes()).unwrap();
    stdin.write_all(submit.as_bytes()).unwrap();
    stdin.write_all(b"{\"type\":\"shutdown\"}\n").unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("swarm serve exits");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.matches("\"type\":\"run-complete\"").count(), 2, "{stdout}");
    // The repeat run reports every point as a hit...
    assert!(stdout.contains("\"hits\":2,\"misses\":0"), "{stdout}");
    // ...and the two point-finished stats payloads are byte-identical to
    // the first pass once the cached/source markers are stripped.
    let payloads: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"type\":\"point-finished\""))
        .map(|l| l.split("\"stats\":").nth(1).expect("a stats payload"))
        .collect();
    assert_eq!(payloads.len(), 4, "{stdout}");
    assert_eq!(payloads[0], payloads[2]);
    assert_eq!(payloads[1], payloads[3]);
    assert!(stdout.contains("\"type\":\"bye\""), "{stdout}");
}

#[test]
fn bad_scale_exits_2_with_a_diagnostic() {
    // `--scale full` used to silently run at Small; it must now be a
    // usage error naming the valid set.
    let out = Command::new(env!("CARGO_BIN_EXE_swarm"))
        .args(["fig2", "--scale", "full"])
        .output()
        .expect("spawning swarm");
    assert_eq!(out.status.code(), Some(2), "bad --scale must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tiny, small, medium"), "stderr must name the valid set:\n{stderr}");
}

#[test]
fn noc_profile_prints_link_heat_tables() {
    let stdout = String::from_utf8(stdout_of(
        env!("CARGO_BIN_EXE_swarm"),
        &["noc-profile", "--scale", "tiny", "--apps", "bfs", "--cores", "16", "--jobs", "2"],
    ))
    .unwrap();
    assert!(stdout.contains("total queueing cycles"), "{stdout}");
    assert!(stdout.contains("hottest link"), "{stdout}");
    assert!(stdout.contains("per-link queueing cycles"), "{stdout}");
}

#[test]
fn unknown_commands_fail_with_a_hint() {
    let out =
        Command::new(env!("CARGO_BIN_EXE_swarm")).arg("fig9").output().expect("spawning swarm");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("swarm list"));
}
