//! Locks the "zero heap allocation in the steady-state hot loop" guarantee
//! for the engine: once its structures are warm (arena slots, recycled
//! execution buffers, timing-wheel slots, per-tile key lists, line table),
//! executing more tasks must not touch the allocator.
//!
//! The engine has no public stepping API — a run goes to completion — so
//! the invariant is pinned differentially: two identical workloads that
//! differ only in chain length must allocate (almost) the same number of
//! times. Everything the engine allocates per *step* is warm-up
//! (construction plus first-use growth, which both runs share); the only
//! growth allowed from running 7x longer is the O(log n) capacity-doubling
//! of the persistent per-task metadata arrays (status / key / timestamp,
//! which are indexed by task id and so scale with tasks *ever created*,
//! not tasks in flight). A handful of doublings across a 7x task-count
//! increase is the signature of amortised `Vec` growth; anything linear in
//! the extra ~1.8k–14k tasks blows through the bound immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use swarm_sim::{InitialTask, RoundRobinMapper, RunStats, Sim, SwarmApp, TaskCtx};
use swarm_types::{Hint, SystemConfig};

struct CountingAllocator;

// Per-thread counter so the libtest harness (and other tests running on
// their own threads) cannot bump the count mid-measurement. The const
// initializer keeps the first per-thread access allocation-free, and
// `Cell<u64>` has no destructor to register.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged; the counter is a
// plain thread-local cell with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn measured(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// `roots` ordered chains of `chain + 1` tasks, argument-free (the chain
/// position is recovered from the timestamp), each touching one line per
/// chain and enqueuing its successor. The same shape as the
/// `engine_cycles_per_sec` benchmark workload, minus the per-child argument
/// vector, so each extra link exercises the dispatch / execute / conflict
/// check / finish / commit machinery and nothing else.
struct SilentChains {
    roots: u64,
    chain: u64,
}

impl SwarmApp for SilentChains {
    fn name(&self) -> &str {
        "silent_chains"
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        (0..self.roots).map(|i| InitialTask::new(i as u16, 0, Hint::value(i), vec![])).collect()
    }

    fn run_task(&self, fid: u16, ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
        ctx.update(0x10_0000 + u64::from(fid) * 64, |v| v.wrapping_add(1));
        if ts < self.chain {
            ctx.enqueue(fid, ts + 1, Hint::value(u64::from(fid)), vec![]);
        }
    }

    fn num_task_fns(&self) -> usize {
        self.roots as usize
    }
}

/// Allocation count of one complete run over `chain + 1` tasks per root.
fn allocs_for(roots: u64, chain: u64) -> u64 {
    measured(|| {
        let mut engine = Sim::builder()
            .app(SilentChains { roots, chain })
            .mapper(Box::new(RoundRobinMapper::new()))
            .cores(16)
            .build()
            .expect("workload builds");
        engine.run().expect("workload runs");
    })
}

/// Allowance for the per-task metadata arrays doubling a few times between
/// the short and the long run (see module docs). Each doubling reallocates
/// a fixed handful of arrays, so the allowance is a small constant; the
/// long runs create 1792–14336 *more tasks* than the short ones, so any
/// per-task (or per-event) leak exceeds this within the first few steps.
const DOUBLING_ALLOWANCE: u64 = 48;

#[test]
fn longer_single_chain_allocates_no_more_than_short_one() {
    // First run warms up thread-locals and lazy runtime state.
    allocs_for(1, 64);
    let short = allocs_for(1, 256);
    let long = allocs_for(1, 2048);
    assert!(
        long >= short && long - short <= DOUBLING_ALLOWANCE,
        "7x more steady-state engine steps must add at most a few \
         metadata-array doublings, got {short} -> {long}"
    );
}

#[test]
fn longer_parallel_chains_allocate_no_more_than_short_ones() {
    allocs_for(8, 64);
    let short = allocs_for(8, 256);
    let long = allocs_for(8, 2048);
    assert!(
        long >= short && long - short <= DOUBLING_ALLOWANCE,
        "7x more steady-state engine steps must add at most a few \
         metadata-array doublings, got {short} -> {long}"
    );
}

/// The hostile counterpart to [`SilentChains`]: a driver chain whose every
/// link re-injects a full spill storm — a `WAVE`-wide burst of wave tasks
/// (wider than the whole starved task queue, so most of the burst spills),
/// each spawning `LEAVES` argument-free children into a later band of the
/// same step. Idle later-band children dispatch while earlier spilled wave
/// tasks wait for queue headroom, and because every task updates the same
/// shared counter each out-of-commit-order execution surfaces as a rollback
/// when the earlier task is finally unspilled (the mechanism
/// `tests/fuzz.rs` at the workspace root pins deterministically). Each step
/// drains before the next driver fires, so the steady state is *repeated*
/// spill/refill/abort churn with a bounded in-flight population: the
/// zero-allocation guarantee must survive the recovery machinery (spill
/// buffers, undo-log replay, abort cascades), not just the happy path the
/// chains above pin.
struct ChurnChains {
    chain: u64,
}

const CHURN_SHARED: u64 = 0x20_0000;
const WAVE: u64 = 16;
const LEAVES: u64 = 4;
const STEP: u64 = 256;
const CHILD_OFF: u64 = 64;

impl SwarmApp for ChurnChains {
    fn name(&self) -> &str {
        "churn_chains"
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        vec![InitialTask::new(0, 0, Hint::value(0), vec![])]
    }

    fn run_task(&self, fid: u16, ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
        ctx.update(CHURN_SHARED, |v| v.wrapping_add(1));
        match fid {
            0 => {
                // Driver for step `k`: burst the wave, then chain.
                let k = ts / STEP;
                for w in 0..WAVE {
                    ctx.enqueue(1, ts + 1 + w, Hint::value(w), vec![]);
                }
                if k + 1 < self.chain {
                    ctx.enqueue(0, ts + STEP, Hint::value(0), vec![]);
                }
            }
            _ => {
                // Wave task `w` of its step: children into the step's
                // later band (still before the next driver). Leaves
                // (fid 2) only bump the shared counter.
                if fid == 1 {
                    let base = ts - (ts % STEP);
                    let w = ts - base - 1;
                    for c in 0..LEAVES {
                        ctx.enqueue(2, base + CHILD_OFF + w * LEAVES + c, Hint::value(c), vec![]);
                    }
                }
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        3
    }
}

/// A single core with a 10-entry task queue and a one-task spill coalescer:
/// each driver step injects `LEAVES + 1` tasks, so the queue overflows every
/// step and (with `spill_batch = 1`) stays pinned at capacity, which blocks
/// refills and forces out-of-commit-order execution (see `tests/fuzz.rs` at
/// the workspace root for the mechanism).
fn churn_run(chain: u64) -> (u64, RunStats) {
    let mut stats = None;
    let allocs = measured(|| {
        let mut cfg = SystemConfig::single_core();
        cfg.queues.task_queue_per_core = 10;
        cfg.queues.commit_queue_per_core = 4;
        cfg.queues.spill_threshold_pct = 60;
        cfg.queues.spill_batch = 1;
        let mut engine = Sim::builder()
            .config(cfg)
            .app(ChurnChains { chain })
            .mapper(Box::new(RoundRobinMapper::new()))
            .build()
            .expect("churn workload builds");
        stats = Some(engine.run().expect("churn workload runs"));
    });
    (allocs, stats.expect("run completed"))
}

#[test]
fn hostile_spill_and_abort_churn_allocates_no_more_than_a_short_run() {
    churn_run(16);
    let (short, short_stats) = churn_run(64);
    let (long, long_stats) = churn_run(512);
    // The churn has to be real in both runs for the differential to mean
    // anything: sustained spills, and rollbacks that scale with run length.
    assert!(
        short_stats.tasks_spilled > 0 && short_stats.tasks_aborted > 0,
        "the short run must already spill ({}) and abort ({})",
        short_stats.tasks_spilled,
        short_stats.tasks_aborted
    );
    assert!(
        long_stats.tasks_spilled > short_stats.tasks_spilled
            && long_stats.tasks_aborted > short_stats.tasks_aborted,
        "the long run must churn more (spilled {} -> {}, aborted {} -> {})",
        short_stats.tasks_spilled,
        long_stats.tasks_spilled,
        short_stats.tasks_aborted,
        long_stats.tasks_aborted
    );
    assert!(
        long >= short && long - short <= DOUBLING_ALLOWANCE,
        "8x more spill/abort churn must add at most a few metadata-array \
         doublings, got {short} -> {long}"
    );
}

/// Sanity companion for the churn differential: the storm stays a *legal*
/// program (the engine's result, the shared counter, must equal the total
/// task count despite every rollback and replay).
#[test]
fn churn_storm_still_commits_every_task_exactly_once() {
    let chain = 48u64;
    let (_, stats) = churn_run(chain);
    assert_eq!(stats.tasks_committed, chain * (1 + WAVE + WAVE * LEAVES));
}
