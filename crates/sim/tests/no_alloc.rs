//! Locks the "zero heap allocation in the steady-state hot loop" guarantee
//! for the engine: once its structures are warm (arena slots, recycled
//! execution buffers, timing-wheel slots, per-tile key lists, line table),
//! executing more tasks must not touch the allocator.
//!
//! The engine has no public stepping API — a run goes to completion — so
//! the invariant is pinned differentially: two identical workloads that
//! differ only in chain length must allocate (almost) the same number of
//! times. Everything the engine allocates per *step* is warm-up
//! (construction plus first-use growth, which both runs share); the only
//! growth allowed from running 7x longer is the O(log n) capacity-doubling
//! of the persistent per-task metadata arrays (status / key / timestamp,
//! which are indexed by task id and so scale with tasks *ever created*,
//! not tasks in flight). A handful of doublings across a 7x task-count
//! increase is the signature of amortised `Vec` growth; anything linear in
//! the extra ~1.8k–14k tasks blows through the bound immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use swarm_sim::{InitialTask, RoundRobinMapper, Sim, SwarmApp, TaskCtx};
use swarm_types::Hint;

struct CountingAllocator;

// Per-thread counter so the libtest harness (and other tests running on
// their own threads) cannot bump the count mid-measurement. The const
// initializer keeps the first per-thread access allocation-free, and
// `Cell<u64>` has no destructor to register.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged; the counter is a
// plain thread-local cell with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn measured(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// `roots` ordered chains of `chain + 1` tasks, argument-free (the chain
/// position is recovered from the timestamp), each touching one line per
/// chain and enqueuing its successor. The same shape as the
/// `engine_cycles_per_sec` benchmark workload, minus the per-child argument
/// vector, so each extra link exercises the dispatch / execute / conflict
/// check / finish / commit machinery and nothing else.
struct SilentChains {
    roots: u64,
    chain: u64,
}

impl SwarmApp for SilentChains {
    fn name(&self) -> &str {
        "silent_chains"
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        (0..self.roots).map(|i| InitialTask::new(i as u16, 0, Hint::value(i), vec![])).collect()
    }

    fn run_task(&self, fid: u16, ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
        ctx.update(0x10_0000 + u64::from(fid) * 64, |v| v.wrapping_add(1));
        if ts < self.chain {
            ctx.enqueue(fid, ts + 1, Hint::value(u64::from(fid)), vec![]);
        }
    }

    fn num_task_fns(&self) -> usize {
        self.roots as usize
    }
}

/// Allocation count of one complete run over `chain + 1` tasks per root.
fn allocs_for(roots: u64, chain: u64) -> u64 {
    measured(|| {
        let mut engine = Sim::builder()
            .app(SilentChains { roots, chain })
            .mapper(Box::new(RoundRobinMapper::new()))
            .cores(16)
            .build()
            .expect("workload builds");
        engine.run().expect("workload runs");
    })
}

/// Allowance for the per-task metadata arrays doubling a few times between
/// the short and the long run (see module docs). Each doubling reallocates
/// a fixed handful of arrays, so the allowance is a small constant; the
/// long runs create 1792–14336 *more tasks* than the short ones, so any
/// per-task (or per-event) leak exceeds this within the first few steps.
const DOUBLING_ALLOWANCE: u64 = 48;

#[test]
fn longer_single_chain_allocates_no_more_than_short_one() {
    // First run warms up thread-locals and lazy runtime state.
    allocs_for(1, 64);
    let short = allocs_for(1, 256);
    let long = allocs_for(1, 2048);
    assert!(
        long >= short && long - short <= DOUBLING_ALLOWANCE,
        "7x more steady-state engine steps must add at most a few \
         metadata-array doublings, got {short} -> {long}"
    );
}

#[test]
fn longer_parallel_chains_allocate_no_more_than_short_ones() {
    allocs_for(8, 64);
    let short = allocs_for(8, 256);
    let long = allocs_for(8, 2048);
    assert!(
        long >= short && long - short <= DOUBLING_ALLOWANCE,
        "7x more steady-state engine steps must add at most a few \
         metadata-array doublings, got {short} -> {long}"
    );
}
