//! A conformance test-kit for [`SwarmApp`] implementations.
//!
//! Every benchmark in this repository — and any future one — must simulate
//! *faithfully*: identical configurations must produce identical results,
//! the final memory state must match the app's serial reference under every
//! scheduler, and the engine's commit/abort accounting must stay coherent.
//! Those properties used to be asserted ad hoc, app by app, across the
//! integration suites; this module packages them as one reusable checker so
//! a new app gets the full battery by adding a single table row (see
//! `tests/conformance.rs` in the workspace root).
//!
//! The kit is scheduler-agnostic: it takes mapper *factories* rather than
//! depending on the `spatial-hints` crate, so it can also exercise the
//! built-in [`RoundRobinMapper`](crate::RoundRobinMapper)-style mappers and
//! any future scheduling policy.
//!
//! What [`check_app`] verifies, for every mapper × core-count combination:
//!
//! 1. **Validation**: the run completes and `validate()` accepts the final
//!    memory state (the engine calls it internally; any failure is surfaced
//!    with the offending mapper and core count).
//! 2. **Determinism**: repeated runs of the identical configuration produce
//!    bit-identical statistics *and* bit-identical final memory.
//! 3. **Accounting invariants**: committed work is positive and consistent
//!    with the per-tile ledger, aborted cycles exist iff aborted tasks do,
//!    busy cycles fit in the wall-clock budget, the speculative line table
//!    drains to empty, and a single core never misspeculates unless a
//!    task-queue overflow forced tasks to execute out of commit order.
//! 4. Optionally, **commit-count stability**: the number of committed tasks
//!    is a property of the program, not the schedule (enable via
//!    [`ConformanceOptions::stable_commit_count`] for apps whose task
//!    structure is deterministic across schedules).

use swarm_types::SystemConfig;

use crate::{RunStats, Sim, SwarmApp, TaskMapper};

/// A named way of building a scheduler for a given machine configuration.
pub struct MapperSpec<'a> {
    /// Display name used in failure messages (e.g. `"Hints"`).
    pub name: &'a str,
    /// Factory producing a fresh, identically-seeded mapper per run.
    #[allow(clippy::type_complexity)]
    pub build: &'a dyn Fn(&SystemConfig) -> Box<dyn TaskMapper>,
}

/// Knobs for [`check_app`].
pub struct ConformanceOptions {
    /// Core counts to exercise (must include 1 to get the no-misspeculation
    /// check; the default does).
    pub core_counts: Vec<u32>,
    /// Times to run each configuration; the determinism check compares
    /// every repeat against the first, so [`check_app`] rejects values
    /// below 2.
    pub repeats: usize,
    /// Whether committed task counts must be identical across every mapper
    /// and core count. True for apps whose committed task structure is
    /// schedule-independent (fixed task graphs, or ordered programs with
    /// distinct timestamps); leave false for apps like coarse-grain `sssp`,
    /// where equal-timestamp ties decide whether a redundant relaxation
    /// spawns and commits.
    pub stable_commit_count: bool,
    /// Builds the machine configuration for a given core count. Defaults to
    /// [`SystemConfig::with_cores`]; override it to run the battery under
    /// queue pressure (tiny task/commit queues, aggressive spill thresholds)
    /// — every invariant above must hold there too.
    pub config: fn(u32) -> SystemConfig,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        ConformanceOptions {
            core_counts: vec![1, 16],
            repeats: 2,
            stable_commit_count: false,
            config: SystemConfig::with_cores,
        }
    }
}

/// Statistics of the first run of each mapper × core-count combination.
#[derive(Debug)]
pub struct ComboResult {
    /// Mapper name.
    pub mapper: String,
    /// Simulated core count.
    pub cores: u32,
    /// The (deterministic) run statistics.
    pub stats: RunStats,
}

/// What [`check_app`] returns on success.
#[derive(Debug)]
pub struct ConformanceReport {
    /// One entry per mapper × core-count combination, in check order.
    pub combos: Vec<ComboResult>,
    /// Total simulations executed (combos × repeats).
    pub runs: usize,
}

/// Run the full conformance battery over `make_app`.
///
/// `make_app` must build an identical application each time it is called
/// (same workload, same seed) — the determinism check is meaningless
/// otherwise, and a generator that varies across calls is reported as a
/// determinism failure.
///
/// # Errors
///
/// Returns a description of the first violated property, naming the app,
/// mapper and core count.
pub fn check_app(
    make_app: &dyn Fn() -> Box<dyn SwarmApp>,
    mappers: &[MapperSpec<'_>],
    opts: &ConformanceOptions,
) -> Result<ConformanceReport, String> {
    assert!(!mappers.is_empty(), "need at least one mapper");
    assert!(!opts.core_counts.is_empty(), "need at least one core count");
    assert!(opts.repeats >= 2, "the determinism check needs at least two runs per configuration");
    let mut combos = Vec::new();
    let mut runs = 0;
    for mapper in mappers {
        for &cores in &opts.core_counts {
            let (first_stats, first_mem) = run_once(make_app, mapper, cores, opts.config)?;
            runs += 1;
            let at = || format!("{} under {} at {cores} cores", first_stats.app, mapper.name);
            for repeat in 1..opts.repeats {
                let (stats, mem) = run_once(make_app, mapper, cores, opts.config)?;
                runs += 1;
                if stats != first_stats {
                    return Err(format!("{}: repeat {repeat} produced different statistics", at()));
                }
                if mem != first_mem {
                    return Err(format!(
                        "{}: repeat {repeat} produced a different final memory state",
                        at()
                    ));
                }
            }
            check_accounting(&first_stats).map_err(|e| format!("{}: {e}", at()))?;
            combos.push(ComboResult { mapper: mapper.name.to_string(), cores, stats: first_stats });
        }
    }
    if opts.stable_commit_count {
        let expected = combos[0].stats.tasks_committed;
        for combo in &combos {
            if combo.stats.tasks_committed != expected {
                return Err(format!(
                    "{}: committed {} tasks under {} at {} cores, but {} under {} at {} cores \
                     — commit counts must be schedule-independent",
                    combo.stats.app,
                    combo.stats.tasks_committed,
                    combo.mapper,
                    combo.cores,
                    expected,
                    combos[0].mapper,
                    combos[0].cores,
                ));
            }
        }
    }
    Ok(ConformanceReport { combos, runs })
}

/// One simulation plus a snapshot of the final memory (sorted by address).
#[allow(clippy::type_complexity)]
fn run_once(
    make_app: &dyn Fn() -> Box<dyn SwarmApp>,
    mapper: &MapperSpec<'_>,
    cores: u32,
    config: fn(u32) -> SystemConfig,
) -> Result<(RunStats, Vec<(u64, u64)>), String> {
    let cfg = config(cores);
    let app = make_app();
    let name = app.name().to_string();
    let mapper_impl = (mapper.build)(&cfg);
    let mut engine =
        Sim::builder().config(cfg).app_boxed(app).mapper(mapper_impl).build().map_err(|e| {
            format!("{name} under {} at {cores} cores: invalid simulation: {e}", mapper.name)
        })?;
    let stats = engine
        .run()
        .map_err(|e| format!("{name} under {} at {cores} cores failed: {e}", mapper.name))?;
    if !engine.state().line_table.is_empty() {
        return Err(format!(
            "{name} under {} at {cores} cores left {} lines registered in the speculative \
             line table after completion",
            mapper.name,
            engine.state().line_table.len()
        ));
    }
    let mem: Vec<(u64, u64)> = engine.state().mem.iter().collect();
    Ok((stats, mem))
}

/// The per-run commit/abort accounting invariants.
fn check_accounting(stats: &RunStats) -> Result<(), String> {
    if stats.tasks_committed == 0 {
        return Err("no tasks committed".to_string());
    }
    if stats.runtime_cycles == 0 {
        return Err("zero runtime".to_string());
    }
    if stats.gvt_updates == 0 {
        return Err("the GVT never updated".to_string());
    }
    let per_tile: u64 = stats.committed_cycles_per_tile.iter().sum();
    if per_tile != stats.breakdown.committed {
        return Err(format!(
            "per-tile committed cycles ({per_tile}) disagree with the aggregate breakdown ({})",
            stats.breakdown.committed
        ));
    }
    if (stats.tasks_aborted == 0) != (stats.breakdown.aborted == 0) {
        return Err(format!(
            "{} aborted executions but {} aborted cycles",
            stats.tasks_aborted, stats.breakdown.aborted
        ));
    }
    let wall = stats.runtime_cycles * stats.cores as u64;
    if stats.breakdown.committed + stats.breakdown.aborted > wall {
        return Err(format!(
            "busy cycles ({} committed + {} aborted) exceed the wall-clock budget ({wall})",
            stats.breakdown.committed, stats.breakdown.aborted
        ));
    }
    // Spill cycles are charged on top of core time, so the full breakdown may
    // exceed the wall clock by at most that plus one epoch of slack.
    if stats.breakdown.total() > wall + stats.breakdown.spill + stats.runtime_cycles {
        return Err(format!(
            "cycle breakdown ({}) exceeds the wall-clock budget ({wall}) by more than the \
             spill allowance",
            stats.breakdown.total()
        ));
    }
    // A single core dispatches in commit-key order, so it can only
    // misspeculate when a task-queue overflow spilled an early task and let
    // a later one run first; with no spills there is no legal abort source.
    if stats.cores == 1 && stats.tasks_spilled == 0 && stats.tasks_aborted != 0 {
        return Err(format!(
            "{} executions aborted on a single core without any task spills",
            stats.tasks_aborted
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InitialTask, RoundRobinMapper, SwarmApp, TaskCtx};
    use swarm_types::Hint;

    /// The well-behaved reference citizen: ordered chain summing 0..n.
    struct ChainSum {
        n: u64,
    }

    impl SwarmApp for ChainSum {
        fn name(&self) -> &str {
            "chain-sum"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::value(0), vec![0])]
        }
        fn run_task(&self, _fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
            let i = args[0];
            let acc = ctx.read(0x1000);
            ctx.write(0x1000, acc + i);
            if i + 1 < self.n {
                ctx.enqueue(0, ts + 1, Hint::value(i + 1), vec![i + 1]);
            }
        }
        fn validate(&self, mem: &swarm_mem::SimMemory) -> Result<(), String> {
            let want: u64 = (0..self.n).sum();
            if mem.load(0x1000) == want {
                Ok(())
            } else {
                Err(format!("sum is {}, want {want}", mem.load(0x1000)))
            }
        }
    }

    fn round_robin_mappers() -> [&'static str; 1] {
        ["RoundRobin"]
    }

    fn check(
        make_app: &dyn Fn() -> Box<dyn SwarmApp>,
        opts: &ConformanceOptions,
    ) -> Result<ConformanceReport, String> {
        let build = |_: &SystemConfig| -> Box<dyn TaskMapper> { Box::new(RoundRobinMapper::new()) };
        let mappers = [MapperSpec { name: round_robin_mappers()[0], build: &build }];
        check_app(make_app, &mappers, opts)
    }

    #[test]
    fn well_behaved_app_passes() {
        let opts =
            ConformanceOptions { stable_commit_count: true, ..ConformanceOptions::default() };
        let report = check(&|| Box::new(ChainSum { n: 24 }), &opts).expect("chain conforms");
        assert_eq!(report.combos.len(), 2);
        assert_eq!(report.runs, 4);
        assert!(report.combos.iter().all(|c| c.stats.tasks_committed == 24));
    }

    #[test]
    fn validation_failures_are_surfaced_with_context() {
        struct BadValidate;
        impl SwarmApp for BadValidate {
            fn name(&self) -> &str {
                "bad-validate"
            }
            fn initial_tasks(&self) -> Vec<InitialTask> {
                vec![InitialTask::new(0, 0, Hint::None, vec![])]
            }
            fn run_task(&self, _f: u16, _t: u64, _a: &[u64], ctx: &mut TaskCtx<'_>) {
                ctx.write(0x10, 1);
            }
            fn validate(&self, _mem: &swarm_mem::SimMemory) -> Result<(), String> {
                Err("deliberately wrong".to_string())
            }
        }
        let err = check(&|| Box::new(BadValidate), &ConformanceOptions::default()).unwrap_err();
        assert!(err.contains("bad-validate"), "{err}");
        assert!(err.contains("deliberately wrong"), "{err}");
    }

    #[test]
    fn nondeterministic_workload_generation_is_caught() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CALLS: AtomicU64 = AtomicU64::new(0);
        // Each build produces a different chain length, so the repeat run
        // must diverge from the first.
        let make: Box<dyn Fn() -> Box<dyn SwarmApp>> = Box::new(|| {
            let n = 10 + CALLS.fetch_add(1, Ordering::Relaxed) % 7;
            Box::new(ChainSum { n: 10 + n })
        });
        let err = check(&make, &ConformanceOptions::default()).unwrap_err();
        assert!(err.contains("different"), "{err}");
    }
}
