//! A proptest-driven [`SwarmApp`] fuzzer built on the conformance kit.
//!
//! [`scenario`] is a `proptest` strategy sampling random — but always
//! *legal* — Swarm programs: a forest-shaped task DAG (every child's parent
//! precedes it), timestamps with controlled structure (including equal-
//! timestamp ties, which the relaxed commit rule must order), a small
//! aliased hint pool (including NOHINT), overlapping read/write sets over a
//! handful of shared cells, and a queue-pressure bit that swaps in a
//! starved machine configuration ([`pressured_config`]) whose tiny task and
//! commit queues force spills, refills and dispatch-time resource aborts.
//!
//! Every sampled [`ScenarioSpec`] resolves to a [`ScenarioApp`] whose
//! effects are *commutative adds* (`TaskCtx::update`), so its final memory
//! is a schedule-independent function of the spec — each cell must equal
//! the sum of all deltas targeting it — while its reads still create real
//! conflict edges. That makes every scenario checkable by the full
//! conformance battery ([`check_scenario`] wraps
//! [`crate::conformance::check_app`]): serial-reference
//! validation, bit-identical determinism, accounting invariants, line-table
//! drain, and a schedule-independent commit count.
//!
//! The workspace-root `tests/fuzz.rs` drives this strategy through all four
//! paper schedulers; failures shrink to minimal scenarios via the proptest
//! shim's stream shrinker and are committed as named regression tests.
//!
//! The module also fuzzes the *fault* dimension: [`fault_plan`] samples
//! random [`FaultPlan`]s across the whole [`FaultKind`] family, and
//! [`check_scenario_with_faults`] runs a sampled scenario under a sampled
//! plan through the chaos contract ([`crate::chaos::check_plan`]): the
//! faulted run must complete `validate()`-clean or fail with a typed error,
//! identically on a repeat — never hang, panic, or silently corrupt.

use proptest::collection::vec;
use proptest::{any, Strategy};
use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_types::{CoreId, Hint, SystemConfig, TaskFnId, TileId, Timestamp};

use crate::chaos::{check_plan, ChaosOptions, PlanCombo};
use crate::conformance::{check_app, ConformanceOptions, ConformanceReport, MapperSpec};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::{InitialTask, SwarmApp, TaskCtx};

/// Upper bound on tasks per sampled scenario; kept small so a fuzz run can
/// afford thousands of scenarios × mappers × core counts.
pub const MAX_TASKS: usize = 20;

/// One task of a sampled scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Index of the task that enqueues this one (always less than the
    /// task's own index), or `None` for an initial task.
    pub parent: Option<usize>,
    /// Resolved absolute timestamp (a child's is `>=` its parent's; equal
    /// timestamps are deliberately common).
    pub ts: u64,
    /// Spatial hint: `Some(v)` for `Hint::value(v)` drawn from a small
    /// aliased pool, `None` for NOHINT.
    pub hint: Option<u64>,
    /// Cells read (conflict edges without effects).
    pub reads: Vec<u8>,
    /// Commutative read-modify-write effects: `(cell, delta)`.
    pub adds: Vec<(u8, u64)>,
    /// Cycles of compute between the accesses and the child enqueues.
    pub compute: u64,
}

/// A fully-resolved random Swarm program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Number of shared memory cells (adjacent words, so they share cache
    /// lines — maximizing conflict pressure).
    pub cells: u8,
    /// The task forest, in creation order.
    pub tasks: Vec<TaskSpec>,
    /// Run under [`pressured_config`] instead of the default machine.
    pub pressure: bool,
}

/// Raw per-task draw, before structural constraints are applied.
type RawTask = (u64, u64, u64, Vec<u8>, Vec<(u8, u64)>, u64);

impl ScenarioSpec {
    /// Apply the structural constraints to raw draws: parents must precede
    /// children, child timestamps may not regress, and cell/hint selectors
    /// wrap into their pools. Zero draws resolve to the minimal scenario
    /// (independent initial tasks at timestamp 0 with no accesses).
    fn resolve(cells: u8, hints: u8, pressure: bool, raw: Vec<RawTask>) -> ScenarioSpec {
        let mut tasks: Vec<TaskSpec> = Vec::with_capacity(raw.len());
        for (i, (parent_raw, ts_delta, hint_raw, reads_raw, adds_raw, compute)) in
            raw.into_iter().enumerate()
        {
            let parent = match parent_raw % (i as u64 + 1) {
                0 => None,
                p => Some(p as usize - 1),
            };
            let ts = match parent {
                None => ts_delta,
                Some(p) => tasks[p].ts + ts_delta,
            };
            let hint = match hint_raw % (hints as u64 + 1) {
                h if h == hints as u64 => None,
                h => Some(0xBEEF_0000 + h),
            };
            let reads = reads_raw.into_iter().map(|c| c % cells).collect();
            let adds = adds_raw.into_iter().map(|(c, d)| (c % cells, d)).collect();
            tasks.push(TaskSpec { parent, ts, hint, reads, adds, compute });
        }
        ScenarioSpec { cells, tasks, pressure }
    }

    /// The schedule-independent expected final value of every cell.
    pub fn expected_cells(&self) -> Vec<u64> {
        let mut expected = vec![0u64; self.cells as usize];
        for t in &self.tasks {
            for &(c, d) in &t.adds {
                expected[c as usize] = expected[c as usize].wrapping_add(d);
            }
        }
        expected
    }
}

/// The strategy: random legal Swarm programs, shrinking toward a single
/// access-free initial task.
pub fn scenario() -> impl Strategy<Value = ScenarioSpec> {
    ((1usize..=MAX_TASKS), (1u8..=4), (1u8..=3), any::<bool>()).prop_flat_map(
        |(n, cells, hints, pressure)| {
            let task = (
                0u64..64,                      // parent selector (0 ⇒ initial task)
                0u64..4,                       // timestamp delta (0 ⇒ equal-timestamp tie)
                0u64..16,                      // hint selector over the aliased pool + NOHINT
                vec(0u8..16, 0..3),            // read set
                vec((0u8..16, 0u64..6), 0..4), // commutative adds
                0u64..50,                      // compute cycles
            );
            vec(task, n).prop_map(move |raw| ScenarioSpec::resolve(cells, hints, pressure, raw))
        },
    )
}

/// The app a [`ScenarioSpec`] resolves to.
pub struct ScenarioApp {
    spec: ScenarioSpec,
    cells: Region,
    /// `children[i]` = tasks enqueued when task `i` runs.
    children: Vec<Vec<usize>>,
    expected: Vec<u64>,
}

impl ScenarioApp {
    /// Resolve a sampled spec into a runnable app (allocates its cell
    /// region, precomputes the child lists and the expected final memory).
    pub fn new(spec: ScenarioSpec) -> Self {
        let mut space = AddressSpace::new();
        let cells = space.alloc_array("cells", spec.cells as u64);
        let mut children = vec![Vec::new(); spec.tasks.len()];
        for (i, t) in spec.tasks.iter().enumerate() {
            if let Some(p) = t.parent {
                children[p].push(i);
            }
        }
        let expected = spec.expected_cells();
        ScenarioApp { spec, cells, children, expected }
    }

    fn cell_addr(&self, c: u8) -> u64 {
        self.cells.addr_of(c as u64)
    }

    fn hint_of(&self, i: usize) -> Hint {
        match self.spec.tasks[i].hint {
            Some(v) => Hint::value(v),
            None => Hint::None,
        }
    }
}

impl SwarmApp for ScenarioApp {
    fn name(&self) -> &str {
        "fuzz-scenario"
    }

    fn init_memory(&self, _mem: &mut SimMemory) {}

    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.spec
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.parent.is_none())
            .map(|(i, t)| InitialTask::new(0, t.ts, self.hint_of(i), vec![i as u64]))
            .collect()
    }

    fn run_task(&self, _fid: TaskFnId, _ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let i = args[0] as usize;
        let t = &self.spec.tasks[i];
        for &c in &t.reads {
            ctx.read(self.cell_addr(c));
        }
        for &(c, d) in &t.adds {
            ctx.update(self.cell_addr(c), |v| v.wrapping_add(d));
        }
        ctx.compute(t.compute);
        for &j in &self.children[i] {
            ctx.enqueue(0, self.spec.tasks[j].ts, self.hint_of(j), vec![j as u64]);
        }
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for (c, &want) in self.expected.iter().enumerate() {
            let got = mem.load(self.cells.addr_of(c as u64));
            if got != want {
                return Err(format!(
                    "fuzz-scenario: cell {c} is {got}, the sum of its deltas is {want}"
                ));
            }
        }
        Ok(())
    }
}

/// A machine starved for queue space: six task-queue entries and three
/// commit-queue entries per core, with an aggressive spill coalescer. Runs
/// of more than a handful of tasks spill, refill, resource-abort at
/// dispatch, and execute out of commit order — every conformance invariant
/// must survive that regime too.
pub fn pressured_config(cores: u32) -> SystemConfig {
    let mut cfg = SystemConfig::with_cores(cores);
    cfg.queues.task_queue_per_core = 6;
    cfg.queues.commit_queue_per_core = 3;
    cfg.queues.spill_threshold_pct = 50;
    cfg.queues.spill_batch = 2;
    cfg
}

/// Run one sampled scenario through the full conformance battery under
/// every given mapper × core count, honoring the spec's pressure bit.
///
/// # Errors
///
/// Propagates the first conformance violation, naming the mapper and core
/// count (see [`check_app`]).
pub fn check_scenario(
    spec: &ScenarioSpec,
    mappers: &[MapperSpec<'_>],
    core_counts: &[u32],
) -> Result<ConformanceReport, String> {
    let opts = ConformanceOptions {
        core_counts: core_counts.to_vec(),
        repeats: 2,
        // The task forest is fixed by the spec, so the committed count is a
        // property of the program under every schedule.
        stable_commit_count: true,
        config: if spec.pressure { pressured_config } else { SystemConfig::with_cores },
    };
    let spec = spec.clone();
    let make = move || -> Box<dyn SwarmApp> { Box::new(ScenarioApp::new(spec.clone())) };
    check_app(&make, mappers, &opts)
}

/// Raw per-event draw for [`fault_plan`]: `(cycle, kind selector, two
/// parameter draws)`.
type RawFault = (u64, u64, u64, u64);

/// The fault-plan strategy: one to three events across the full
/// [`FaultKind`] family, at cycles early enough to land inside the short
/// runs [`scenario`] produces. Out-of-range tile/core targets are legal —
/// the runtime switches compare by identity, so a fault aimed at hardware
/// the machine does not have is simply inert.
pub fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    vec((0u64..1500, 0u64..7, 0u64..16, 1u64..8), 1..4).prop_map(|raw: Vec<RawFault>| {
        let mut plan = FaultPlan::new();
        for (at_cycle, kind_sel, a, b) in raw {
            let kind = match kind_sel {
                0 => FaultKind::LostTaskWake { ts: a },
                1 => {
                    FaultKind::DelayedMessage { tile: TileId(a as u32 % 4), extra_cycles: b as u32 }
                }
                2 => FaultKind::DuplicateMessage,
                3 => FaultKind::QueueSqueeze { tile: TileId(a as u32 % 4), capacity: b as u16 },
                4 => FaultKind::StuckCore { core: CoreId(a as u32) },
                5 => FaultKind::AbortStorm,
                _ => FaultKind::CorruptHint { xor: 0x5A5A_0000 | a },
            };
            plan.push(FaultEvent { at_cycle, kind });
        }
        plan
    })
}

/// Run one sampled scenario under one sampled fault plan through the chaos
/// contract for every mapper × core count, honoring the spec's pressure
/// bit. Every battery run carries a cycle-budget watchdog, so a fault that
/// would wedge the run surfaces as a typed error instead of a hang.
///
/// # Errors
///
/// Propagates the first chaos-contract violation, naming the mapper, core
/// count and plan (see [`check_plan`]).
pub fn check_scenario_with_faults(
    spec: &ScenarioSpec,
    plan: &FaultPlan,
    mappers: &[MapperSpec<'_>],
    core_counts: &[u32],
) -> Result<Vec<PlanCombo>, String> {
    let opts = ChaosOptions {
        core_counts: core_counts.to_vec(),
        config: if spec.pressure { pressured_config } else { SystemConfig::with_cores },
        // Scenarios are at most MAX_TASKS tiny tasks; a run that is still
        // going after this many cycles is wedged, not slow.
        max_cycles: 2_000_000,
    };
    let spec = spec.clone();
    let make = move || -> Box<dyn SwarmApp> { Box::new(ScenarioApp::new(spec.clone())) };
    check_plan(&make, mappers, plan, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoundRobinMapper, TaskMapper};
    use proptest::{test_rng, TestRng};

    fn round_robin() -> [MapperSpec<'static>; 1] {
        fn build(_: &SystemConfig) -> Box<dyn TaskMapper> {
            Box::new(RoundRobinMapper::new())
        }
        [MapperSpec { name: "RoundRobin", build: &|cfg| build(cfg) }]
    }

    #[test]
    fn zero_draws_resolve_to_the_minimal_scenario() {
        let mut rng = TestRng::replay(vec![]);
        let spec = scenario().generate(&mut rng);
        assert_eq!(spec.tasks.len(), 1);
        let t = &spec.tasks[0];
        assert_eq!(t.parent, None);
        assert_eq!(t.ts, 0);
        assert!(t.reads.is_empty() && t.adds.is_empty());
        assert_eq!(t.compute, 0);
        assert!(!spec.pressure);
    }

    #[test]
    fn resolved_scenarios_are_structurally_legal() {
        let strat = scenario();
        let mut rng = test_rng("fuzz-structural");
        for _ in 0..200 {
            rng.begin_case();
            let spec = strat.generate(&mut rng);
            assert!((1..=MAX_TASKS).contains(&spec.tasks.len()));
            for (i, t) in spec.tasks.iter().enumerate() {
                if let Some(p) = t.parent {
                    assert!(p < i, "parent {p} does not precede task {i}");
                    assert!(t.ts >= spec.tasks[p].ts, "child timestamp regressed");
                }
                assert!(t.reads.iter().all(|&c| c < spec.cells));
                assert!(t.adds.iter().all(|&(c, _)| c < spec.cells));
            }
            assert!(spec.tasks[0].parent.is_none(), "task 0 must be initial");
        }
    }

    #[test]
    fn sampled_scenarios_conform_under_round_robin() {
        let strat = scenario();
        let mut rng = test_rng("fuzz-smoke");
        let mappers = round_robin();
        for _ in 0..25 {
            rng.begin_case();
            let spec = strat.generate(&mut rng);
            check_scenario(&spec, &mappers, &[1, 4]).expect("sampled scenario must conform");
        }
    }

    #[test]
    fn sampled_fault_plans_satisfy_the_chaos_contract_under_round_robin() {
        let scenarios = scenario();
        let plans = fault_plan();
        let mut rng = test_rng("fuzz-fault-smoke");
        let mappers = round_robin();
        for _ in 0..15 {
            rng.begin_case();
            let spec = scenarios.generate(&mut rng);
            let plan = plans.generate(&mut rng);
            check_scenario_with_faults(&spec, &plan, &mappers, &[1, 4])
                .unwrap_or_else(|e| panic!("plan [{plan}] broke the chaos contract: {e}"));
        }
    }

    #[test]
    fn sampled_fault_plans_cover_the_whole_family() {
        let plans = fault_plan();
        let mut rng = test_rng("fuzz-fault-coverage");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            rng.begin_case();
            for event in plans.generate(&mut rng).events() {
                seen.insert(event.kind.name());
            }
        }
        for kind in
            ["lost-wake", "delay", "duplicate", "squeeze", "stuck", "abort-storm", "corrupt-hint"]
        {
            assert!(seen.contains(kind), "strategy never sampled {kind}");
        }
    }

    #[test]
    fn pressured_config_is_valid_and_starved() {
        for cores in [1, 4, 16] {
            let cfg = pressured_config(cores);
            cfg.validate().expect("pressured config must stay valid");
            assert!(cfg.commit_queue_per_tile() > cfg.cores_per_tile as usize);
            assert!(
                cfg.task_queue_per_tile() < SystemConfig::with_cores(cores).task_queue_per_tile()
            );
        }
    }
}
