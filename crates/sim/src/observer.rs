//! Observer hooks: a typed event stream out of the simulation engine.
//!
//! Every measurable thing the engine does — dispatching a task from a task
//! queue, committing or aborting an execution, sending a NoC message,
//! spilling tasks to memory, idling a core — is announced to a set of
//! [`SimObserver`]s *as it happens*. The statistics the paper's figures are
//! built from ([`RunStats`]) are not special-cased inside the engine: they
//! are accumulated by [`StatsObserver`], the always-attached built-in
//! observer. Custom metrics (e.g. per-link NoC contention counters, abort
//! chain lengths, queue-depth traces) attach through
//! [`SimBuilder::observer`](crate::SimBuilder::observer) without touching
//! the engine at all.
//!
//! Observers run synchronously on the simulation thread in attach order,
//! always after the built-in statistics observer. They see events in
//! simulation order, which is deterministic.
//!
//! # Example: counting commits without touching the engine
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! use swarm_sim::{
//!     CommitEvent, InitialTask, RoundRobinMapper, Sim, SimObserver, SwarmApp, TaskCtx,
//! };
//! use swarm_types::Hint;
//!
//! struct Independent;
//! impl SwarmApp for Independent {
//!     fn name(&self) -> &str {
//!         "independent"
//!     }
//!     fn initial_tasks(&self) -> Vec<InitialTask> {
//!         (0..10).map(|i| InitialTask::new(0, i, Hint::value(i), vec![i])).collect()
//!     }
//!     fn run_task(&self, _fid: u16, _ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
//!         ctx.write(0x1000 + args[0] * 64, 1);
//!     }
//! }
//!
//! #[derive(Default)]
//! struct CommitCounter {
//!     commits: u64,
//! }
//! impl SimObserver for CommitCounter {
//!     fn on_commit(&mut self, _event: &CommitEvent<'_>) {
//!         self.commits += 1;
//!     }
//! }
//!
//! let counter = Rc::new(RefCell::new(CommitCounter::default()));
//! let mut engine = Sim::builder()
//!     .app(Independent)
//!     .mapper(Box::new(RoundRobinMapper::new()))
//!     .observer(Rc::clone(&counter))
//!     .build()
//!     .expect("a complete simulation description");
//! let stats = engine.run().unwrap();
//! assert_eq!(counter.borrow().commits, stats.tasks_committed);
//! ```

use std::fmt;

use swarm_noc::{TrafficClass, TrafficStats};
use swarm_types::{Addr, CoreId, Hint, TaskId, TileId, Timestamp};

use crate::stats::{CommittedTaskAccesses, CycleBreakdown, RunStats};

/// A task was dispatched (dequeued) from its tile's task queue onto a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeueEvent {
    /// The dispatched task.
    pub task: TaskId,
    /// The task's timestamp.
    pub ts: Timestamp,
    /// The task's (resolved) spatial hint.
    pub hint: Hint,
    /// The tile whose task queue held the task.
    pub tile: TileId,
    /// The core the task was dispatched to.
    pub core: CoreId,
    /// Simulation time of the dispatch.
    pub now: u64,
}

/// A finished task committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent<'a> {
    /// The committing task.
    pub task: TaskId,
    /// The task's timestamp.
    pub ts: Timestamp,
    /// The task's (resolved) spatial hint.
    pub hint: Hint,
    /// The tile the task ran on.
    pub tile: TileId,
    /// The load-balancer bucket of the task's hint, if the scheduler
    /// profiles buckets.
    pub bucket: Option<u16>,
    /// Execution cycles now accounted as committed work.
    pub cycles: u64,
    /// Number of task arguments.
    pub num_args: usize,
    /// The word-granular access trace of the committed execution —
    /// `Some` only when profiling is enabled (each entry is
    /// `(byte address, is_write)`).
    pub accesses: Option<&'a [(Addr, bool)]>,
}

/// A task was aborted (and will re-execute or be discarded).
///
/// One event fires per member of an abort cascade, and each doomed
/// execution is announced exactly once — a running task that an earlier
/// cascade already aborted (still draining on its core) is not
/// re-announced when a later cascade reaches it. Members that never
/// started executing (they were still idle or spilled) carry
/// `executed == false` and zero cycles; they are not counted as aborted
/// executions in [`RunStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortEvent {
    /// The aborted task.
    pub task: TaskId,
    /// The task's timestamp.
    pub ts: Timestamp,
    /// The tile the task was queued or running on.
    pub tile: TileId,
    /// The tile whose access (or resource pressure) triggered the abort.
    pub aborter_tile: TileId,
    /// Execution cycles discarded (zero if the task never ran).
    pub cycles: u64,
    /// Whether the task had actually executed (speculative work was wasted).
    pub executed: bool,
}

/// A message crossed the on-chip network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkEvent {
    /// What kind of payload the message carried.
    pub class: TrafficClass,
    /// Number of mesh hops traversed.
    pub hops: u64,
    /// Number of link flits occupied.
    pub flits: u64,
    /// Cycles the message spent queued behind earlier messages along its
    /// route. Always zero under [`swarm_types::NocModel::Analytic`]; under
    /// `Contention` it is the sum of the per-link waits.
    pub queue_cycles: u64,
}

/// A message traversed one directed mesh link under
/// [`swarm_types::NocModel::Contention`] (one event per hop of the route).
///
/// Never fired in analytic mode, and — like dequeue events — only
/// materialised when a custom observer is attached, since the built-in
/// statistics come from the link counters directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOccupancyEvent {
    /// The directed link id (see [`swarm_noc::Mesh::route_links`]).
    pub link: u32,
    /// What kind of payload the message carried.
    pub class: TrafficClass,
    /// Number of link flits occupied.
    pub flits: u64,
    /// Cycle the message arrived at the link.
    pub enter: u64,
    /// Cycle the message cleared the link (service plus any queueing).
    pub depart: u64,
    /// Cycles spent waiting for earlier messages on this link.
    pub queue_cycles: u64,
}

/// Which way tasks moved between a tile's task queue and memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillDirection {
    /// Tasks were spilled from the task queue to memory.
    Spilled,
    /// Tasks were refilled from memory into the task queue.
    Refilled,
}

/// Tasks moved between a tile's hardware task queue and the memory-backed
/// spill buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillEvent {
    /// The tile whose task queue spilled or refilled.
    pub tile: TileId,
    /// How many tasks moved.
    pub tasks: u64,
    /// Cycles charged for the transfer.
    pub cycles: u64,
    /// Whether tasks left ([`SpillDirection::Spilled`]) or re-entered
    /// ([`SpillDirection::Refilled`]) the hardware queue.
    pub direction: SpillDirection,
}

/// Why a core was not executing tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// No dispatchable task was available.
    Empty,
    /// The tile's commit queue was full.
    Stalled,
}

/// A core finished a period of idling or stalling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreWaitEvent {
    /// The waiting core.
    pub core: CoreId,
    /// Why the core was waiting.
    pub kind: WaitKind,
    /// How many cycles the wait lasted.
    pub cycles: u64,
}

/// A planned fault was executed by the engine (see [`crate::fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjectedEvent {
    /// Index of the fault within its [`crate::FaultPlan`].
    pub index: usize,
    /// The fault that was injected.
    pub fault: crate::fault::FaultEvent,
    /// Simulation cycle at which it fired.
    pub cycle: u64,
}

/// Hooks into the simulation's event stream.
///
/// All methods default to no-ops, so an observer implements only the events
/// it cares about. Observers must be deterministic if the simulation's
/// results are compared across runs (the built-in statistics observer is).
///
/// Attach observers through [`SimBuilder::observer`](crate::SimBuilder::observer)
/// or [`Engine::add_observer`](crate::Engine::add_observer). To keep a handle
/// on the observer after the engine consumes it, attach an
/// `Rc<RefCell<T>>` — the blanket implementation below forwards every hook.
pub trait SimObserver {
    /// A task was dispatched from a task queue onto a core.
    fn on_dequeue(&mut self, _event: &DequeueEvent) {}

    /// A finished task committed.
    fn on_commit(&mut self, _event: &CommitEvent<'_>) {}

    /// A task was aborted.
    fn on_abort(&mut self, _event: &AbortEvent) {}

    /// A message crossed the on-chip network.
    fn on_network_message(&mut self, _event: &NetworkEvent) {}

    /// A message traversed one directed mesh link (contention mode only;
    /// fires per hop, so implement it only when per-link detail is needed).
    fn on_link_occupancy(&mut self, _event: &LinkOccupancyEvent) {}

    /// Tasks were spilled to (or refilled from) memory.
    fn on_spill(&mut self, _event: &SpillEvent) {}

    /// A core finished an idle or stalled period.
    fn on_core_wait(&mut self, _event: &CoreWaitEvent) {}

    /// A global-virtual-time update ran at simulation time `now`.
    fn on_gvt_update(&mut self, _now: u64) {}

    /// The load balancer reconfigured its hint-to-tile mapping at `now`.
    fn on_lb_reconfig(&mut self, _now: u64) {}

    /// A planned fault was injected (see [`crate::SimBuilder::fault_plan`]),
    /// letting observers correlate faults with downstream aborts, spills and
    /// timing shifts.
    fn on_fault_injected(&mut self, _event: &FaultInjectedEvent) {}

    /// The run completed; `stats` is the final statistics object.
    fn on_run_end(&mut self, _stats: &RunStats) {}
}

/// Forwarding implementation so callers can attach `Rc<RefCell<T>>` and keep
/// the other handle to read their observer back after the run.
impl<T: SimObserver> SimObserver for std::rc::Rc<std::cell::RefCell<T>> {
    fn on_dequeue(&mut self, event: &DequeueEvent) {
        self.borrow_mut().on_dequeue(event);
    }
    fn on_commit(&mut self, event: &CommitEvent<'_>) {
        self.borrow_mut().on_commit(event);
    }
    fn on_abort(&mut self, event: &AbortEvent) {
        self.borrow_mut().on_abort(event);
    }
    fn on_network_message(&mut self, event: &NetworkEvent) {
        self.borrow_mut().on_network_message(event);
    }
    fn on_link_occupancy(&mut self, event: &LinkOccupancyEvent) {
        self.borrow_mut().on_link_occupancy(event);
    }
    fn on_spill(&mut self, event: &SpillEvent) {
        self.borrow_mut().on_spill(event);
    }
    fn on_core_wait(&mut self, event: &CoreWaitEvent) {
        self.borrow_mut().on_core_wait(event);
    }
    fn on_gvt_update(&mut self, now: u64) {
        self.borrow_mut().on_gvt_update(now);
    }
    fn on_lb_reconfig(&mut self, now: u64) {
        self.borrow_mut().on_lb_reconfig(now);
    }
    fn on_fault_injected(&mut self, event: &FaultInjectedEvent) {
        self.borrow_mut().on_fault_injected(event);
    }
    fn on_run_end(&mut self, stats: &RunStats) {
        self.borrow_mut().on_run_end(stats);
    }
}

/// The built-in observer: accumulates every statistic reported in
/// [`RunStats`] from the event stream alone.
///
/// This is the reference consumer of the observer interface — if a number
/// appears in a figure, it was derived from events any custom observer also
/// sees.
#[derive(Debug, Clone, Default)]
pub struct StatsObserver {
    breakdown: CycleBreakdown,
    traffic: TrafficStats,
    tasks_committed: u64,
    tasks_aborted: u64,
    tasks_spilled: u64,
    gvt_updates: u64,
    lb_reconfigs: u64,
    noc_queue_cycles: u64,
    committed_cycles_per_tile: Vec<u64>,
    committed_accesses: Vec<CommittedTaskAccesses>,
}

impl StatsObserver {
    /// A statistics observer for a machine with `num_tiles` tiles.
    pub fn new(num_tiles: usize) -> Self {
        StatsObserver { committed_cycles_per_tile: vec![0; num_tiles], ..StatsObserver::default() }
    }

    /// Aggregate core-cycle breakdown so far.
    pub fn breakdown(&self) -> &CycleBreakdown {
        &self.breakdown
    }

    /// NoC traffic accumulated so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Committed task count so far.
    pub fn tasks_committed(&self) -> u64 {
        self.tasks_committed
    }

    /// Aborted execution count so far.
    pub fn tasks_aborted(&self) -> u64 {
        self.tasks_aborted
    }

    /// Spilled task count so far.
    pub fn tasks_spilled(&self) -> u64 {
        self.tasks_spilled
    }

    /// Committed cycles per tile so far.
    pub fn committed_cycles_per_tile(&self) -> &[u64] {
        &self.committed_cycles_per_tile
    }

    /// Total NoC queueing cycles seen so far (0 in analytic mode).
    pub fn noc_queue_cycles(&self) -> u64 {
        self.noc_queue_cycles
    }

    /// Assemble the final [`RunStats`], draining the collected access traces
    /// (hence `take`: a second call returns empty traces). `link_stats` is
    /// the end-of-run link-contention snapshot (`None` in analytic mode).
    pub(crate) fn take_run_stats(
        &mut self,
        scheduler: String,
        app: String,
        cores: usize,
        runtime_cycles: u64,
        link_stats: Option<swarm_noc::LinkStats>,
    ) -> RunStats {
        RunStats {
            scheduler,
            app,
            cores,
            runtime_cycles,
            breakdown: self.breakdown,
            traffic: self.traffic,
            tasks_committed: self.tasks_committed,
            tasks_aborted: self.tasks_aborted,
            tasks_spilled: self.tasks_spilled,
            gvt_updates: self.gvt_updates,
            lb_reconfigs: self.lb_reconfigs,
            noc_queue_cycles: self.noc_queue_cycles,
            committed_cycles_per_tile: self.committed_cycles_per_tile.clone(),
            committed_accesses: std::mem::take(&mut self.committed_accesses),
            link_stats,
        }
    }
}

impl SimObserver for StatsObserver {
    fn on_commit(&mut self, event: &CommitEvent<'_>) {
        self.tasks_committed += 1;
        self.breakdown.committed += event.cycles;
        self.committed_cycles_per_tile[event.tile.index()] += event.cycles;
        if let Some(accesses) = event.accesses {
            self.committed_accesses.push(CommittedTaskAccesses {
                hint: event.hint,
                num_args: event.num_args,
                accesses: accesses.to_vec(),
            });
        }
    }

    fn on_abort(&mut self, event: &AbortEvent) {
        if event.executed {
            self.tasks_aborted += 1;
            self.breakdown.aborted += event.cycles;
        }
    }

    fn on_network_message(&mut self, event: &NetworkEvent) {
        self.traffic.record(event.class, event.hops, event.flits);
        self.noc_queue_cycles += event.queue_cycles;
    }

    fn on_spill(&mut self, event: &SpillEvent) {
        self.breakdown.spill += event.cycles;
        if event.direction == SpillDirection::Spilled {
            self.tasks_spilled += event.tasks;
        }
    }

    fn on_core_wait(&mut self, event: &CoreWaitEvent) {
        match event.kind {
            WaitKind::Empty => self.breakdown.empty += event.cycles,
            WaitKind::Stalled => self.breakdown.stall += event.cycles,
        }
    }

    fn on_gvt_update(&mut self, _now: u64) {
        self.gvt_updates += 1;
    }

    fn on_lb_reconfig(&mut self, _now: u64) {
        self.lb_reconfigs += 1;
    }
}

/// The engine's fan-out point: the built-in [`StatsObserver`] plus any
/// attached custom observers, notified in that order.
pub struct ObserverHub {
    stats: StatsObserver,
    extra: Vec<Box<dyn SimObserver>>,
}

impl fmt::Debug for ObserverHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverHub")
            .field("stats", &self.stats)
            .field("extra_observers", &self.extra.len())
            .finish()
    }
}

macro_rules! fan_out {
    ($hub:expr, $method:ident, $event:expr) => {{
        let event = $event;
        $hub.stats.$method(event);
        for observer in &mut $hub.extra {
            observer.$method(event);
        }
    }};
}

impl ObserverHub {
    /// A hub for a machine with `num_tiles` tiles, with only the built-in
    /// statistics observer attached.
    pub(crate) fn new(num_tiles: usize) -> Self {
        ObserverHub { stats: StatsObserver::new(num_tiles), extra: Vec::new() }
    }

    /// Attach a custom observer (notified after the built-in one).
    pub(crate) fn attach(&mut self, observer: Box<dyn SimObserver>) {
        self.extra.push(observer);
    }

    /// Read-only view of the built-in statistics observer.
    pub fn stats(&self) -> &StatsObserver {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut StatsObserver {
        &mut self.stats
    }

    /// Whether anyone attached would see a dequeue event. The built-in
    /// statistics observer ignores dequeues, so the engine skips building
    /// the event entirely (a per-dispatch cost) unless a custom observer is
    /// attached.
    #[inline]
    pub(crate) fn wants_dequeue(&self) -> bool {
        !self.extra.is_empty()
    }

    /// Whether anyone attached would notice a zero-cycle core wait. The
    /// built-in statistics observer only *sums* wait cycles, so a
    /// `cycles == 0` event is invisible to it; the engine emits such events
    /// (a core re-dispatching in the same cycle it went idle) only when a
    /// custom observer is listening.
    #[inline]
    pub(crate) fn wants_zero_cycle_waits(&self) -> bool {
        !self.extra.is_empty()
    }

    #[inline]
    pub(crate) fn dequeue(&mut self, event: &DequeueEvent) {
        fan_out!(self, on_dequeue, event);
    }

    #[inline]
    pub(crate) fn commit(&mut self, event: &CommitEvent<'_>) {
        fan_out!(self, on_commit, event);
    }

    #[inline]
    pub(crate) fn abort(&mut self, event: &AbortEvent) {
        fan_out!(self, on_abort, event);
    }

    /// Whether anyone attached would see a per-link occupancy event. The
    /// built-in statistics come from the link counters directly, so the
    /// per-hop event is only materialised for custom observers.
    #[inline]
    pub(crate) fn wants_link_occupancy(&self) -> bool {
        !self.extra.is_empty()
    }

    #[inline]
    pub(crate) fn network(&mut self, event: &NetworkEvent) {
        fan_out!(self, on_network_message, event);
    }

    #[inline]
    pub(crate) fn link_occupancy(&mut self, event: &LinkOccupancyEvent) {
        fan_out!(self, on_link_occupancy, event);
    }

    #[inline]
    pub(crate) fn spill(&mut self, event: &SpillEvent) {
        fan_out!(self, on_spill, event);
    }

    #[inline]
    pub(crate) fn core_wait(&mut self, event: &CoreWaitEvent) {
        fan_out!(self, on_core_wait, event);
    }

    #[inline]
    pub(crate) fn fault_injected(&mut self, event: &FaultInjectedEvent) {
        fan_out!(self, on_fault_injected, event);
    }

    #[inline]
    pub(crate) fn gvt_update(&mut self, now: u64) {
        self.stats.on_gvt_update(now);
        for observer in &mut self.extra {
            observer.on_gvt_update(now);
        }
    }

    #[inline]
    pub(crate) fn lb_reconfig(&mut self, now: u64) {
        self.stats.on_lb_reconfig(now);
        for observer in &mut self.extra {
            observer.on_lb_reconfig(now);
        }
    }

    pub(crate) fn run_end(&mut self, stats: &RunStats) {
        self.stats.on_run_end(stats);
        for observer in &mut self.extra {
            observer.on_run_end(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_observer_accumulates_from_events() {
        let mut stats = StatsObserver::new(2);
        stats.on_commit(&CommitEvent {
            task: TaskId(0),
            ts: 0,
            hint: Hint::value(1),
            tile: TileId(1),
            bucket: None,
            cycles: 40,
            num_args: 1,
            accesses: None,
        });
        stats.on_abort(&AbortEvent {
            task: TaskId(1),
            ts: 0,
            tile: TileId(0),
            aborter_tile: TileId(1),
            cycles: 25,
            executed: true,
        });
        // Never-executed cascade members do not count as aborted executions.
        stats.on_abort(&AbortEvent {
            task: TaskId(2),
            ts: 0,
            tile: TileId(0),
            aborter_tile: TileId(1),
            cycles: 0,
            executed: false,
        });
        stats.on_network_message(&NetworkEvent {
            class: TrafficClass::Task,
            hops: 3,
            flits: 2,
            queue_cycles: 5,
        });
        stats.on_spill(&SpillEvent {
            tile: TileId(0),
            tasks: 4,
            cycles: 20,
            direction: SpillDirection::Spilled,
        });
        stats.on_spill(&SpillEvent {
            tile: TileId(0),
            tasks: 4,
            cycles: 20,
            direction: SpillDirection::Refilled,
        });
        stats.on_core_wait(&CoreWaitEvent { core: CoreId(0), kind: WaitKind::Empty, cycles: 7 });
        stats.on_gvt_update(100);

        assert_eq!(stats.tasks_committed(), 1);
        assert_eq!(stats.tasks_aborted(), 1);
        assert_eq!(stats.tasks_spilled(), 4);
        assert_eq!(stats.breakdown().committed, 40);
        assert_eq!(stats.breakdown().aborted, 25);
        assert_eq!(stats.breakdown().spill, 40);
        assert_eq!(stats.breakdown().empty, 7);
        assert_eq!(stats.committed_cycles_per_tile(), &[0, 40]);
        assert_eq!(stats.traffic().total(), 6);
        assert_eq!(stats.noc_queue_cycles(), 5);
        let run = stats.take_run_stats("m".into(), "a".into(), 2, 123, None);
        assert_eq!(run.tasks_committed, 1);
        assert_eq!(run.gvt_updates, 1);
        assert_eq!(run.runtime_cycles, 123);
        assert_eq!(run.noc_queue_cycles, 5);
        assert!(run.link_stats.is_none());
    }

    #[test]
    fn profiled_commits_record_access_traces() {
        let mut stats = StatsObserver::new(1);
        let trace = [(0x40u64, true), (0x48u64, false)];
        stats.on_commit(&CommitEvent {
            task: TaskId(0),
            ts: 3,
            hint: Hint::value(9),
            tile: TileId(0),
            bucket: Some(2),
            cycles: 10,
            num_args: 2,
            accesses: Some(&trace),
        });
        let run = stats.take_run_stats("m".into(), "a".into(), 1, 1, None);
        assert_eq!(run.committed_accesses.len(), 1);
        assert_eq!(run.committed_accesses[0].accesses, trace.to_vec());
        assert_eq!(run.committed_accesses[0].num_args, 2);
    }
}
