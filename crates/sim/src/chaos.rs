//! A chaos conformance battery: fault injection must never produce a hang,
//! a panic, or a silently-wrong answer.
//!
//! The [`crate::fault`] module can wedge queues, lose wakes, stall cores and
//! corrupt hints — and the engine's contract under all of that is narrow and
//! checkable: a faulted run must either
//!
//! 1. **complete cleanly** — `validate()` accepts the final memory, the
//!    speculative line table drains, and repeating the identical faulted run
//!    reproduces bit-identical statistics and memory; or
//! 2. **fail with a typed [`SimError`]** — e.g. a lost wake surfaces as
//!    [`SimError::Deadlock`], a livelock as a budget overrun — and the *same*
//!    error reproduces on a repeat run.
//!
//! What it must never do is panic, hang (every battery run carries a
//! cycle budget as a watchdog), or return success with wrong memory.
//!
//! [`check_chaos`] packages that contract as a reusable checker in the style
//! of [`crate::conformance::check_app`]: hand it an app factory, a set of
//! mapper specs and a fault list, and it asserts the contract for every
//! mapper × core-count × fault combination, twice each. The `swarm chaos`
//! subcommand and the workspace `chaos` integration suite are thin wrappers
//! around this function.

use std::panic::{catch_unwind, AssertUnwindSafe};

use swarm_types::{SimError, SystemConfig};

use crate::conformance::MapperSpec;
use crate::fault::{FaultEvent, FaultPlan};
use crate::{RunStats, Sim, SwarmApp};

/// Knobs for [`check_chaos`].
pub struct ChaosOptions {
    /// Core counts to exercise.
    pub core_counts: Vec<u32>,
    /// Builds the machine configuration for a given core count (defaults to
    /// [`SystemConfig::with_cores`]).
    pub config: fn(u32) -> SystemConfig,
    /// Watchdog cycle budget applied to every battery run, so a fault that
    /// would otherwise hang the simulation surfaces as a typed
    /// [`SimError::CycleBudgetExceeded`] instead. Must be positive.
    pub max_cycles: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            core_counts: vec![1, 16],
            config: SystemConfig::with_cores,
            max_cycles: 50_000_000,
        }
    }
}

/// How one faulted run ended (both legal shapes of the chaos contract).
#[derive(Debug, PartialEq)]
pub enum ChaosOutcome {
    /// The run completed, the app's `validate()` accepted the final memory
    /// (the engine checks it internally) and the line table drained.
    Completed {
        /// Statistics of the faulted run.
        stats: Box<RunStats>,
        /// Final memory snapshot, sorted by address (for the determinism
        /// comparison).
        mem: Vec<(u64, u64)>,
    },
    /// The run failed with a typed simulator error.
    Failed(SimError),
}

/// One mapper × core-count × fault combination, with its (repeatable)
/// outcome.
#[derive(Debug)]
pub struct ChaosCombo {
    /// Mapper name.
    pub mapper: String,
    /// Simulated core count.
    pub cores: u32,
    /// The injected fault.
    pub fault: FaultEvent,
    /// What happened, identically on both runs.
    pub outcome: ChaosOutcome,
}

/// What [`check_chaos`] returns on success.
#[derive(Debug)]
pub struct ChaosReport {
    /// One entry per mapper × core-count × fault combination, in check
    /// order.
    pub combos: Vec<ChaosCombo>,
    /// Total simulations executed (combos × 2).
    pub runs: usize,
}

impl ChaosReport {
    /// How many combinations completed cleanly despite the fault.
    pub fn completed(&self) -> usize {
        self.combos.iter().filter(|c| matches!(c.outcome, ChaosOutcome::Completed { .. })).count()
    }

    /// How many combinations failed with a typed error.
    pub fn failed(&self) -> usize {
        self.combos.len() - self.completed()
    }
}

/// Run the chaos battery over `make_app`.
///
/// `make_app` must build an identical application each time it is called,
/// exactly as for [`crate::conformance::check_app`].
///
/// # Errors
///
/// Returns a description of the first contract violation — a panic, a
/// nondeterministic outcome, or a completed run that leaked speculative
/// lines — naming the app, mapper, core count and fault.
pub fn check_chaos(
    make_app: &dyn Fn() -> Box<dyn SwarmApp>,
    mappers: &[MapperSpec<'_>],
    faults: &[FaultEvent],
    opts: &ChaosOptions,
) -> Result<ChaosReport, String> {
    assert!(!mappers.is_empty(), "need at least one mapper");
    assert!(!opts.core_counts.is_empty(), "need at least one core count");
    assert!(!faults.is_empty(), "need at least one fault");
    assert!(opts.max_cycles > 0, "the watchdog budget must be positive");
    let mut combos = Vec::new();
    let mut runs = 0;
    for mapper in mappers {
        for &cores in &opts.core_counts {
            for &fault in faults {
                let plan = FaultPlan::from(fault);
                let first = run_planned(make_app, mapper, cores, &plan, opts)?;
                let second = run_planned(make_app, mapper, cores, &plan, opts)?;
                runs += 2;
                if first != second {
                    return Err(format!(
                        "{} under {} at {cores} cores with fault {fault}: outcome is not \
                         deterministic across identical runs ({} vs {})",
                        app_name(make_app),
                        mapper.name,
                        describe(&first),
                        describe(&second),
                    ));
                }
                combos.push(ChaosCombo {
                    mapper: mapper.name.to_string(),
                    cores,
                    fault,
                    outcome: first,
                });
            }
        }
    }
    Ok(ChaosReport { combos, runs })
}

/// Outcomes of [`check_plan`], one per mapper × core count.
#[derive(Debug)]
pub struct PlanCombo {
    /// Mapper name.
    pub mapper: String,
    /// Simulated core count.
    pub cores: u32,
    /// What happened, identically on both runs.
    pub outcome: ChaosOutcome,
}

/// Assert the chaos contract for one whole [`FaultPlan`] (possibly many
/// events) over every mapper × core count: run each combination twice and
/// require an identical, panic-free, typed-or-validated outcome both times.
/// This is the entry point the fault-plan fuzzer drives with *sampled*
/// plans; [`check_chaos`] sweeps it one curated fault at a time.
///
/// # Errors
///
/// Returns a description of the first contract violation, as for
/// [`check_chaos`].
pub fn check_plan(
    make_app: &dyn Fn() -> Box<dyn SwarmApp>,
    mappers: &[MapperSpec<'_>],
    plan: &FaultPlan,
    opts: &ChaosOptions,
) -> Result<Vec<PlanCombo>, String> {
    assert!(!mappers.is_empty(), "need at least one mapper");
    assert!(!opts.core_counts.is_empty(), "need at least one core count");
    assert!(opts.max_cycles > 0, "the watchdog budget must be positive");
    let mut combos = Vec::new();
    for mapper in mappers {
        for &cores in &opts.core_counts {
            let first = run_planned(make_app, mapper, cores, plan, opts)?;
            let second = run_planned(make_app, mapper, cores, plan, opts)?;
            if first != second {
                return Err(format!(
                    "{} under {} at {cores} cores with plan [{plan}]: outcome is not \
                     deterministic across identical runs ({} vs {})",
                    app_name(make_app),
                    mapper.name,
                    describe(&first),
                    describe(&second),
                ));
            }
            combos.push(PlanCombo { mapper: mapper.name.to_string(), cores, outcome: first });
        }
    }
    Ok(combos)
}

/// One planned simulation under a panic guard and a cycle-budget watchdog.
fn run_planned(
    make_app: &dyn Fn() -> Box<dyn SwarmApp>,
    mapper: &MapperSpec<'_>,
    cores: u32,
    plan: &FaultPlan,
    opts: &ChaosOptions,
) -> Result<ChaosOutcome, String> {
    let mut cfg = (opts.config)(cores);
    if cfg.max_cycles == 0 || cfg.max_cycles > opts.max_cycles {
        cfg.max_cycles = opts.max_cycles;
    }
    let app = make_app();
    let name = app.name().to_string();
    let at = || format!("{name} under {} at {cores} cores with plan [{plan}]", mapper.name);
    let mapper_impl = (mapper.build)(&cfg);
    let plan = plan.clone();
    let guarded = catch_unwind(AssertUnwindSafe(move || {
        let mut engine = Sim::builder()
            .config(cfg)
            .app_boxed(app)
            .mapper(mapper_impl)
            .fault_plan(plan)
            .build()
            .map_err(|e| format!("invalid simulation: {e}"))?;
        match engine.run() {
            Ok(stats) => {
                let leaked = engine.state().line_table.len();
                if leaked != 0 {
                    return Err(format!(
                        "run completed but left {leaked} lines registered in the speculative \
                         line table"
                    ));
                }
                let mem: Vec<(u64, u64)> = engine.state().mem.iter().collect();
                Ok(ChaosOutcome::Completed { stats: Box::new(stats), mem })
            }
            Err(e) => Ok(ChaosOutcome::Failed(e)),
        }
    }));
    match guarded {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(violation)) => Err(format!("{}: {violation}", at())),
        Err(payload) => Err(format!("{}: panicked: {}", at(), panic_message(payload.as_ref()))),
    }
}

/// The app's name, for violation messages (built once, thrown away).
fn app_name(make_app: &dyn Fn() -> Box<dyn SwarmApp>) -> String {
    make_app().name().to_string()
}

/// A one-line rendering of an outcome for violation messages.
fn describe(outcome: &ChaosOutcome) -> String {
    match outcome {
        ChaosOutcome::Completed { stats, .. } => {
            format!("completed in {} cycles", stats.runtime_cycles)
        }
        ChaosOutcome::Failed(e) => format!("failed: {e}"),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{standard_faults, FaultKind};
    use crate::{InitialTask, RoundRobinMapper, TaskCtx, TaskMapper};
    use swarm_types::Hint;

    /// Ordered chain summing 0..n — the well-behaved battery subject.
    struct ChainSum {
        n: u64,
    }

    impl SwarmApp for ChainSum {
        fn name(&self) -> &str {
            "chain-sum"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::value(0), vec![0])]
        }
        fn run_task(&self, _fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
            let i = args[0];
            let acc = ctx.read(0x1000);
            ctx.write(0x1000, acc + i);
            if i + 1 < self.n {
                ctx.enqueue(0, ts + 1, Hint::value(i + 1), vec![i + 1]);
            }
        }
        fn validate(&self, mem: &swarm_mem::SimMemory) -> Result<(), String> {
            let want: u64 = (0..self.n).sum();
            if mem.load(0x1000) == want {
                Ok(())
            } else {
                Err(format!("sum is {}, want {want}", mem.load(0x1000)))
            }
        }
    }

    fn round_robin_spec(build: &dyn Fn(&SystemConfig) -> Box<dyn TaskMapper>) -> MapperSpec<'_> {
        MapperSpec { name: "RoundRobin", build }
    }

    #[test]
    fn standard_faults_all_satisfy_the_chaos_contract() {
        let build = |_: &SystemConfig| -> Box<dyn TaskMapper> { Box::new(RoundRobinMapper::new()) };
        let mappers = [round_robin_spec(&build)];
        let faults = standard_faults(100);
        let opts = ChaosOptions { core_counts: vec![1, 4], ..ChaosOptions::default() };
        let report = check_chaos(&|| Box::new(ChainSum { n: 40 }), &mappers, &faults, &opts)
            .expect("chaos contract must hold");
        assert_eq!(report.combos.len(), 2 * faults.len());
        assert_eq!(report.runs, 4 * faults.len());
        // Benign faults complete; a lost wake must surface as a typed error.
        assert!(report.completed() > 0, "no faulted run completed");
        let lost = report
            .combos
            .iter()
            .find(|c| matches!(c.fault.kind, FaultKind::LostTaskWake { .. }))
            .expect("battery covers the lost-wake fault");
        assert!(
            matches!(lost.outcome, ChaosOutcome::Failed(SimError::Deadlock { .. })),
            "lost wake must be a typed deadlock, got {:?}",
            lost.outcome
        );
    }

    #[test]
    fn a_panicking_app_is_reported_as_a_contract_violation() {
        struct Exploding;
        impl SwarmApp for Exploding {
            fn name(&self) -> &str {
                "exploding"
            }
            fn initial_tasks(&self) -> Vec<InitialTask> {
                vec![InitialTask::new(0, 0, Hint::None, vec![])]
            }
            fn run_task(&self, _f: u16, _t: u64, _a: &[u64], _ctx: &mut TaskCtx<'_>) {
                panic!("deliberate test explosion");
            }
        }
        let build = |_: &SystemConfig| -> Box<dyn TaskMapper> { Box::new(RoundRobinMapper::new()) };
        let mappers = [round_robin_spec(&build)];
        let faults = [FaultEvent { at_cycle: 10, kind: FaultKind::AbortStorm }];
        let opts = ChaosOptions { core_counts: vec![1], ..ChaosOptions::default() };
        let err = check_chaos(&|| Box::new(Exploding), &mappers, &faults, &opts).unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("deliberate test explosion"), "{err}");
        assert!(err.contains("exploding"), "{err}");
    }

    #[test]
    fn the_watchdog_budget_converts_hangs_into_typed_errors() {
        /// Endless self-rescheduling chain: no fault needed to livelock, but
        /// the battery's watchdog must still turn it into a typed outcome.
        struct Endless;
        impl SwarmApp for Endless {
            fn name(&self) -> &str {
                "endless"
            }
            fn initial_tasks(&self) -> Vec<InitialTask> {
                vec![InitialTask::new(0, 0, Hint::None, vec![])]
            }
            fn run_task(&self, _f: u16, ts: u64, _a: &[u64], ctx: &mut TaskCtx<'_>) {
                ctx.write(0x1000, ts);
                ctx.enqueue(0, ts + 1, Hint::None, vec![]);
            }
        }
        let build = |_: &SystemConfig| -> Box<dyn TaskMapper> { Box::new(RoundRobinMapper::new()) };
        let mappers = [round_robin_spec(&build)];
        let faults = [FaultEvent { at_cycle: 50, kind: FaultKind::DuplicateMessage }];
        let opts =
            ChaosOptions { core_counts: vec![1], max_cycles: 20_000, ..ChaosOptions::default() };
        let report = check_chaos(&|| Box::new(Endless), &mappers, &faults, &opts)
            .expect("a budgeted livelock is a legal typed outcome");
        assert!(
            matches!(
                report.combos[0].outcome,
                ChaosOutcome::Failed(SimError::CycleBudgetExceeded { .. })
                    | ChaosOutcome::Failed(SimError::TaskLimitExceeded(_))
            ),
            "expected a budget or task-limit trip, got {:?}",
            report.combos[0].outcome
        );
    }
}
