//! A discrete-event simulator of a Swarm-like tiled speculative architecture.
//!
//! This crate is the *substrate* of the reproduction of "Data-Centric
//! Execution of Speculative Parallel Programs" (MICRO 2016). It models the
//! baseline architecture the paper builds on (Swarm, MICRO 2015): a tiled
//! multicore whose task units queue, dispatch and commit timestamped
//! speculative tasks, with eager versioning, eager conflict detection, abort
//! cascades, task spilling and high-throughput ordered commits via a global
//! virtual time (GVT).
//!
//! The scheduler is pluggable through the [`TaskMapper`] trait; the paper's
//! schedulers (Random, work Stealing, spatial Hints and the hint-based load
//! balancer) are implemented in the companion `spatial-hints` crate.
//!
//! Simulations are described through the fluent, validated [`SimBuilder`]
//! (see [`Sim::builder`]); measurements flow out through the
//! [`SimObserver`] event hooks, with the built-in [`StatsObserver`]
//! producing the [`RunStats`] every figure is built from.
//!
//! # Example: a tiny ordered program
//!
//! ```
//! use swarm_sim::{InitialTask, RoundRobinMapper, Sim, SwarmApp, TaskCtx};
//! use swarm_types::Hint;
//!
//! /// Sums 0..n by chaining one task per value through simulated memory.
//! struct ChainSum {
//!     n: u64,
//! }
//!
//! impl SwarmApp for ChainSum {
//!     fn name(&self) -> &str {
//!         "chain-sum"
//!     }
//!     fn initial_tasks(&self) -> Vec<InitialTask> {
//!         vec![InitialTask::new(0, 0, Hint::value(0), vec![0])]
//!     }
//!     fn run_task(&self, _fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
//!         let i = args[0];
//!         let acc = ctx.read(0x1000);
//!         ctx.write(0x1000, acc + i);
//!         if i + 1 < self.n {
//!             ctx.enqueue(0, ts + 1, Hint::value(i + 1), vec![i + 1]);
//!         }
//!     }
//! }
//!
//! let mut engine = Sim::builder()
//!     .cores(16)
//!     .app(ChainSum { n: 10 })
//!     .mapper(Box::new(RoundRobinMapper::new()))
//!     .build()
//!     .expect("a complete, valid simulation description");
//! let stats = engine.run().unwrap();
//! assert_eq!(stats.tasks_committed, 10);
//! assert_eq!(engine.state().mem.load(0x1000), 45);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod arena;
pub mod bloom;
pub mod builder;
pub mod chaos;
pub mod conformance;
pub mod engine;
pub mod event_queue;
pub mod fault;
pub mod fuzz;
pub mod key_list;
pub mod line_table;
pub mod mapper;
pub mod observer;
pub mod state;
pub mod stats;
pub mod task;

pub use app::{ExecutionOutcome, SwarmApp, TaskCtx};
pub use arena::{TaskArena, TaskBody};
pub use bloom::BloomFilter;
pub use builder::{BuildError, MapperFactory, Sim, SimBuilder};
pub use engine::{Engine, DEFAULT_TASK_LIMIT};
pub use event_queue::{TimingWheel, WHEEL_SLOTS};
pub use fault::{standard_faults, FaultEvent, FaultKind, FaultParseError, FaultPlan};
pub use key_list::KeyList;
pub use line_table::{LineAccessors, LineTable};
pub use mapper::{PinnedMapper, RoundRobinMapper, TaskMapper};
pub use observer::{
    AbortEvent, CommitEvent, CoreWaitEvent, DequeueEvent, FaultInjectedEvent, NetworkEvent,
    ObserverHub, SimObserver, SpillDirection, SpillEvent, StatsObserver, WaitKind,
};
pub use state::{CoreState, SimState, TileState};
pub use stats::{CommittedTaskAccesses, CycleBreakdown, RunStats};
pub use task::{InitialTask, OrderKey, PendingChild, TaskDescriptor, TaskStatus};

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::{Hint, SystemConfig};

    /// An unordered (equal-timestamp) counter increment app: `tasks` tasks
    /// each add 1 to a single shared counter. Exercises conflict detection,
    /// aborts and relaxed equal-timestamp commits.
    struct SharedCounter {
        tasks: u64,
    }

    const COUNTER_ADDR: u64 = 0x8000;

    impl SwarmApp for SharedCounter {
        fn name(&self) -> &str {
            "shared-counter"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            (0..self.tasks).map(|i| InitialTask::new(0, 0, Hint::value(7), vec![i])).collect()
        }
        fn run_task(&self, _fid: u16, _ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
            let v = ctx.read(COUNTER_ADDR);
            ctx.compute(20);
            ctx.write(COUNTER_ADDR, v + 1);
        }
        fn validate(&self, mem: &swarm_mem::SimMemory) -> Result<(), String> {
            let got = mem.load(COUNTER_ADDR);
            if got == self.tasks {
                Ok(())
            } else {
                Err(format!("counter is {got}, expected {}", self.tasks))
            }
        }
    }

    /// Independent tasks each writing their own word; no conflicts possible.
    struct Independent {
        tasks: u64,
    }

    impl SwarmApp for Independent {
        fn name(&self) -> &str {
            "independent"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            (0..self.tasks).map(|i| InitialTask::new(0, i, Hint::value(i), vec![i])).collect()
        }
        fn run_task(&self, _fid: u16, _ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
            let i = args[0];
            ctx.write(0x2_0000 + i * 64, i * 3);
        }
        fn validate(&self, mem: &swarm_mem::SimMemory) -> Result<(), String> {
            for i in 0..self.tasks {
                if mem.load(0x2_0000 + i * 64) != i * 3 {
                    return Err(format!("slot {i} wrong"));
                }
            }
            Ok(())
        }
    }

    /// A parent task that spawns a fan-out of children, each incrementing a
    /// private word; checks parent/child ordering and child enqueue flow.
    struct FanOut {
        children: u64,
    }

    impl SwarmApp for FanOut {
        fn name(&self) -> &str {
            "fan-out"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::None, vec![])]
        }
        fn run_task(&self, fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
            match fid {
                0 => {
                    for i in 0..self.children {
                        ctx.enqueue(1, ts + 1 + i, Hint::value(i), vec![i]);
                    }
                }
                1 => {
                    let i = args[0];
                    ctx.write(0x3_0000 + i * 8, 1);
                }
                _ => unreachable!("unknown task function"),
            }
        }
        fn num_task_fns(&self) -> usize {
            2
        }
        fn validate(&self, mem: &swarm_mem::SimMemory) -> Result<(), String> {
            for i in 0..self.children {
                if mem.load(0x3_0000 + i * 8) != 1 {
                    return Err(format!("child {i} did not run"));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn ordered_chain_produces_serial_result() {
        // The doctest covers the chain; here we check it on 1 core too.
        struct Chain;
        impl SwarmApp for Chain {
            fn name(&self) -> &str {
                "chain"
            }
            fn initial_tasks(&self) -> Vec<InitialTask> {
                vec![InitialTask::new(0, 0, Hint::value(0), vec![0])]
            }
            fn run_task(&self, _fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
                let i = args[0];
                let acc = ctx.read(0x1000);
                ctx.write(0x1000, acc + i);
                if i + 1 < 20 {
                    ctx.enqueue(0, ts + 1, Hint::value(i + 1), vec![i + 1]);
                }
            }
        }
        let mut engine = Sim::builder()
            .config(SystemConfig::single_core())
            .app(Chain)
            .mapper(Box::new(PinnedMapper))
            .build()
            .expect("valid single-core description");
        let stats = engine.run().unwrap();
        assert_eq!(stats.tasks_committed, 20);
        assert_eq!(engine.state().mem.load(0x1000), (0..20u64).sum());
        assert_eq!(stats.tasks_aborted, 0, "a serial chain never aborts");
    }

    #[test]
    fn conflicting_counter_is_serializable() {
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(SharedCounter { tasks: 64 })
            .mapper(Box::new(RoundRobinMapper::new()))
            .build()
            .expect("valid description");
        let stats = engine.run().expect("validation must pass");
        assert_eq!(stats.tasks_committed, 64);
        // With 16 cores hammering one counter there must be speculation waste.
        assert!(stats.tasks_aborted > 0, "expected aborts under contention");
    }

    #[test]
    fn independent_tasks_do_not_abort() {
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(Independent { tasks: 200 })
            .mapper(Box::new(RoundRobinMapper::new()))
            .build()
            .expect("valid description");
        let stats = engine.run().unwrap();
        assert_eq!(stats.tasks_committed, 200);
        assert_eq!(stats.tasks_aborted, 0);
    }

    #[test]
    fn fan_out_children_all_commit() {
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(FanOut { children: 50 })
            .mapper(Box::new(RoundRobinMapper::new()))
            .build()
            .expect("valid description");
        let stats = engine.run().unwrap();
        assert_eq!(stats.tasks_committed, 51);
    }

    #[test]
    fn more_cores_do_not_change_the_result_but_change_runtime() {
        let run = |cores: u32| {
            let mut engine = Sim::builder()
                .cores(cores)
                .app(Independent { tasks: 400 })
                .mapper(Box::new(RoundRobinMapper::new()))
                .build()
                .expect("valid description");
            engine.run().unwrap()
        };
        let one = run(1);
        let sixteen = run(16);
        assert_eq!(one.tasks_committed, sixteen.tasks_committed);
        assert!(
            sixteen.runtime_cycles < one.runtime_cycles,
            "16 cores ({}) should beat 1 core ({})",
            sixteen.runtime_cycles,
            one.runtime_cycles
        );
    }

    #[test]
    fn breakdown_accounts_all_core_time() {
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(SharedCounter { tasks: 32 })
            .mapper(Box::new(RoundRobinMapper::new()))
            .build()
            .expect("valid description");
        let stats = engine.run().unwrap();
        let total = stats.breakdown.total();
        let wall = stats.runtime_cycles * stats.cores as u64;
        // Committed + aborted + stall + empty (+ spill, which is charged on
        // top) should roughly cover runtime × cores. Allow slack for the
        // execute-at-dispatch approximation and spill cycles being additive.
        assert!(total > 0);
        assert!(
            total <= wall + stats.breakdown.spill + stats.runtime_cycles,
            "breakdown {total} exceeds wall-clock budget {wall}"
        );
    }

    #[test]
    fn timestamp_regression_is_reported() {
        struct Regressing;
        impl SwarmApp for Regressing {
            fn name(&self) -> &str {
                "regressing"
            }
            fn initial_tasks(&self) -> Vec<InitialTask> {
                vec![InitialTask::new(0, 10, Hint::None, vec![])]
            }
            fn run_task(&self, fid: u16, _ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
                if fid == 0 {
                    // Children may not travel back in time; the engine turns
                    // the panic-free path (enqueue at finish) into an error.
                    ctx.enqueue(1, 10, Hint::None, vec![]);
                }
            }
        }
        // Enqueueing at the same timestamp is allowed; regression is checked
        // in TaskCtx::enqueue via an assertion. Here we exercise the legal
        // path and make sure nothing errors.
        let mut engine = Sim::builder()
            .config(SystemConfig::single_core())
            .app(Regressing)
            .mapper(Box::new(PinnedMapper))
            .build()
            .expect("valid single-core description");
        assert!(engine.run().is_ok());
    }

    #[test]
    fn profiling_records_committed_accesses() {
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(Independent { tasks: 10 })
            .mapper(Box::new(RoundRobinMapper::new()))
            .profiling(true)
            .build()
            .expect("valid description");
        let stats = engine.run().unwrap();
        assert_eq!(stats.committed_accesses.len(), 10);
        assert!(stats.committed_accesses.iter().all(|a| !a.accesses.is_empty()));
    }

    #[test]
    fn traffic_is_recorded_on_multi_tile_systems() {
        let mut engine = Sim::builder()
            .config(SystemConfig::small())
            .app(Independent { tasks: 100 })
            .mapper(Box::new(RoundRobinMapper::new()))
            .build()
            .expect("valid description");
        let stats = engine.run().unwrap();
        assert!(stats.traffic.total() > 0);
        assert!(stats.gvt_updates > 0);
    }
}
