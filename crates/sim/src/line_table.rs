//! The speculative line-access table: cache line -> uncommitted readers and
//! writers.
//!
//! This table is consulted on every speculative access (conflict detection)
//! and updated on every task registration, abort and commit, so it sits on
//! the simulator's hottest path. It used to be a `FastHashMap<LineAddr,
//! LineAccessors>`; it is now the same flat, linearly probed
//! [`OpenTable`] core the memory system uses, with the
//! non-`Copy` accessor lists parked in a free-listed slab so that removing a
//! line keeps its `Vec` capacities for the next line that lands in the slot
//! (steady-state registration allocates nothing).
//!
//! `tests/properties.rs` in the workspace root cross-checks this structure
//! against a `HashMap` reference model under randomized register/unregister
//! interleavings.

use swarm_mem::{OpenTable, Probe};
use swarm_types::LineAddr;

use crate::task::OrderKey;

/// Readers and writers currently registered for a cache line.
///
/// Entries carry the accessor's full commit-order key `(ts, id)`, not just
/// its id: conflict checks compare keys on every speculative access, and
/// looking the timestamp up in the task arena per entry was a random read
/// into an ever-growing array (a near-guaranteed cache miss) on the hottest
/// loop of the simulator. A task's key never changes, so the copy here can
/// never go stale.
#[derive(Debug, Clone, Default)]
pub struct LineAccessors {
    /// Commit-order keys of uncommitted tasks that read the line.
    pub readers: Vec<OrderKey>,
    /// Commit-order keys of uncommitted tasks that wrote the line.
    pub writers: Vec<OrderKey>,
}

impl LineAccessors {
    /// Whether no task is registered on the line.
    pub fn is_empty(&self) -> bool {
        self.readers.is_empty() && self.writers.is_empty()
    }
}

/// Slot index marking "no slab entry" in the open-addressed index.
const NO_SLOT: u32 = u32::MAX;

/// Open-addressed map from [`LineAddr`] to [`LineAccessors`].
///
/// Line addresses are byte addresses divided by the line size, so no real
/// key ever reaches the `u64::MAX` empty-slot sentinel of the underlying
/// table.
#[derive(Debug)]
pub struct LineTable {
    /// line -> slab slot.
    index: OpenTable<u32>,
    /// Accessor lists; freed slots keep their capacity and are reused.
    slots: Vec<LineAccessors>,
    /// Freed slab slots available for reuse.
    free: Vec<u32>,
    /// Number of lines currently present.
    len: usize,
}

impl LineTable {
    /// Create an empty table.
    pub fn new() -> Self {
        LineTable {
            index: OpenTable::new(64, NO_SLOT),
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of lines with at least one registered accessor entry.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no line is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The accessors of `line`, if present.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&LineAccessors> {
        match self.index.probe(line.0) {
            Probe::Found(pos) => Some(&self.slots[self.index.val_at(pos) as usize]),
            Probe::Vacant(_) => None,
        }
    }

    /// Mutable accessors of `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut LineAccessors> {
        match self.index.probe(line.0) {
            Probe::Found(pos) => Some(&mut self.slots[self.index.val_at(pos) as usize]),
            Probe::Vacant(_) => None,
        }
    }

    /// The accessors of `line`, inserting an empty entry if absent (the
    /// `entry(line).or_default()` of the former `HashMap`).
    #[inline]
    pub fn entry_or_default(&mut self, line: LineAddr) -> &mut LineAccessors {
        let slot = match self.index.probe(line.0) {
            Probe::Found(pos) => self.index.val_at(pos),
            Probe::Vacant(mut pos) => {
                // Grow only when actually inserting (a hit must stay
                // allocation-free), keeping occupancy below half the slots
                // so probe chains stay short.
                if (self.len + 1) * 2 > self.index.slots() {
                    self.index.grow(NO_SLOT);
                    pos = match self.index.probe(line.0) {
                        Probe::Vacant(p) => p,
                        Probe::Found(_) => unreachable!("key cannot appear during growth"),
                    };
                }
                let slot = match self.free.pop() {
                    Some(s) => s,
                    None => {
                        self.slots.push(LineAccessors::default());
                        (self.slots.len() - 1) as u32
                    }
                };
                self.index.occupy(pos, line.0, slot);
                self.len += 1;
                slot
            }
        };
        &mut self.slots[slot as usize]
    }

    /// Remove `line` if present. Its accessor lists are cleared but their
    /// capacity is kept for reuse by the next inserted line.
    pub fn remove(&mut self, line: LineAddr) {
        if let Probe::Found(pos) = self.index.probe(line.0) {
            let slot = self.index.val_at(pos);
            self.index.remove_at(pos);
            let acc = &mut self.slots[slot as usize];
            acc.readers.clear();
            acc.writers.clear();
            self.free.push(slot);
            self.len -= 1;
        }
    }
}

impl Default for LineTable {
    fn default() -> Self {
        LineTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use swarm_types::TaskId;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = LineTable::new();
        assert!(t.is_empty());
        let line = LineAddr(42);
        assert!(t.get(line).is_none());
        t.entry_or_default(line).readers.push((0, TaskId(7)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(line).unwrap().readers, vec![(0, TaskId(7))]);
        t.get_mut(line).unwrap().writers.push((1, TaskId(8)));
        assert_eq!(t.get(line).unwrap().writers, vec![(1, TaskId(8))]);
        t.remove(line);
        assert!(t.get(line).is_none());
        assert!(t.is_empty());
        // Removing an absent line is a no-op.
        t.remove(line);
        assert!(t.is_empty());
    }

    #[test]
    fn freed_slots_are_reused_without_stale_contents() {
        let mut t = LineTable::new();
        t.entry_or_default(LineAddr(1)).readers.push((0, TaskId(1)));
        t.remove(LineAddr(1));
        // The reused slot must come back empty.
        let acc = t.entry_or_default(LineAddr(2));
        assert!(acc.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = LineTable::new();
        for line in 0..500u64 {
            t.entry_or_default(LineAddr(line)).writers.push((line, TaskId(line)));
        }
        assert_eq!(t.len(), 500);
        for line in 0..500u64 {
            assert_eq!(t.get(LineAddr(line)).unwrap().writers, vec![(line, TaskId(line))]);
        }
    }
}
