//! The scheduler interface: where does a new task go, and how is dispatch
//! constrained?
//!
//! The simulator is scheduler-agnostic: it calls into a [`TaskMapper`] when a
//! task is created (spatial mapping), when a tile runs dry (stealing), when a
//! task commits (load profiling) and periodically (load balancing). The
//! paper's four schedulers (Random, Stealing, Hints, LBHints) are implemented
//! in the `spatial-hints` crate; this module only defines the interface plus
//! a trivial round-robin mapper used by the simulator's own unit tests.

use swarm_types::{Hint, TileId};

/// Scheduler hook invoked by the simulator.
///
/// Implementations must be deterministic given their construction parameters
/// (seeded RNGs are fine) so that simulations are exactly reproducible.
pub trait TaskMapper {
    /// Human-readable scheduler name (used in reports).
    fn name(&self) -> &str;

    /// Choose the destination tile for a newly created task.
    ///
    /// `hint` is already resolved (`SAMEHINT` has been replaced by the
    /// parent's hint). `creator_tile` is `None` for initial tasks enqueued
    /// from `main`.
    fn map_task(&mut self, hint: Hint, creator_tile: Option<TileId>, num_tiles: usize) -> TileId;

    /// The load-balancer bucket of a hint, if this mapper profiles buckets.
    fn bucket_of(&self, _hint: Hint) -> Option<u16> {
        None
    }

    /// Whether the tile dispatch logic should avoid co-scheduling two tasks
    /// with the same hashed hint (Section III-B "serializing conflicting
    /// tasks").
    fn serialize_same_hint(&self) -> bool {
        false
    }

    /// Whether out-of-work tiles steal tasks from other tiles.
    fn steals(&self) -> bool {
        false
    }

    /// Pick a victim tile for `thief` to steal from, given the number of
    /// idle (dispatchable) tasks in every tile. Returning `None` means no
    /// profitable victim exists.
    fn steal_victim(&mut self, _thief: TileId, _idle_per_tile: &[usize]) -> Option<TileId> {
        None
    }

    /// Notification that a task mapped to `bucket` committed after running
    /// for `cycles` on `tile` (the LBHints load signal).
    fn on_commit(&mut self, _tile: TileId, _bucket: Option<u16>, _cycles: u64) {}

    /// Periodic load-balancing hook, given the current number of idle tasks
    /// in every tile (the signal used by the inferior idle-count variant of
    /// §VI-A). Returns `true` if the hint-to-tile mapping changed (counted as
    /// a reconfiguration in the run statistics).
    fn on_lb_epoch(&mut self, _now: u64, _idle_per_tile: &[usize]) -> bool {
        false
    }
}

/// A trivial mapper that assigns tasks to tiles round-robin, ignoring hints.
/// Only used by unit tests inside this crate; the paper's schedulers live in
/// the `spatial-hints` crate.
#[derive(Debug, Default)]
pub struct RoundRobinMapper {
    next: u32,
}

impl RoundRobinMapper {
    /// Create a round-robin mapper starting at tile 0.
    pub fn new() -> Self {
        RoundRobinMapper { next: 0 }
    }
}

impl TaskMapper for RoundRobinMapper {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn map_task(&mut self, _hint: Hint, _creator: Option<TileId>, num_tiles: usize) -> TileId {
        let tile = TileId(self.next % num_tiles as u32);
        self.next = self.next.wrapping_add(1);
        tile
    }
}

/// A mapper that sends every task to tile 0; useful for single-tile tests.
#[derive(Debug, Default)]
pub struct PinnedMapper;

impl TaskMapper for PinnedMapper {
    fn name(&self) -> &str {
        "pinned"
    }

    fn map_task(&mut self, _hint: Hint, _creator: Option<TileId>, _num_tiles: usize) -> TileId {
        TileId(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_over_tiles() {
        let mut m = RoundRobinMapper::new();
        let tiles: Vec<u32> = (0..8).map(|_| m.map_task(Hint::None, None, 4).0).collect();
        assert_eq!(tiles, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn default_hooks_are_inert() {
        let mut m = RoundRobinMapper::new();
        assert!(!m.serialize_same_hint());
        assert!(!m.steals());
        assert_eq!(m.bucket_of(Hint::value(3)), None);
        assert_eq!(m.steal_victim(TileId(0), &[1, 2]), None);
        assert!(!m.on_lb_epoch(0, &[1, 2]));
    }

    #[test]
    fn pinned_mapper_always_tile_zero() {
        let mut m = PinnedMapper;
        for _ in 0..5 {
            assert_eq!(m.map_task(Hint::value(99), Some(TileId(3)), 16), TileId(0));
        }
        assert_eq!(m.name(), "pinned");
    }
}
