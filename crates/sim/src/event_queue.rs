//! A hierarchical timing-wheel event queue for the engine hot loop.
//!
//! The engine used to keep its pending events in a
//! `BinaryHeap<Reverse<(cycle, seq, Event)>>`: every push and pop paid a
//! `log n` chain of 24-byte tuple comparisons, and the tie-breaking `seq`
//! had to be materialised in every element. [`TimingWheel`] replaces it
//! with a calendar queue keyed by cycle:
//!
//! * events within [`WHEEL_SLOTS`] cycles of the current cursor live in a
//!   ring of per-cycle slots (one `Vec` each, capacity retained across
//!   reuse, occupancy tracked by a bitmap so the next non-empty slot is a
//!   couple of `trailing_zeros` scans away);
//! * events further out (in this simulator essentially only the
//!   load-balancer epoch) wait in a `BTreeMap` overflow keyed by cycle and
//!   migrate into the ring when the cursor's window reaches them.
//!
//! # Ordering contract
//!
//! [`TimingWheel::pop`] returns events in ascending `(cycle, insertion
//! order)`: earlier cycles first, and events scheduled for the same cycle
//! in exactly the order [`TimingWheel::schedule`] was called — the same
//! total order the seed's `(cycle, seq)` heap produced, with the sequence
//! number now implied by slot append order instead of stored per event.
//! Scheduling in the past (`at` below the cycle of the last popped event)
//! is a contract violation and panics.
//!
//! `tests/properties.rs` in the workspace root cross-checks this structure
//! against the seed `BinaryHeap` implementation under randomized
//! schedule/pop interleavings, including same-cycle FIFO order and
//! far-future (overflow + ring wraparound) schedules.

use std::collections::BTreeMap;

/// Ring size in cycles (and slots: one slot per cycle). Finish and GVT
/// events are scheduled at most a few hundred cycles out, so in steady
/// state everything but the load-balancer epoch stays in the ring.
pub const WHEEL_SLOTS: usize = 1024;
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const WORDS: usize = WHEEL_SLOTS / 64;

/// One ring slot: the events of a single cycle, in schedule order.
/// `head` marks how many have already been popped; the `Vec` keeps its
/// capacity when the slot is drained and reused for a later cycle.
#[derive(Debug, Clone)]
struct Slot<T> {
    head: usize,
    items: Vec<T>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot { head: 0, items: Vec::new() }
    }
}

/// A calendar-queue / timing-wheel priority queue of `(cycle, T)` events.
///
/// See the module docs for the ordering contract and the ring/overflow
/// split. `T` is `Copy` because the engine's events are a tiny enum; the
/// queue never clones anything larger than that.
#[derive(Debug)]
pub struct TimingWheel<T: Copy> {
    slots: Vec<Slot<T>>,
    /// Occupancy bitmap over `slots` (bit i == slot i has unpopped items).
    occupied: [u64; WORDS],
    /// Cycle of the most recent pop; every queued event is at or after it.
    cursor: u64,
    /// Events at cycles `>= cursor + WHEEL_SLOTS`, in schedule order per
    /// cycle; migrated into the ring as the cursor window reaches them.
    overflow: BTreeMap<u64, Vec<T>>,
    /// Spent overflow buffers, recycled by [`TimingWheel::schedule`] so a
    /// steady drip of far-future events (the load-balancer epoch
    /// rescheduling itself forever) does not allocate one `Vec` per event.
    /// Bounded: the overflow population is tiny, so a few buffers suffice.
    free: Vec<Vec<T>>,
    len: usize,
}

/// Retained spent-overflow buffers; more simultaneous overflow cycles than
/// this simply fall back to allocating (and the excess buffer is dropped).
const FREE_POOL: usize = 32;

impl<T: Copy> TimingWheel<T> {
    /// An empty queue with its cursor at cycle 0.
    pub fn new() -> Self {
        Self::with_slot_capacity(0)
    }

    /// An empty queue whose ring slots are pre-sized for `capacity` events
    /// each. Sizing for the worst same-cycle burst the caller can produce
    /// (for the engine: every core waking at once) keeps the steady-state
    /// hot loop entirely allocation-free — otherwise slot `Vec`s keep
    /// ratcheting their capacities as event bursts rotate through ring
    /// positions. Pushes beyond the pre-size still grow normally.
    pub fn with_slot_capacity(capacity: usize) -> Self {
        TimingWheel {
            slots: (0..WHEEL_SLOTS)
                .map(|_| Slot { head: 0, items: Vec::with_capacity(capacity) })
                .collect(),
            occupied: [0; WORDS],
            cursor: 0,
            overflow: BTreeMap::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `item` at cycle `at`.
    ///
    /// Events at equal cycles are popped in schedule order (FIFO), so the
    /// caller needs no tie-breaking key of its own.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past, i.e. below the cycle of the most
    /// recently popped event.
    #[inline]
    pub fn schedule(&mut self, at: u64, item: T) {
        assert!(at >= self.cursor, "event scheduled in the past ({at} < {})", self.cursor);
        if at - self.cursor < WHEEL_SLOTS as u64 {
            let idx = (at & SLOT_MASK) as usize;
            self.slots[idx].items.push(item);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        } else {
            use std::collections::btree_map::Entry;
            match self.overflow.entry(at) {
                Entry::Occupied(e) => e.into_mut().push(item),
                Entry::Vacant(v) => {
                    let mut buf = self.free.pop().unwrap_or_default();
                    buf.push(item);
                    v.insert(buf);
                }
            }
        }
        self.len += 1;
    }

    /// Remove and return the earliest event as `(cycle, item)`; ties are
    /// broken by schedule order. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        let at = match self.next_ring_cycle() {
            Some(at) => at,
            // Ring empty: jump to the earliest overflow cycle.
            None => *self.overflow.keys().next().expect("len > 0 with an empty ring"),
        };
        if at != self.cursor {
            self.cursor = at;
            self.migrate_overflow();
        }
        let idx = (at & SLOT_MASK) as usize;
        let slot = &mut self.slots[idx];
        let item = slot.items[slot.head];
        slot.head += 1;
        if slot.head == slot.items.len() {
            slot.items.clear();
            slot.head = 0;
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.len -= 1;
        Some((at, item))
    }

    /// Cycle of the earliest ring event at or after the cursor, if any.
    fn next_ring_cycle(&self) -> Option<u64> {
        let start = (self.cursor & SLOT_MASK) as usize;
        let mut word = start / 64;
        // Mask off slots before the cursor in its own word; they belong to
        // the far end of the window and are found on the wrapped pass.
        let mut bits = self.occupied[word] & (u64::MAX << (start % 64));
        for _ in 0..=WORDS {
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) as u64 & SLOT_MASK;
                return Some(self.cursor + dist);
            }
            word = (word + 1) % WORDS;
            bits = self.occupied[word];
        }
        None
    }

    /// Move every overflow cycle now inside the cursor's window into the
    /// ring. Runs on cursor advance, before any same-cycle `schedule`
    /// call, so the target slots are empty and FIFO order is preserved
    /// (overflow entries always predate ring entries of the same cycle).
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + WHEEL_SLOTS as u64;
        while let Some((&at, _)) = self.overflow.iter().next() {
            if at >= horizon {
                break;
            }
            let mut items = self.overflow.remove(&at).expect("first key present");
            let idx = (at & SLOT_MASK) as usize;
            let slot = &mut self.slots[idx];
            debug_assert!(slot.items.is_empty(), "migration target slot must be empty");
            if slot.items.capacity() >= items.len() {
                // Keep the slot's retained capacity and recycle the spent
                // overflow buffer for the next far-future schedule.
                slot.items.extend_from_slice(&items);
                items.clear();
                if self.free.len() < FREE_POOL {
                    self.free.push(items);
                }
            } else {
                // The slot takes ownership of the bigger buffer; its old
                // (empty) one goes back to the pool instead of the floor.
                let old = std::mem::replace(&mut slot.items, items);
                if self.free.len() < FREE_POOL {
                    self.free.push(old);
                }
            }
            slot.head = 0;
            self.occupied[idx / 64] |= 1 << (idx % 64);
        }
    }
}

impl<T: Copy> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_fifo_order() {
        let mut q = TimingWheel::new();
        q.schedule(5, 'a');
        q.schedule(3, 'b');
        q.schedule(5, 'c');
        q.schedule(3, 'd');
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((3, 'b')));
        assert_eq!(q.pop(), Some((3, 'd')));
        assert_eq!(q.pop(), Some((5, 'a')));
        assert_eq!(q.pop(), Some((5, 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_schedules_during_drain_stay_fifo() {
        let mut q = TimingWheel::new();
        q.schedule(7, 1);
        q.schedule(7, 2);
        assert_eq!(q.pop(), Some((7, 1)));
        // Scheduling at the cursor cycle while its slot drains appends
        // after the remaining events of that cycle.
        q.schedule(7, 3);
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((7, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = TimingWheel::new();
        let far = 10 * WHEEL_SLOTS as u64 + 17;
        q.schedule(far, 'x');
        q.schedule(2, 'n');
        q.schedule(far, 'y');
        assert_eq!(q.pop(), Some((2, 'n')));
        assert_eq!(q.pop(), Some((far, 'x')));
        assert_eq!(q.pop(), Some((far, 'y')));
        assert_eq!(q.pop(), None);
        // After the jump, near scheduling still works (ring wrapped).
        q.schedule(far + WHEEL_SLOTS as u64 - 1, 'z');
        assert_eq!(q.pop(), Some((far + WHEEL_SLOTS as u64 - 1, 'z')));
    }

    #[test]
    fn overflow_entries_precede_ring_entries_of_same_cycle() {
        let mut q = TimingWheel::new();
        let t = WHEEL_SLOTS as u64 + 50;
        q.schedule(t, 1); // beyond horizon: overflow
        q.schedule(60, 0);
        assert_eq!(q.pop(), Some((60, 0)));
        // Cursor advanced to 60; t is now inside the window, so this lands
        // in the ring, after the migrated overflow entry.
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_before_the_cursor_panics() {
        let mut q = TimingWheel::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(9, ());
    }
}
