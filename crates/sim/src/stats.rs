//! Execution statistics: the cycle and traffic breakdowns reported by the
//! paper's figures, plus bookkeeping counters used by tests and the harness.

use swarm_noc::TrafficStats;
use swarm_types::Hint;

/// Aggregate core-cycle breakdown (the stacked bars of Fig. 2b / Fig. 5a /
/// Fig. 8a / Fig. 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles spent running tasks that ultimately committed.
    pub committed: u64,
    /// Cycles spent running task executions that were later aborted.
    pub aborted: u64,
    /// Cycles spent spilling tasks from (and refilling them into) the
    /// hardware task queues.
    pub spill: u64,
    /// Cycles cores spent stalled on a full commit queue.
    pub stall: u64,
    /// Cycles cores spent idle because no task was available to dispatch.
    pub empty: u64,
}

impl CycleBreakdown {
    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.committed + self.aborted + self.spill + self.stall + self.empty
    }

    /// Fraction of the total in each category, in the figure's stacking
    /// order `[committed, aborted, spill, stall, empty]`.
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        if t == 0 {
            return [0.0; 5];
        }
        [
            self.committed as f64 / t as f64,
            self.aborted as f64 / t as f64,
            self.spill as f64 / t as f64,
            self.stall as f64 / t as f64,
            self.empty as f64 / t as f64,
        ]
    }
}

/// One committed task's accesses, for the architecture-independent access
/// classification of Fig. 3 / Fig. 6. Collected only when profiling is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTaskAccesses {
    /// The task's (resolved) hint.
    pub hint: Hint,
    /// Number of task arguments (each counts as one argument access).
    pub num_args: usize,
    /// Word-granular accesses: (byte address, is_write).
    pub accesses: Vec<(u64, bool)>,
}

/// Result of one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Scheduler used.
    pub scheduler: String,
    /// Application simulated.
    pub app: String,
    /// Number of cores simulated.
    pub cores: usize,
    /// Total runtime in cycles (time until the last task committed).
    pub runtime_cycles: u64,
    /// Aggregate core-cycle breakdown.
    pub breakdown: CycleBreakdown,
    /// NoC traffic by class.
    pub traffic: TrafficStats,
    /// Number of committed tasks.
    pub tasks_committed: u64,
    /// Number of aborted task executions.
    pub tasks_aborted: u64,
    /// Number of tasks spilled to memory.
    pub tasks_spilled: u64,
    /// Number of GVT updates performed.
    pub gvt_updates: u64,
    /// Number of load-balancer reconfigurations performed.
    pub lb_reconfigs: u64,
    /// Total cycles messages spent queued in the NoC (always zero under
    /// [`swarm_types::NocModel::Analytic`]).
    pub noc_queue_cycles: u64,
    /// Committed cycles per tile (the load-balance signal of Section VI).
    pub committed_cycles_per_tile: Vec<u64>,
    /// Per-committed-task access traces (only when profiling was enabled).
    pub committed_accesses: Vec<CommittedTaskAccesses>,
    /// Per-link contention counters (`Some` only under
    /// [`swarm_types::NocModel::Contention`]).
    pub link_stats: Option<swarm_noc::LinkStats>,
}

impl RunStats {
    /// Abort ratio: aborted executions per committed task.
    pub fn abort_ratio(&self) -> f64 {
        if self.tasks_committed == 0 {
            0.0
        } else {
            self.tasks_aborted as f64 / self.tasks_committed as f64
        }
    }

    /// Coefficient of variation of per-tile committed cycles (a measure of
    /// load imbalance; 0 means perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let n = self.committed_cycles_per_tile.len();
        if n <= 1 {
            return 0.0;
        }
        let mean = self.committed_cycles_per_tile.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .committed_cycles_per_tile
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    /// Speedup of this run relative to a baseline run (typically 1 core).
    ///
    /// # Panics
    ///
    /// Panics if this run's runtime is zero.
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        assert!(self.runtime_cycles > 0, "runtime must be positive");
        baseline.runtime_cycles as f64 / self.runtime_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fractions() {
        let b = CycleBreakdown { committed: 50, aborted: 25, spill: 5, stall: 10, empty: 10 };
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = CycleBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.fractions(), [0.0; 5]);
    }

    #[test]
    fn abort_ratio_handles_zero_commits() {
        let s = RunStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
    }

    #[test]
    fn load_imbalance_zero_for_balanced_tiles() {
        let mut s =
            RunStats { committed_cycles_per_tile: vec![100, 100, 100, 100], ..Default::default() };
        assert!(s.load_imbalance().abs() < 1e-12);
        s.committed_cycles_per_tile = vec![0, 0, 200, 200];
        assert!(s.load_imbalance() > 0.5);
    }

    #[test]
    fn speedup_is_ratio_of_runtimes() {
        let base = RunStats { runtime_cycles: 1000, ..Default::default() };
        let fast = RunStats { runtime_cycles: 250, ..Default::default() };
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
    }
}
