//! Bloom-filter signatures for conflict detection (LogTM-SE style).
//!
//! Swarm tracks each task's read and write sets in per-task Bloom filters
//! (2 Kbit, 8 hash functions in Table II). The simulator keeps exact sets for
//! architectural correctness, and uses these signatures to (a) model the
//! false-positive conflicts a real signature would produce (optional) and
//! (b) charge conflict-check costs.

use swarm_types::hashing::HashFamily;
use swarm_types::LineAddr;

/// A fixed-size Bloom filter over cache-line addresses.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    hashes: HashFamily,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter with `num_bits` bits and `num_hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` or `num_hashes` is zero.
    pub fn new(num_bits: usize, num_hashes: usize) -> Self {
        assert!(num_bits > 0, "Bloom filter must have at least one bit");
        assert!(num_hashes > 0, "Bloom filter must have at least one hash");
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            hashes: HashFamily::new(num_hashes),
            inserted: 0,
        }
    }

    /// Insert a line into the signature.
    pub fn insert(&mut self, line: LineAddr) {
        for i in 0..self.hashes.len() {
            let bit = self.hashes.hash(i, line.0, self.num_bits);
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether the signature may contain `line` (false positives possible,
    /// false negatives impossible).
    pub fn maybe_contains(&self, line: LineAddr) -> bool {
        (0..self.hashes.len()).all(|i| {
            let bit = self.hashes.hash(i, line.0, self.num_bits);
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Clear the signature.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Number of insertions since the last clear.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Number of bits set (for occupancy diagnostics).
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_lines_are_found() {
        let mut f = BloomFilter::new(2048, 8);
        for i in 0..100u64 {
            f.insert(LineAddr(i * 17));
        }
        for i in 0..100u64 {
            assert!(f.maybe_contains(LineAddr(i * 17)));
        }
        assert_eq!(f.inserted(), 100);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(2048, 8);
        for i in 0..100u64 {
            assert!(!f.maybe_contains(LineAddr(i)));
        }
        assert_eq!(f.popcount(), 0);
    }

    #[test]
    fn false_positive_rate_is_low_at_paper_sizing() {
        // The paper's tasks are short (tens of accesses); at 2 Kbit / 8
        // hashes the false-positive rate for ~32 inserted lines is tiny.
        let mut f = BloomFilter::new(2048, 8);
        for i in 0..32u64 {
            f.insert(LineAddr(1_000_000 + i));
        }
        let false_positives = (0..10_000u64).filter(|&i| f.maybe_contains(LineAddr(i))).count();
        assert!(false_positives < 20, "too many false positives: {false_positives}");
    }

    #[test]
    fn clear_resets_the_signature() {
        let mut f = BloomFilter::new(256, 4);
        f.insert(LineAddr(3));
        assert!(f.maybe_contains(LineAddr(3)));
        f.clear();
        assert!(!f.maybe_contains(LineAddr(3)));
        assert_eq!(f.inserted(), 0);
    }

    #[test]
    fn small_filter_saturates_and_reports_positives() {
        let mut f = BloomFilter::new(8, 2);
        for i in 0..64u64 {
            f.insert(LineAddr(i));
        }
        // A saturated signature reports (false) positives for unseen lines.
        assert!(f.maybe_contains(LineAddr(1_000_000)));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let _ = BloomFilter::new(0, 1);
    }
}
