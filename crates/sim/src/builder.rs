//! The validated, fluent way to describe and construct a simulation.
//!
//! Every simulation in the workspace — figure binaries, conformance checks,
//! examples, tests — is assembled through [`SimBuilder`] rather than by
//! hand-wiring [`Engine::new`]: the builder checks the description *before*
//! any state is allocated and reports problems as a typed [`BuildError`]
//! instead of a panic deep inside the engine.
//!
//! The builder itself only knows the simulator-level vocabulary (an
//! application, a task mapper, a machine). Higher layers plug in through
//! two seams:
//!
//! * [`MapperFactory`] — anything that can produce a [`TaskMapper`] for a
//!   given machine configuration. The `spatial-hints` crate implements it
//!   for its `Scheduler` enum, so `.scheduler(Scheduler::Hints)` works
//!   without this crate depending on the scheduler implementations.
//!   Closures `Fn(&SystemConfig) -> Box<dyn TaskMapper>` also qualify.
//! * [`SimObserver`] — custom metrics attach with
//!   [`SimBuilder::observer`] and see the same event stream the built-in
//!   statistics observer consumes.
//!
//! # Example
//!
//! ```
//! use swarm_sim::{RoundRobinMapper, Sim};
//! # use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
//! # use swarm_types::Hint;
//! # struct ChainSum { n: u64 }
//! # impl SwarmApp for ChainSum {
//! #     fn name(&self) -> &str { "chain-sum" }
//! #     fn initial_tasks(&self) -> Vec<InitialTask> {
//! #         vec![InitialTask::new(0, 0, Hint::value(0), vec![0])]
//! #     }
//! #     fn run_task(&self, _fid: u16, ts: u64, args: &[u64], ctx: &mut TaskCtx<'_>) {
//! #         let i = args[0];
//! #         let acc = ctx.read(0x1000);
//! #         ctx.write(0x1000, acc + i);
//! #         if i + 1 < self.n {
//! #             ctx.enqueue(0, ts + 1, Hint::value(i + 1), vec![i + 1]);
//! #         }
//! #     }
//! # }
//!
//! let mut engine = Sim::builder()
//!     .cores(16)
//!     .app(ChainSum { n: 10 })
//!     .mapper(Box::new(RoundRobinMapper::new()))
//!     .build()
//!     .expect("a complete, valid simulation description");
//! let stats = engine.run().unwrap();
//! assert_eq!(stats.tasks_committed, 10);
//! ```

use std::fmt;

use swarm_types::SystemConfig;

use crate::app::SwarmApp;
use crate::engine::Engine;
use crate::fault::FaultPlan;
use crate::mapper::TaskMapper;
use crate::observer::SimObserver;

/// Namespace for [`Sim::builder`], the entry point of the builder API.
pub struct Sim;

impl Sim {
    /// Start describing a simulation.
    pub fn builder() -> SimBuilder {
        SimBuilder::default()
    }
}

/// Anything that can instantiate a [`TaskMapper`] for a machine
/// configuration.
///
/// This is the seam that lets scheduler *catalogues* living above this crate
/// (like `spatial_hints::Scheduler`) plug into [`SimBuilder::scheduler`]:
/// the mapper is built only once the builder has settled the final
/// [`SystemConfig`], so seeded mappers see the right seed and
/// machine shape. Closures of type `Fn(&SystemConfig) -> Box<dyn TaskMapper>`
/// implement it automatically.
pub trait MapperFactory {
    /// Build a fresh mapper for `cfg`.
    fn build_mapper(&self, cfg: &SystemConfig) -> Box<dyn TaskMapper>;
}

impl<F> MapperFactory for F
where
    F: Fn(&SystemConfig) -> Box<dyn TaskMapper>,
{
    fn build_mapper(&self, cfg: &SystemConfig) -> Box<dyn TaskMapper> {
        self(cfg)
    }
}

/// What [`SimBuilder::build`] rejects, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No application was supplied ([`SimBuilder::app`] /
    /// [`SimBuilder::app_boxed`]).
    MissingApp,
    /// No scheduler was supplied ([`SimBuilder::scheduler`] /
    /// [`SimBuilder::mapper`]).
    MissingScheduler,
    /// Both [`SimBuilder::cores`] and [`SimBuilder::config`] were called;
    /// the machine must be described exactly one way.
    AmbiguousMachine,
    /// The system configuration failed [`SystemConfig::validate`].
    InvalidConfig(String),
    /// The commit queue must hold more entries than the tile has cores, or
    /// dispatches deadlock waiting for commit-queue slots.
    CommitQueueTooSmall {
        /// Configured commit-queue entries per tile.
        commit_queue: usize,
        /// Cores per tile in the same configuration.
        cores_per_tile: usize,
    },
    /// A task limit of zero would reject every program
    /// ([`SimBuilder::task_limit`]).
    ZeroTaskLimit,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingApp => write!(f, "no application supplied (call .app(...))"),
            BuildError::MissingScheduler => {
                write!(f, "no scheduler supplied (call .scheduler(...) or .mapper(...))")
            }
            BuildError::AmbiguousMachine => {
                write!(f, "both .cores(...) and .config(...) were given; pick one")
            }
            BuildError::InvalidConfig(msg) => write!(f, "invalid system configuration: {msg}"),
            BuildError::CommitQueueTooSmall { commit_queue, cores_per_tile } => write!(
                f,
                "commit queue ({commit_queue} entries/tile) must be larger than the number of \
                 cores per tile ({cores_per_tile})"
            ),
            BuildError::ZeroTaskLimit => write!(f, "the task limit must be at least 1"),
        }
    }
}

impl std::error::Error for BuildError {}

enum SchedulerSource {
    Built(Box<dyn TaskMapper>),
    Factory(Box<dyn MapperFactory>),
}

/// A fluent, validated description of one simulation.
///
/// Obtain one with [`Sim::builder`], describe the run, then call
/// [`SimBuilder::build`] to get a ready [`Engine`]. See the
/// [module docs](self) for an example.
pub struct SimBuilder {
    cores: Option<u32>,
    config: Option<SystemConfig>,
    app: Option<Box<dyn SwarmApp>>,
    scheduler: Option<SchedulerSource>,
    observers: Vec<Box<dyn SimObserver>>,
    profiling: bool,
    validation: bool,
    task_limit: Option<u64>,
    fault_plan: Option<FaultPlan>,
}

impl SimBuilder {
    /// The application to simulate.
    pub fn app(mut self, app: impl SwarmApp + 'static) -> Self {
        self.app = Some(Box::new(app));
        self
    }

    /// The application to simulate, already boxed (what the workload
    /// catalogues hand out).
    pub fn app_boxed(mut self, app: Box<dyn SwarmApp>) -> Self {
        self.app = Some(app);
        self
    }

    /// The scheduler, as a [`MapperFactory`] invoked with the final machine
    /// configuration (e.g. `spatial_hints::Scheduler::Hints`, or a closure
    /// returning a boxed [`TaskMapper`]).
    pub fn scheduler(mut self, factory: impl MapperFactory + 'static) -> Self {
        self.scheduler = Some(SchedulerSource::Factory(Box::new(factory)));
        self
    }

    /// The scheduler, as an already-built task mapper (for mappers with no
    /// dependence on the machine configuration).
    pub fn mapper(mut self, mapper: Box<dyn TaskMapper>) -> Self {
        self.scheduler = Some(SchedulerSource::Built(mapper));
        self
    }

    /// Simulate a [`SystemConfig::with_cores`] machine of `n` cores.
    /// Mutually exclusive with [`SimBuilder::config`].
    pub fn cores(mut self, n: u32) -> Self {
        self.cores = Some(n);
        self
    }

    /// Simulate exactly `cfg`. Mutually exclusive with
    /// [`SimBuilder::cores`].
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Collect per-committed-task access traces (Fig. 3 / Fig. 6 need
    /// them). Off by default: traces are large.
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Whether to check the final memory state against the application's
    /// serial reference when the run completes (on by default; tests that
    /// deliberately corrupt state turn it off).
    pub fn validation(mut self, enabled: bool) -> Self {
        self.validation = enabled;
        self
    }

    /// Override the executed-task safety limit
    /// ([`crate::DEFAULT_TASK_LIMIT`]).
    pub fn task_limit(mut self, limit: u64) -> Self {
        self.task_limit = Some(limit);
        self
    }

    /// Attach a custom observer to the simulation's event stream (see
    /// [`crate::observer`]). May be called multiple times; observers are
    /// notified in attach order, after the built-in statistics observer.
    pub fn observer(mut self, observer: impl SimObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Inject a deterministic [`FaultPlan`] (see [`crate::fault`]): each
    /// event fires at its exact cycle, before any same-cycle engine work.
    /// An empty plan is equivalent to not calling this at all.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validate the description and construct the [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] the description violates; nothing is
    /// allocated in that case.
    pub fn build(self) -> Result<Engine, BuildError> {
        let app = self.app.ok_or(BuildError::MissingApp)?;
        let scheduler = self.scheduler.ok_or(BuildError::MissingScheduler)?;
        let cfg = match (self.cores, self.config) {
            (Some(_), Some(_)) => return Err(BuildError::AmbiguousMachine),
            (Some(0), None) => {
                return Err(BuildError::InvalidConfig("core count must be positive".into()))
            }
            (Some(n), None) => SystemConfig::with_cores(n),
            (None, Some(cfg)) => cfg,
            (None, None) => SystemConfig::small(),
        };
        cfg.validate().map_err(BuildError::InvalidConfig)?;
        if cfg.commit_queue_per_tile() <= cfg.cores_per_tile as usize {
            return Err(BuildError::CommitQueueTooSmall {
                commit_queue: cfg.commit_queue_per_tile(),
                cores_per_tile: cfg.cores_per_tile as usize,
            });
        }
        if self.task_limit == Some(0) {
            return Err(BuildError::ZeroTaskLimit);
        }
        let mapper = match scheduler {
            SchedulerSource::Built(mapper) => mapper,
            SchedulerSource::Factory(factory) => factory.build_mapper(&cfg),
        };
        let mut engine = Engine::new(cfg, app, mapper);
        if self.profiling {
            engine.enable_profiling();
        }
        if !self.validation {
            engine.disable_validation();
        }
        if let Some(limit) = self.task_limit {
            engine.set_task_limit(limit);
        }
        if let Some(plan) = self.fault_plan {
            engine.set_fault_plan(plan);
        }
        for observer in self.observers {
            engine.add_observer(observer);
        }
        Ok(engine)
    }
}

impl fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("cores", &self.cores)
            .field("config", &self.config.as_ref().map(|c| c.num_cores()))
            .field("app", &self.app.as_ref().map(|a| a.name().to_string()))
            .field("has_scheduler", &self.scheduler.is_some())
            .field("observers", &self.observers.len())
            .field("profiling", &self.profiling)
            .field("validation", &self.validation)
            .field("task_limit", &self.task_limit)
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            cores: None,
            config: None,
            app: None,
            scheduler: None,
            observers: Vec::new(),
            profiling: false,
            validation: true,
            task_limit: None,
            fault_plan: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::RoundRobinMapper;
    use crate::task::InitialTask;
    use crate::TaskCtx;
    use swarm_types::Hint;

    struct OneTask;
    impl SwarmApp for OneTask {
        fn name(&self) -> &str {
            "one-task"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::None, vec![])]
        }
        fn run_task(&self, _fid: u16, _ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
            ctx.write(0x40, 7);
        }
    }

    fn round_robin() -> Box<dyn TaskMapper> {
        Box::new(RoundRobinMapper::new())
    }

    #[test]
    fn a_complete_description_builds_and_runs() {
        let mut engine =
            Sim::builder().cores(4).app(OneTask).mapper(round_robin()).build().unwrap();
        let stats = engine.run().unwrap();
        assert_eq!(stats.tasks_committed, 1);
        assert_eq!(stats.cores, 4);
        assert_eq!(engine.state().mem.load(0x40), 7);
    }

    #[test]
    fn defaults_to_the_small_machine() {
        let mut engine = Sim::builder().app(OneTask).mapper(round_robin()).build().unwrap();
        assert_eq!(engine.run().unwrap().cores, SystemConfig::small().num_cores());
    }

    #[test]
    fn closures_are_mapper_factories() {
        let mut engine = Sim::builder()
            .cores(4)
            .app(OneTask)
            .scheduler(|_cfg: &SystemConfig| -> Box<dyn TaskMapper> {
                Box::new(RoundRobinMapper::new())
            })
            .build()
            .unwrap();
        assert_eq!(engine.run().unwrap().tasks_committed, 1);
    }

    #[test]
    fn missing_pieces_are_typed_errors() {
        assert_eq!(
            Sim::builder().mapper(round_robin()).build().err(),
            Some(BuildError::MissingApp)
        );
        assert_eq!(Sim::builder().app(OneTask).build().err(), Some(BuildError::MissingScheduler));
    }

    #[test]
    fn ambiguous_machine_descriptions_are_rejected() {
        let err = Sim::builder()
            .cores(4)
            .config(SystemConfig::small())
            .app(OneTask)
            .mapper(round_robin())
            .build()
            .err();
        assert_eq!(err, Some(BuildError::AmbiguousMachine));
    }

    #[test]
    fn invalid_configurations_are_rejected_not_panicked() {
        let mut cfg = SystemConfig::small();
        cfg.tiles_x = 0;
        let err =
            Sim::builder().config(cfg).app(OneTask).mapper(round_robin()).build().err().unwrap();
        assert!(matches!(err, BuildError::InvalidConfig(_)), "{err}");

        let mut cfg = SystemConfig::small();
        // Passes SystemConfig::validate (positive capacity) but leaves the
        // 4-core tiles with only 4 commit-queue entries: a deadlock recipe.
        cfg.queues.commit_queue_per_core = 1;
        let err =
            Sim::builder().config(cfg).app(OneTask).mapper(round_robin()).build().err().unwrap();
        assert!(matches!(err, BuildError::CommitQueueTooSmall { .. }), "{err}");

        let err = Sim::builder().cores(0).app(OneTask).mapper(round_robin()).build().err().unwrap();
        assert!(matches!(err, BuildError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fault_plans_ride_through_the_builder() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        use swarm_types::SimError;
        // A lost wake planted at cycle 0 must surface as a typed deadlock.
        let plan =
            FaultPlan::from(FaultEvent { at_cycle: 0, kind: FaultKind::LostTaskWake { ts: 3 } });
        let mut engine = Sim::builder()
            .cores(4)
            .app(OneTask)
            .mapper(round_robin())
            .fault_plan(plan)
            .build()
            .unwrap();
        let err = engine.run().expect_err("a lost wake must deadlock");
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");

        // An empty plan changes nothing.
        let mut engine = Sim::builder()
            .cores(4)
            .app(OneTask)
            .mapper(round_robin())
            .fault_plan(FaultPlan::new())
            .build()
            .unwrap();
        assert_eq!(engine.run().unwrap().tasks_committed, 1);
    }

    #[test]
    fn zero_task_limit_is_rejected() {
        let err = Sim::builder().app(OneTask).mapper(round_robin()).task_limit(0).build().err();
        assert_eq!(err, Some(BuildError::ZeroTaskLimit));
    }

    #[test]
    fn build_errors_format_helpfully() {
        for (err, needle) in [
            (BuildError::MissingApp, "app"),
            (BuildError::MissingScheduler, "scheduler"),
            (BuildError::AmbiguousMachine, "pick one"),
            (BuildError::InvalidConfig("x".into()), "x"),
            (BuildError::CommitQueueTooSmall { commit_queue: 1, cores_per_tile: 4 }, "commit"),
            (BuildError::ZeroTaskLimit, "task limit"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
