//! The discrete-event simulation engine.
//!
//! The engine owns the [`SimState`], the application and the scheduler
//! ([`TaskMapper`]), and drives the Swarm execution model:
//!
//! * cores dequeue the earliest-timestamp dispatchable task from their tile's
//!   task unit (optionally skipping tasks whose hashed hint matches a running
//!   task — the same-hint serialization of Section III-B);
//! * task bodies run speculatively against the simulated memory with eager
//!   conflict detection and undo-log rollback;
//! * children are enqueued to the tile chosen by the mapper when their parent
//!   finishes;
//! * a periodic GVT update commits every finished task that precedes the
//!   earliest unfinished task (plus, optionally, independent equal-timestamp
//!   tasks, which unordered programs rely on);
//! * a periodic load-balancer epoch lets hint-based mappers remap buckets.
//!
//! Pending events live in a [`TimingWheel`] keyed by cycle: events pop in
//! ascending `(cycle, schedule order)` — the explicit ordering contract is
//! documented on [`TimingWheel::schedule`], so the `Event` type needs no
//! `Ord` of its own. The hot loop allocates nothing in steady state: task
//! records come from the state's free-listed arena, execution buffers are
//! recycled between bodies, and the per-core pending-children lists reuse
//! their capacity across dispatches.

use swarm_noc::TrafficClass;
use swarm_types::{CoreId, Hint, SimError, SimResult, SystemConfig, TaskId, TileId, Timestamp};

use crate::app::{ExecutionOutcome, SwarmApp, TaskCtx};
use crate::event_queue::TimingWheel;
use crate::fault::{FaultKind, FaultPlan};
use crate::mapper::TaskMapper;
use crate::observer::{CoreWaitEvent, DequeueEvent, FaultInjectedEvent, SimObserver, WaitKind};
use crate::state::{CoreState, SimState};
use crate::stats::RunStats;
use crate::task::{OrderKey, PendingChild, TaskDescriptor, TaskStatus};

/// Default safety limit on executed task bodies (including aborted
/// re-executions); exceeding it aborts the run with
/// [`SimError::TaskLimitExceeded`].
pub const DEFAULT_TASK_LIMIT: u64 = 50_000_000;

/// An engine event. Ordering between events is entirely the
/// [`TimingWheel`]'s `(cycle, schedule order)` contract; the type itself is
/// deliberately unordered (the seed's `(cycle, seq, Event)` heap tuple could
/// fall through to a derived `Ord` on `Event`, which was never meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A core finished executing its current task.
    Finish(CoreId),
    /// A core should (re)attempt to dispatch a task.
    TryDispatch(CoreId),
    /// Periodic global-virtual-time update (commits).
    Gvt,
    /// Periodic load-balancer reconfiguration opportunity.
    LbEpoch,
    /// Execute the fault-plan event at this index (see [`FaultPlan`]).
    Fault(u32),
}

/// The simulation engine. Construct one per run — most callers go through
/// the validated [`crate::SimBuilder`] rather than [`Engine::new`].
pub struct Engine {
    state: SimState,
    app: Box<dyn SwarmApp>,
    mapper: Box<dyn TaskMapper>,
    events: TimingWheel<Event>,
    now: u64,
    executed_bodies: u64,
    task_limit: u64,
    /// Children requested by the task currently running on each core; they
    /// become visible when the core's execution finishes un-aborted. The
    /// buffers recycle their capacity across dispatches.
    pending_children: Vec<Vec<PendingChild>>,
    /// Queued `Finish`/`TryDispatch` events. When this hits zero with tasks
    /// remaining and a GVT tick commits nothing, no future event can change
    /// the state: the run is deadlocked (see [`SimError::Deadlock`]).
    pending_core_events: u64,
    validate_result: bool,
    /// The fault plan to execute, if any (see [`crate::fault`]). `None`
    /// leaves every fault hook a constant-false branch.
    fault_plan: Option<FaultPlan>,
    /// Wall-clock anchor for the `max_wall_ms` budget; captured at
    /// [`Engine::run`] entry only when that budget is configured.
    wall_start: Option<std::time::Instant>,
    /// Scratch for per-tile idle counts handed to the mapper.
    idle_scratch: Vec<usize>,
    /// Scratch for the GVT commit walk (keys of committable tasks).
    commit_scratch: Vec<OrderKey>,
    /// Scratch that swaps with the state's wake list while processing it.
    wake_scratch: Vec<TileId>,
}

impl Engine {
    /// Create an engine for `cfg` running `app` under `mapper`.
    ///
    /// Prefer [`crate::Sim::builder`], which validates the configuration and
    /// returns a typed error instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SystemConfig, app: Box<dyn SwarmApp>, mapper: Box<dyn TaskMapper>) -> Self {
        let state = SimState::new(cfg);
        let num_cores = state.cfg.num_cores();
        Engine {
            state,
            app,
            mapper,
            // Worst same-cycle burst: one TryDispatch per core (a wake after
            // a commit batch) plus one Finish per core, plus the two
            // periodic events.
            events: TimingWheel::with_slot_capacity(2 * num_cores + 2),
            now: 0,
            executed_bodies: 0,
            task_limit: DEFAULT_TASK_LIMIT,
            pending_children: vec![Vec::new(); num_cores],
            pending_core_events: 0,
            validate_result: true,
            fault_plan: None,
            wall_start: None,
            idle_scratch: Vec::new(),
            commit_scratch: Vec::new(),
            wake_scratch: Vec::new(),
        }
    }

    /// Attach a custom [`SimObserver`]; it is notified after the built-in
    /// statistics observer, in attach order.
    pub fn add_observer(&mut self, observer: Box<dyn SimObserver>) -> &mut Self {
        self.state.observers.attach(observer);
        self
    }

    /// Enable collection of per-committed-task access traces (needed for the
    /// access classification of Fig. 3 / Fig. 6).
    pub fn enable_profiling(&mut self) -> &mut Self {
        self.state.profiling = true;
        self
    }

    /// Disable the end-of-run validation against the application's serial
    /// reference (used by tests that deliberately corrupt state).
    pub fn disable_validation(&mut self) -> &mut Self {
        self.validate_result = false;
        self
    }

    /// Override the executed-task safety limit.
    pub fn set_task_limit(&mut self, limit: u64) -> &mut Self {
        self.task_limit = limit;
        self
    }

    /// Fault injection hook: plant a task that is registered as remaining
    /// work but has no task-queue entry and no pending wake — the "lost
    /// wake" fault class the deadlock detector exists for. A healthy engine
    /// cannot reach this state through the public API (every enqueue wakes
    /// its tile), so [`Engine::run`] on a faulted engine must terminate
    /// with [`SimError::Deadlock`] once all healthy work drains, counting
    /// the planted task in `remaining`. Call before [`Engine::run`], or let
    /// a [`FaultPlan`] with [`FaultKind::LostTaskWake`] invoke it mid-run
    /// at a deterministic cycle.
    pub fn inject_lost_task(&mut self, ts: u64) -> &mut Self {
        self.plant_lost_task(ts);
        self
    }

    fn plant_lost_task(&mut self, ts: Timestamp) {
        // Drop only the wake this add produces (if any): pre-existing wakes
        // belong to healthy work and must survive a mid-run injection.
        let wakes_before = self.state.wake_tiles.len();
        let desc = TaskDescriptor {
            fid: 0,
            ts,
            hint: Hint::None,
            hint_hash: None,
            bucket: None,
            args: vec![],
            parent: None,
            tile: TileId(0),
        };
        let lost = self.state.add_task(desc);
        let key = self.state.tasks.key(lost);
        self.state.tiles[0].idle.remove(&key);
        self.state.wake_tiles.truncate(wakes_before);
    }

    /// Attach a deterministic [`FaultPlan`]; its events are scheduled into
    /// the event queue when [`Engine::run`] starts. Prefer
    /// [`crate::SimBuilder::fault_plan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Read-only access to the simulation state (for tests and tools).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Schedule a core event (`Finish`/`TryDispatch`), tracking the count of
    /// outstanding ones for deadlock detection.
    fn schedule_core(&mut self, at: u64, event: Event) {
        debug_assert!(matches!(event, Event::Finish(_) | Event::TryDispatch(_)));
        self.pending_core_events += 1;
        self.events.schedule(at, event);
    }

    /// Run the application to completion and return the run statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if the executed-task safety limit is exceeded, if a
    /// child task regresses its parent's timestamp, if the simulation
    /// deadlocks (tasks remain but no event can make progress — see
    /// [`SimError::Deadlock`]), or if the final memory state fails the
    /// application's validation.
    pub fn run(&mut self) -> SimResult<RunStats> {
        // Sequential setup: let the application lay out its initial data.
        self.app.init_memory(&mut self.state.mem);
        // Enqueue the initial tasks (the program's `main`).
        let initial = self.app.initial_tasks();
        for t in initial {
            self.enqueue_task(t.fid, t.ts, t.hint, t.args, None)?;
        }
        self.process_wakes();
        let gvt_epoch = self.state.cfg.spec.gvt_epoch;
        let lb_epoch = self.state.cfg.lb_epoch;
        self.events.schedule(gvt_epoch, Event::Gvt);
        self.events.schedule(lb_epoch, Event::LbEpoch);
        // Schedule every planned fault at its exact cycle; same-cycle plan
        // entries fire in plan order (the wheel's FIFO slot contract).
        if let Some(plan) = &self.fault_plan {
            for (i, fault) in plan.events().iter().enumerate() {
                self.events.schedule(fault.at_cycle, Event::Fault(i as u32));
            }
        }
        self.wall_start = (self.state.cfg.max_wall_ms > 0).then(std::time::Instant::now);

        while self.state.remaining_tasks > 0 {
            let Some((at, event)) = self.events.pop() else {
                // Tasks remain but the event queue drained: nothing can ever
                // make progress again. (Normally unreachable: the GVT event
                // reschedules itself while tasks remain, and reports the
                // deadlock itself when the system quiesces.)
                return Err(self.deadlock_error());
            };
            self.now = at.max(self.now);
            // Mirror the clock into the state so mechanisms triggered by
            // this event can timestamp the messages they send.
            self.state.now_cycle = self.now;
            match event {
                Event::Finish(core) => {
                    self.pending_core_events -= 1;
                    self.handle_finish(core)?;
                }
                Event::TryDispatch(core) => {
                    self.pending_core_events -= 1;
                    self.handle_try_dispatch(core)?;
                }
                Event::Gvt => self.handle_gvt()?,
                Event::LbEpoch => self.handle_lb_epoch(),
                Event::Fault(index) => self.handle_fault(index as usize),
            }
            if self.executed_bodies > self.task_limit {
                return Err(SimError::TaskLimitExceeded(self.task_limit));
            }
        }

        let runtime = self.now;
        // Close out idle/stall accounting for cores that never woke again.
        for i in 0..self.state.cores.len() {
            let (kind, since) = match self.state.cores[i] {
                CoreState::Idle { since } => (WaitKind::Empty, since),
                CoreState::Stalled { since } => (WaitKind::Stalled, since),
                CoreState::Busy { .. } => continue,
            };
            self.state.observers.core_wait(&CoreWaitEvent {
                core: CoreId(i as u32),
                kind,
                cycles: runtime.saturating_sub(since),
            });
        }

        if self.validate_result {
            self.app.validate(&self.state.mem).map_err(SimError::ValidationFailed)?;
        }

        Ok(self.collect_stats(runtime))
    }

    fn collect_stats(&mut self, runtime: u64) -> RunStats {
        let scheduler = self.mapper.name().to_string();
        let app = self.app.name().to_string();
        let cores = self.state.cfg.num_cores();
        let link_stats = self.state.links.as_ref().map(|l| l.snapshot());
        let stats = self
            .state
            .observers
            .stats_mut()
            .take_run_stats(scheduler, app, cores, runtime, link_stats);
        self.state.observers.run_end(&stats);
        stats
    }

    // ------------------------------------------------------------------
    // Fault execution and failure diagnostics
    // ------------------------------------------------------------------

    /// Execute the plan's `index`-th fault at the current cycle. One-shot
    /// faults act immediately; persistent ones flip a switch in the state's
    /// [`crate::fault::FaultRuntime`] that the affected paths consult.
    fn handle_fault(&mut self, index: usize) {
        let fault = self.fault_plan.as_ref().expect("fault event without a plan").events()[index];
        self.state.observers.fault_injected(&FaultInjectedEvent { index, fault, cycle: self.now });
        match fault.kind {
            FaultKind::LostTaskWake { ts } => self.plant_lost_task(ts),
            FaultKind::DelayedMessage { tile, extra_cycles } => {
                self.state.faults.delayed = Some((tile, extra_cycles));
            }
            FaultKind::DuplicateMessage => self.state.faults.duplicate_next = true,
            FaultKind::QueueSqueeze { tile, capacity } => {
                self.state.faults.squeeze = Some((tile, capacity));
            }
            FaultKind::StuckCore { core } => self.state.faults.stuck = Some(core),
            FaultKind::AbortStorm => self.abort_storm(),
            FaultKind::CorruptHint { xor } => self.state.faults.hint_xor = Some(xor),
        }
        self.process_wakes();
    }

    /// Abort every live speculative task once, walking tiles in index order
    /// so the storm is deterministic. Each abort runs the normal cascade;
    /// requeued tasks re-execute, so the run still completes.
    fn abort_storm(&mut self) {
        let mut victims: Vec<TaskId> = Vec::new();
        for tile in &self.state.tiles {
            victims.extend(tile.running.iter().copied());
            victims.extend(tile.finished.iter().map(|&(_, id)| id));
        }
        for victim in victims {
            // Earlier storm aborts may already have cascaded into this one.
            if self.state.tasks.key_is_live_for_abort(victim) {
                let tile = self.state.tasks.tile(victim);
                self.state.abort_task(victim, tile);
            }
        }
    }

    /// Build the enriched deadlock diagnosis: scan the arena for the
    /// outstanding task with the minimum `(ts, id)` order key. The arena
    /// scan (rather than [`SimState::gvt`]) is deliberate — a lost task
    /// sits in no per-tile structure, so only the arena still sees it.
    fn deadlock_error(&self) -> SimError {
        let mut min: Option<OrderKey> = None;
        for i in 0..self.state.tasks.len() {
            let id = TaskId(i as u64);
            if !self.state.tasks.status(id).is_terminal() {
                let key = self.state.tasks.key(id);
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
            }
        }
        let (min_ts, stuck_task) = min.unwrap_or((0, TaskId(0)));
        SimError::Deadlock { remaining: self.state.remaining_tasks, min_ts, stuck_task }
    }

    /// Cheap per-GVT-epoch budget watchdogs (see `SystemConfig::max_cycles`
    /// and `SystemConfig::max_wall_ms`).
    fn check_budgets(&self) -> SimResult<()> {
        let last_gvt = || self.state.gvt().map_or(self.now, |(ts, _)| ts);
        let max_cycles = self.state.cfg.max_cycles;
        if max_cycles > 0 && self.now > max_cycles {
            return Err(SimError::CycleBudgetExceeded {
                budget: max_cycles,
                cycle: self.now,
                remaining: self.state.remaining_tasks,
                last_gvt: last_gvt(),
            });
        }
        let max_wall_ms = self.state.cfg.max_wall_ms;
        if max_wall_ms > 0 {
            if let Some(start) = self.wall_start {
                let elapsed_ms = start.elapsed().as_millis() as u64;
                if elapsed_ms > max_wall_ms {
                    return Err(SimError::WallClockBudgetExceeded {
                        budget_ms: max_wall_ms,
                        elapsed_ms,
                        cycle: self.now,
                        remaining: self.state.remaining_tasks,
                        last_gvt: last_gvt(),
                    });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Task creation
    // ------------------------------------------------------------------

    fn enqueue_task(
        &mut self,
        fid: u16,
        ts: Timestamp,
        hint: Hint,
        args: Vec<u64>,
        parent: Option<TaskId>,
    ) -> SimResult<TaskId> {
        let (parent_hint, parent_ts, parent_tile) = match parent {
            Some(p) => (
                Some(self.state.tasks.body(p).hint),
                Some(self.state.tasks.ts(p)),
                Some(self.state.tasks.tile(p)),
            ),
            None => (None, None, None),
        };
        if let Some(pts) = parent_ts {
            if ts < pts {
                return Err(SimError::TimestampRegression { parent: pts, child: ts });
            }
        }
        let resolved = match (self.state.faults.hint_xor, hint.resolve(parent_hint)) {
            // An active CorruptHint fault flips bits in every concrete hint
            // value; placement degrades, correctness must not.
            (Some(xor), Hint::Value(v)) => Hint::Value(v ^ xor),
            (_, resolved) => resolved,
        };
        let num_tiles = self.state.cfg.num_tiles();
        let tile = match (resolved, parent_tile) {
            // SAMEHINT with no usable parent hint stays on the parent's tile,
            // preserving parent-child locality as the paper prescribes.
            (Hint::None, Some(pt)) if hint == Hint::Same => pt,
            _ => self.mapper.map_task(resolved, parent_tile, num_tiles),
        };
        let bucket = self.mapper.bucket_of(resolved);
        let desc = TaskDescriptor {
            fid,
            ts,
            hint: resolved,
            hint_hash: resolved.hash16(),
            bucket,
            args,
            parent,
            tile,
        };
        let id = self.state.add_task(desc);
        if let Some(p) = parent {
            self.state.tasks.body_mut(p).children.push(id);
        }
        // Task descriptors sent to a remote tile consume network bandwidth.
        if let Some(src) = parent_tile {
            if src != tile {
                let hops = self.state.mesh.hops(src, tile);
                let flits = self.state.mesh.flits_for_bytes(34);
                let wait =
                    self.state.send_message(TrafficClass::Task, src, tile, hops, flits, self.now);
                if self.state.links.is_some() {
                    // Under contention the child is not dispatchable until
                    // its descriptor physically arrives: mesh latency,
                    // queueing delay, and any armed message-delay fault all
                    // push the delivery out.
                    let latency = self.state.mesh.latency(src, tile)
                        + wait
                        + self.state.faults.extra_remote_latency(src);
                    if latency > 0 {
                        let ready_at = self.now + latency;
                        self.state.tasks.set_ready_at(id, ready_at);
                        // The add_task wake fires now, while the task is not
                        // yet dispatchable; schedule a second attempt for the
                        // destination tile's cores at the delivery cycle.
                        let first = tile.index() as u32 * self.state.cfg.cores_per_tile;
                        for c in first..first + self.state.cfg.cores_per_tile {
                            self.schedule_core(ready_at, Event::TryDispatch(CoreId(c)));
                        }
                    }
                }
            }
        }
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn account_core_transition(&mut self, core: CoreId, new_state: CoreState) {
        let old = self.state.cores[core.index()];
        let wait = match old {
            CoreState::Idle { since } => Some((WaitKind::Empty, since)),
            CoreState::Stalled { since } => Some((WaitKind::Stalled, since)),
            CoreState::Busy { .. } => None,
        };
        if let Some((kind, since)) = wait {
            let cycles = self.now.saturating_sub(since);
            if cycles > 0 || self.state.observers.wants_zero_cycle_waits() {
                self.state.observers.core_wait(&CoreWaitEvent { core, kind, cycles });
            }
        }
        self.state.cores[core.index()] = new_state;
    }

    fn process_wakes(&mut self) {
        if self.state.wake_tiles.is_empty() {
            return;
        }
        // Swap the woken-tile list into engine scratch (leaving the state an
        // empty list with retained capacity) so scheduling below can borrow
        // the engine mutably.
        std::mem::swap(&mut self.wake_scratch, &mut self.state.wake_tiles);
        // Under a work-stealing scheduler, new work anywhere is a stealing
        // opportunity for every out-of-work tile, so wake all non-busy cores;
        // otherwise only the tiles that received work or freed queue slots
        // need to re-attempt dispatch.
        if self.mapper.steals() {
            for c in 0..self.state.cfg.num_cores() as u32 {
                let core = CoreId(c);
                if !matches!(self.state.cores[core.index()], CoreState::Busy { .. }) {
                    self.schedule_core(self.now, Event::TryDispatch(core));
                }
            }
        } else {
            for i in 0..self.wake_scratch.len() {
                let tile = self.wake_scratch[i];
                let first = tile.index() as u32 * self.state.cfg.cores_per_tile;
                for c in first..first + self.state.cfg.cores_per_tile {
                    let core = CoreId(c);
                    if !matches!(self.state.cores[core.index()], CoreState::Busy { .. }) {
                        self.schedule_core(self.now, Event::TryDispatch(core));
                    }
                }
            }
        }
        self.wake_scratch.clear();
    }

    /// Pick the next dispatchable task for `tile` respecting same-hint
    /// serialization: the earliest-key idle task whose hashed hint does not
    /// match an earlier-key task currently running on the tile.
    fn select_candidate(&self, tile: TileId) -> Option<TaskId> {
        let serialize = self.mapper.serialize_same_hint();
        let tile_state = &self.state.tiles[tile.index()];
        for &(ts, id) in tile_state.idle.iter() {
            // Tasks still in flight to this tile (contention-mode delivery)
            // are not dispatchable yet; a wake is already scheduled for
            // their arrival cycle. Always 0 > now == false under Analytic.
            if self.state.tasks.ready_at(id) > self.now {
                continue;
            }
            if !serialize {
                return Some(id);
            }
            let hash = self.state.tasks.hint_hash(id);
            let conflicting = hash.is_some()
                && tile_state.running.iter().any(|&r| {
                    !self.state.tasks.is_aborted(r)
                        && self.state.tasks.hint_hash(r) == hash
                        && self.state.tasks.key(r) < (ts, id)
                });
            if !conflicting {
                return Some(id);
            }
        }
        None
    }

    fn handle_try_dispatch(&mut self, core: CoreId) -> SimResult<()> {
        if matches!(self.state.cores[core.index()], CoreState::Busy { .. }) {
            return Ok(());
        }
        // A stuck core never dequeues again; if no other core can absorb
        // its work the deadlock detector reports the starvation.
        if self.state.faults.is_stuck(core) {
            return Ok(());
        }
        let tile = self.state.tile_of_core(core);

        // Refill spilled tasks if the queue ran dry, or if a spilled task
        // now precedes everything left in the queue (it must run before the
        // GVT can pass it).
        {
            let tile_state = &self.state.tiles[tile.index()];
            let spilled_first = tile_state.spilled.first().copied();
            let idle_first = tile_state.idle.first().copied();
            let should_refill = match (spilled_first, idle_first) {
                (Some(_), None) => true,
                (Some(s), Some(i)) => s < i,
                (None, _) => false,
            };
            if should_refill {
                self.state.refill_tile(tile);
            }
        }

        // Work stealing (idealized): grab the earliest task of the victim.
        if self.state.tiles[tile.index()].idle.is_empty() && self.mapper.steals() {
            self.state.idle_per_tile_into(&mut self.idle_scratch);
            if let Some(victim) = self.mapper.steal_victim(tile, &self.idle_scratch) {
                self.state.steal_task(tile, victim);
            }
        }

        let Some(candidate) = self.select_candidate(tile) else {
            self.account_core_transition(core, CoreState::Idle { since: self.now });
            return Ok(());
        };

        // A dispatch reserves a commit-queue entry; if the commit queue is
        // full, either abort the latest finished task (if the candidate
        // precedes it) or stall the core.
        let commit_cap = self.state.cfg.commit_queue_per_tile();
        if self.state.tiles[tile.index()].commit_queue_occupancy() >= commit_cap {
            let candidate_key = self.state.tasks.key(candidate);
            let latest_finished = self.state.tiles[tile.index()].finished.last().copied();
            match latest_finished {
                Some(last_key) if candidate_key < last_key => {
                    self.state.abort_task(last_key.1, tile);
                    self.process_wakes();
                    // The resource abort's cascade may have touched the
                    // candidate itself (e.g. discarded it because its parent
                    // aborted); restart the dispatch decision from scratch.
                    if self.state.tasks.status(candidate) != TaskStatus::Idle {
                        return self.handle_try_dispatch(core);
                    }
                }
                _ => {
                    self.account_core_transition(core, CoreState::Stalled { since: self.now });
                    return Ok(());
                }
            }
        }

        // Dispatch: remove from the idle queue and execute the body.
        let key = self.state.tasks.key(candidate);
        self.state.tiles[tile.index()].idle.remove(&key);
        self.state.tiles[tile.index()].running.push(candidate);
        self.account_core_transition(core, CoreState::Busy { task: candidate });
        // The built-in statistics observer ignores dequeues, so the event is
        // only materialised when a custom observer is listening.
        if self.state.observers.wants_dequeue() {
            let (ts, hint) =
                (self.state.tasks.ts(candidate), self.state.tasks.body(candidate).hint);
            self.state.observers.dequeue(&DequeueEvent {
                task: candidate,
                ts,
                hint,
                tile,
                core,
                now: self.now,
            });
        }

        let outcome = self.execute_body(candidate, core);
        self.executed_bodies += 1;
        let exec_cycles = outcome.cycles.max(1);
        let finish_at = self.now + exec_cycles;
        {
            let ExecutionOutcome { read_lines, write_lines, undo, trace, children, .. } = outcome;
            let dispatched_at = self.now;
            let body = self.state.tasks.body_mut(candidate);
            body.exec_cycles = exec_cycles;
            body.dispatched_at = dispatched_at;
            // Copy the outcome into the body's slot-resident buffers (which
            // keep their capacity across the slot's tenants) and hand the
            // outcome buffers back for the next execution.
            debug_assert!(body.read_set.is_empty() && body.undo.is_empty());
            body.read_set.extend_from_slice(&read_lines);
            body.write_set.extend_from_slice(&write_lines);
            body.undo.extend_from_slice(&undo);
            body.access_trace.extend_from_slice(&trace);
            self.state.recycle_exec_buffers(read_lines, write_lines, undo, trace);
            self.state.tasks.set_status(candidate, TaskStatus::Running { core, finish_at });
            let slot = &mut self.pending_children[core.index()];
            debug_assert!(slot.is_empty());
            *slot = children;
        }
        // If the body's own accesses triggered an abort of this very task
        // (possible only through a parent abort cascade racing in the same
        // event, which cannot happen, but keep the invariant explicit), the
        // registration below would be stale; register unconditionally since
        // aborted tasks are unregistered when settled.
        self.state.register_access_sets(candidate);
        self.schedule_core(finish_at, Event::Finish(core));
        self.process_wakes();
        Ok(())
    }

    fn execute_body(&mut self, task: TaskId, core: CoreId) -> ExecutionOutcome {
        // Borrow the argument buffer out of the task's body for the duration
        // of the call instead of cloning it (the body cannot observe its own
        // argument list through the context).
        let (fid, ts) = (self.state.tasks.body(task).fid, self.state.tasks.ts(task));
        let args = std::mem::take(&mut self.state.tasks.body_mut(task).args);
        let mut ctx = TaskCtx::new(&mut self.state, task, core, ts);
        self.app.run_task(fid, ts, &args, &mut ctx);
        let outcome = ctx.into_outcome();
        self.state.tasks.body_mut(task).args = args;
        outcome
    }

    // ------------------------------------------------------------------
    // Finish
    // ------------------------------------------------------------------

    fn handle_finish(&mut self, core: CoreId) -> SimResult<()> {
        let CoreState::Busy { task } = self.state.cores[core.index()] else {
            return Ok(());
        };
        let tile = self.state.tile_of_core(core);
        self.state.tiles[tile.index()].running.retain(|&t| t != task);

        let aborted = self.state.tasks.is_aborted(task);
        let mut children = std::mem::take(&mut self.pending_children[core.index()]);
        if aborted {
            // The execution was doomed while in flight: drop the children it
            // wanted to create and requeue (or discard) the task itself.
            children.clear();
            self.state.settle_aborted_running_task(task);
        } else {
            self.state.mark_finished(task);
            // Children become visible to the system when their parent's
            // execution completes.
            for child in children.drain(..) {
                self.enqueue_task(child.fid, child.ts, child.hint, child.args, Some(task))?;
            }
        }
        self.state.recycle_children(children);

        self.state.cores[core.index()] = CoreState::Idle { since: self.now };
        self.process_wakes();
        self.handle_try_dispatch(core)
    }

    // ------------------------------------------------------------------
    // Commits (GVT) and load balancing
    // ------------------------------------------------------------------

    fn handle_gvt(&mut self) -> SimResult<()> {
        self.check_budgets()?;
        self.state.observers.gvt_update(self.now);
        // Each tile exchanges a GVT update with the arbiter (tile 0).
        let arbiter = TileId(0);
        for t in 0..self.state.cfg.num_tiles() {
            let tile = TileId(t as u32);
            let hops = self.state.mesh.hops(tile, arbiter);
            let flits = self.state.mesh.control_flits();
            self.state.send_message(TrafficClass::Gvt, tile, arbiter, hops, 2 * flits, self.now);
        }

        let frontier = self.state.gvt();
        // If the earliest unfinished task was spilled to memory, no commit
        // can pass it and no dispatch will naturally refill it (its tile may
        // have plenty of later idle tasks); pull it back in so the system
        // keeps making forward progress.
        if let Some((_, id)) = frontier {
            if self.state.tasks.status(id) == TaskStatus::Spilled {
                self.state.unspill_task(id);
            }
        }
        // Collect committable keys into scratch; sorting `(ts, id)` keys
        // directly is the same order the seed got from sorting ids by
        // `record.key()` (keys are unique), without touching the arena.
        let mut keys = std::mem::take(&mut self.commit_scratch);
        debug_assert!(keys.is_empty());
        for tile in 0..self.state.cfg.num_tiles() {
            for &(ts, id) in self.state.tiles[tile].finished.iter() {
                // The per-tile lists are sorted, so the first key at or past
                // the frontier ends that tile's committable prefix.
                if let Some(f) = frontier {
                    if (ts, id) >= f {
                        break;
                    }
                }
                keys.push((ts, id));
            }
        }
        // Commit in key order so parents commit before their children.
        keys.sort_unstable();
        for &(_, id) in &keys {
            let (tile, bucket, cycles) = self.state.commit_task(id);
            self.mapper.on_commit(tile, bucket, cycles);
        }
        keys.clear();

        // Relaxed commit of independent equal-timestamp tasks (unordered
        // programs): finished tasks at the frontier timestamp whose parent
        // has committed and whose data no earlier uncommitted task touches.
        if self.state.cfg.spec.relaxed_equal_ts_commit {
            if let Some((front_ts, _)) = self.state.gvt() {
                for tile in 0..self.state.cfg.num_tiles() {
                    for &(ts, id) in self.state.tiles[tile].finished.iter() {
                        // Sorted list: keys past the frontier timestamp can
                        // never be relaxed-committable, stop scanning.
                        if ts > front_ts {
                            break;
                        }
                        if ts == front_ts && self.state.can_commit_relaxed(id) {
                            keys.push((ts, id));
                        }
                    }
                }
                keys.sort_unstable();
                // No re-check needed: earlier relaxed commits may have
                // changed the line table, but only by *removing* earlier
                // accessors, which can only make more tasks eligible.
                for &(_, id) in &keys {
                    let (tile, bucket, cycles) = self.state.commit_task(id);
                    self.mapper.on_commit(tile, bucket, cycles);
                }
                keys.clear();
            }
        }
        self.commit_scratch = keys;

        self.process_wakes();
        if self.state.remaining_tasks > 0 {
            // Deadlock check: every busy core has a Finish event pending and
            // every wake produced by the commits above scheduled a
            // TryDispatch, so if no core event is outstanding now, this tick
            // changed nothing and neither will any future GVT/LB tick — the
            // system can never progress. Report it instead of spinning on
            // periodic events forever.
            if self.pending_core_events == 0 {
                return Err(self.deadlock_error());
            }
            self.events.schedule(self.now + self.state.cfg.spec.gvt_epoch, Event::Gvt);
        }
        Ok(())
    }

    fn handle_lb_epoch(&mut self) {
        self.state.idle_per_tile_into(&mut self.idle_scratch);
        if self.mapper.on_lb_epoch(self.now, &self.idle_scratch) {
            self.state.observers.lb_reconfig(self.now);
        }
        if self.state.remaining_tasks > 0 {
            self.events.schedule(self.now + self.state.cfg.lb_epoch, Event::LbEpoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::PinnedMapper;
    use crate::task::InitialTask;

    /// One task that writes one word and never enqueues a successor.
    struct OneShot;

    impl SwarmApp for OneShot {
        fn name(&self) -> &str {
            "one-shot"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::None, vec![])]
        }
        fn run_task(&self, _fid: u16, _ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
            ctx.write(0x1000, 1);
        }
    }

    #[test]
    fn lost_task_reports_deadlock_instead_of_spinning() {
        // The app's own task runs and commits, but a second task planted
        // directly in the state is never made dispatchable (it is registered
        // as remaining work without a task-queue entry or a wake — the
        // lost-wake class of bug the deadlock detector exists for). The seed
        // engine spun on GVT events forever here; it must now return a typed
        // error naming the outstanding work.
        let mut engine =
            Engine::new(SystemConfig::single_core(), Box::new(OneShot), Box::new(PinnedMapper));
        engine.inject_lost_task(99);

        let err = engine.run().expect_err("a lost task must be detected, not spun on");
        // The diagnosis names the wedged work: the planted task (id 0,
        // planted before the app's own task) at its timestamp.
        let SimError::Deadlock { remaining, min_ts, stuck_task } = err else {
            panic!("expected a deadlock, got {err}");
        };
        assert_eq!(remaining, 1);
        assert_eq!(min_ts, 99);
        assert_eq!(stuck_task, TaskId(0));
    }

    #[test]
    fn healthy_run_does_not_trip_the_deadlock_detector() {
        let mut engine =
            Engine::new(SystemConfig::single_core(), Box::new(OneShot), Box::new(PinnedMapper));
        let stats = engine.run().expect("one task runs to completion");
        assert_eq!(stats.tasks_committed, 1);
    }

    /// A livelocked program: every task enqueues a successor forever.
    struct Endless;

    impl SwarmApp for Endless {
        fn name(&self) -> &str {
            "endless"
        }
        fn initial_tasks(&self) -> Vec<InitialTask> {
            vec![InitialTask::new(0, 0, Hint::None, vec![])]
        }
        fn run_task(&self, _fid: u16, ts: u64, _args: &[u64], ctx: &mut TaskCtx<'_>) {
            ctx.write(0x1000, ts);
            ctx.enqueue(0, ts + 1, Hint::None, vec![]);
        }
    }

    #[test]
    fn livelocked_app_hits_the_cycle_budget_deterministically() {
        let run = || {
            let mut cfg = SystemConfig::single_core();
            cfg.max_cycles = 10_000;
            let mut engine = Engine::new(cfg, Box::new(Endless), Box::new(PinnedMapper));
            engine.run().expect_err("an endless chain must trip the cycle budget")
        };
        let first = run();
        let SimError::CycleBudgetExceeded { budget, cycle, remaining, .. } = first.clone() else {
            panic!("expected a cycle-budget error, got {first}");
        };
        assert_eq!(budget, 10_000);
        assert!(cycle > 10_000, "detected past the budget, got {cycle}");
        assert!(remaining > 0);
        // The watchdog fires at a GVT epoch, so the whole diagnosis —
        // including the trip cycle — is reproducible.
        assert_eq!(first, run());
    }

    #[test]
    fn livelocked_app_hits_the_wall_clock_budget() {
        let mut cfg = SystemConfig::single_core();
        cfg.max_wall_ms = 1;
        let mut engine = Engine::new(cfg, Box::new(Endless), Box::new(PinnedMapper));
        let err = engine.run().expect_err("an endless chain must trip the wall-clock budget");
        assert!(
            matches!(err, SimError::WallClockBudgetExceeded { budget_ms: 1, .. }),
            "expected a wall-clock budget error, got {err}"
        );
    }

    #[test]
    fn budgets_do_not_trip_on_healthy_runs() {
        let mut cfg = SystemConfig::single_core();
        cfg.max_cycles = 1_000_000;
        cfg.max_wall_ms = 60_000;
        let mut engine = Engine::new(cfg, Box::new(OneShot), Box::new(PinnedMapper));
        let stats = engine.run().expect("well under both budgets");
        assert_eq!(stats.tasks_committed, 1);
    }

    #[test]
    fn fault_plan_lost_wake_matches_the_direct_hook() {
        // The plan-driven lost wake reports the same typed diagnosis as the
        // pre-run hook (planted later, so ids differ, but the class and the
        // outstanding count match).
        use crate::fault::{FaultEvent, FaultPlan};
        let mut engine =
            Engine::new(SystemConfig::single_core(), Box::new(OneShot), Box::new(PinnedMapper));
        engine.set_fault_plan(FaultPlan::from(FaultEvent {
            at_cycle: 0,
            kind: FaultKind::LostTaskWake { ts: 7 },
        }));
        let err = engine.run().expect_err("the planted task can never run");
        assert!(
            matches!(err, SimError::Deadlock { remaining: 1, min_ts: 7, .. }),
            "expected a deadlock on the planted task, got {err}"
        );
    }

    #[test]
    fn empty_fault_plan_is_a_no_op() {
        use crate::fault::FaultPlan;
        let mut engine =
            Engine::new(SystemConfig::single_core(), Box::new(OneShot), Box::new(PinnedMapper));
        engine.set_fault_plan(FaultPlan::new());
        let stats = engine.run().expect("an empty plan injects nothing");
        assert_eq!(stats.tasks_committed, 1);
    }
}
