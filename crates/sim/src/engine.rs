//! The discrete-event simulation engine.
//!
//! The engine owns the [`SimState`], the application and the scheduler
//! ([`TaskMapper`]), and drives the Swarm execution model:
//!
//! * cores dequeue the earliest-timestamp dispatchable task from their tile's
//!   task unit (optionally skipping tasks whose hashed hint matches a running
//!   task — the same-hint serialization of Section III-B);
//! * task bodies run speculatively against the simulated memory with eager
//!   conflict detection and undo-log rollback;
//! * children are enqueued to the tile chosen by the mapper when their parent
//!   finishes;
//! * a periodic GVT update commits every finished task that precedes the
//!   earliest unfinished task (plus, optionally, independent equal-timestamp
//!   tasks, which unordered programs rely on);
//! * a periodic load-balancer epoch lets hint-based mappers remap buckets.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use swarm_noc::TrafficClass;
use swarm_types::{CoreId, Hint, SimError, SimResult, SystemConfig, TaskId, TileId, Timestamp};

use crate::app::{ExecutionOutcome, SwarmApp, TaskCtx};
use crate::mapper::TaskMapper;
use crate::observer::{CoreWaitEvent, DequeueEvent, SimObserver, WaitKind};
use crate::state::{CoreState, SimState};
use crate::stats::RunStats;
use crate::task::{PendingChild, TaskDescriptor, TaskStatus};

/// Default safety limit on executed task bodies (including aborted
/// re-executions); exceeding it aborts the run with
/// [`SimError::TaskLimitExceeded`].
pub const DEFAULT_TASK_LIMIT: u64 = 50_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A core finished executing its current task.
    Finish(CoreId),
    /// A core should (re)attempt to dispatch a task.
    TryDispatch(CoreId),
    /// Periodic global-virtual-time update (commits).
    Gvt,
    /// Periodic load-balancer reconfiguration opportunity.
    LbEpoch,
}

/// The simulation engine. Construct one per run — most callers go through
/// the validated [`crate::SimBuilder`] rather than [`Engine::new`].
pub struct Engine {
    state: SimState,
    app: Box<dyn SwarmApp>,
    mapper: Box<dyn TaskMapper>,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    event_seq: u64,
    now: u64,
    executed_bodies: u64,
    task_limit: u64,
    pending_children: HashMap<TaskId, Vec<PendingChild>>,
    validate_result: bool,
}

impl Engine {
    /// Create an engine for `cfg` running `app` under `mapper`.
    ///
    /// Prefer [`crate::Sim::builder`], which validates the configuration and
    /// returns a typed error instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SystemConfig, app: Box<dyn SwarmApp>, mapper: Box<dyn TaskMapper>) -> Self {
        Engine {
            state: SimState::new(cfg),
            app,
            mapper,
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            executed_bodies: 0,
            task_limit: DEFAULT_TASK_LIMIT,
            pending_children: HashMap::new(),
            validate_result: true,
        }
    }

    /// Attach a custom [`SimObserver`]; it is notified after the built-in
    /// statistics observer, in attach order.
    pub fn add_observer(&mut self, observer: Box<dyn SimObserver>) -> &mut Self {
        self.state.observers.attach(observer);
        self
    }

    /// Enable collection of per-committed-task access traces (needed for the
    /// access classification of Fig. 3 / Fig. 6).
    pub fn enable_profiling(&mut self) -> &mut Self {
        self.state.profiling = true;
        self
    }

    /// Disable the end-of-run validation against the application's serial
    /// reference (used by tests that deliberately corrupt state).
    pub fn disable_validation(&mut self) -> &mut Self {
        self.validate_result = false;
        self
    }

    /// Override the executed-task safety limit.
    pub fn set_task_limit(&mut self, limit: u64) -> &mut Self {
        self.task_limit = limit;
        self
    }

    /// Read-only access to the simulation state (for tests and tools).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    fn schedule(&mut self, at: u64, event: Event) {
        self.event_seq += 1;
        self.events.push(Reverse((at, self.event_seq, event)));
    }

    /// Run the application to completion and return the run statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if the executed-task safety limit is exceeded, if a
    /// child task regresses its parent's timestamp, or if the final memory
    /// state fails the application's validation.
    pub fn run(&mut self) -> SimResult<RunStats> {
        // Sequential setup: let the application lay out its initial data.
        self.app.init_memory(&mut self.state.mem);
        // Enqueue the initial tasks (the program's `main`).
        let initial = self.app.initial_tasks();
        for t in initial {
            self.enqueue_task(t.fid, t.ts, t.hint, t.args, None)?;
        }
        self.process_wakes();
        let gvt_epoch = self.state.cfg.spec.gvt_epoch;
        let lb_epoch = self.state.cfg.lb_epoch;
        self.schedule(gvt_epoch, Event::Gvt);
        self.schedule(lb_epoch, Event::LbEpoch);

        while self.state.remaining_tasks > 0 {
            let Some(Reverse((at, _, event))) = self.events.pop() else {
                // No events but tasks remain: force a GVT update to commit
                // whatever can commit (this should not normally happen).
                self.now += gvt_epoch;
                self.handle_gvt();
                continue;
            };
            self.now = at.max(self.now);
            match event {
                Event::Finish(core) => self.handle_finish(core)?,
                Event::TryDispatch(core) => self.handle_try_dispatch(core)?,
                Event::Gvt => self.handle_gvt(),
                Event::LbEpoch => self.handle_lb_epoch(),
            }
            if self.executed_bodies > self.task_limit {
                return Err(SimError::TaskLimitExceeded(self.task_limit));
            }
        }

        let runtime = self.now;
        // Close out idle/stall accounting for cores that never woke again.
        for i in 0..self.state.cores.len() {
            let (kind, since) = match self.state.cores[i] {
                CoreState::Idle { since } => (WaitKind::Empty, since),
                CoreState::Stalled { since } => (WaitKind::Stalled, since),
                CoreState::Busy { .. } => continue,
            };
            self.state.observers.core_wait(&CoreWaitEvent {
                core: CoreId(i as u32),
                kind,
                cycles: runtime.saturating_sub(since),
            });
        }

        if self.validate_result {
            self.app.validate(&self.state.mem).map_err(SimError::ValidationFailed)?;
        }

        Ok(self.collect_stats(runtime))
    }

    fn collect_stats(&mut self, runtime: u64) -> RunStats {
        let scheduler = self.mapper.name().to_string();
        let app = self.app.name().to_string();
        let cores = self.state.cfg.num_cores();
        let stats = self.state.observers.stats_mut().take_run_stats(scheduler, app, cores, runtime);
        self.state.observers.run_end(&stats);
        stats
    }

    // ------------------------------------------------------------------
    // Task creation
    // ------------------------------------------------------------------

    fn enqueue_task(
        &mut self,
        fid: u16,
        ts: Timestamp,
        hint: Hint,
        args: Vec<u64>,
        parent: Option<TaskId>,
    ) -> SimResult<TaskId> {
        let (parent_hint, parent_ts, parent_tile) = match parent {
            Some(p) => {
                let rec = self.state.record(p);
                (Some(rec.desc.hint), Some(rec.desc.ts), Some(rec.desc.tile))
            }
            None => (None, None, None),
        };
        if let Some(pts) = parent_ts {
            if ts < pts {
                return Err(SimError::TimestampRegression { parent: pts, child: ts });
            }
        }
        let resolved = hint.resolve(parent_hint);
        let num_tiles = self.state.cfg.num_tiles();
        let tile = match (resolved, parent_tile) {
            // SAMEHINT with no usable parent hint stays on the parent's tile,
            // preserving parent-child locality as the paper prescribes.
            (Hint::None, Some(pt)) if hint == Hint::Same => pt,
            _ => self.mapper.map_task(resolved, parent_tile, num_tiles),
        };
        let bucket = self.mapper.bucket_of(resolved);
        let desc = TaskDescriptor {
            id: TaskId(0), // assigned by add_task
            fid,
            ts,
            hint: resolved,
            hint_hash: resolved.hash16(),
            bucket,
            args,
            parent,
            tile,
        };
        let id = self.state.add_task(desc);
        if let Some(p) = parent {
            self.state.record_mut(p).children.push(id);
        }
        // Task descriptors sent to a remote tile consume network bandwidth.
        if let Some(src) = parent_tile {
            if src != tile {
                let hops = self.state.mesh.hops(src, tile);
                let flits = self.state.mesh.flits_for_bytes(34);
                self.state.record_traffic(TrafficClass::Task, hops, flits);
            }
        }
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn account_core_transition(&mut self, core: CoreId, new_state: CoreState) {
        let old = self.state.cores[core.index()];
        let wait = match old {
            CoreState::Idle { since } => Some((WaitKind::Empty, since)),
            CoreState::Stalled { since } => Some((WaitKind::Stalled, since)),
            CoreState::Busy { .. } => None,
        };
        if let Some((kind, since)) = wait {
            self.state.observers.core_wait(&CoreWaitEvent {
                core,
                kind,
                cycles: self.now.saturating_sub(since),
            });
        }
        self.state.cores[core.index()] = new_state;
    }

    fn process_wakes(&mut self) {
        let tiles = self.state.drain_wakes();
        if tiles.is_empty() {
            return;
        }
        // Under a work-stealing scheduler, new work anywhere is a stealing
        // opportunity for every out-of-work tile, so wake all non-busy cores;
        // otherwise only the tiles that received work or freed queue slots
        // need to re-attempt dispatch.
        let cores: Vec<CoreId> = if self.mapper.steals() {
            (0..self.state.cfg.num_cores() as u32).map(CoreId).collect()
        } else {
            tiles.iter().flat_map(|&tile| self.state.cores_of_tile(tile)).collect()
        };
        for core in cores {
            if !matches!(self.state.cores[core.index()], CoreState::Busy { .. }) {
                self.schedule(self.now, Event::TryDispatch(core));
            }
        }
    }

    /// Pick the next dispatchable task for `tile` respecting same-hint
    /// serialization: the earliest-key idle task whose hashed hint does not
    /// match an earlier-key task currently running on the tile.
    fn select_candidate(&self, tile: TileId) -> Option<TaskId> {
        let serialize = self.mapper.serialize_same_hint();
        let tile_state = &self.state.tiles[tile.index()];
        for &(ts, id) in tile_state.idle.iter() {
            if !serialize {
                return Some(id);
            }
            let hash = self.state.record(id).desc.hint_hash;
            let conflicting = hash.is_some()
                && tile_state.running.iter().any(|&r| {
                    let rrec = self.state.record(r);
                    !rrec.aborted && rrec.desc.hint_hash == hash && rrec.key() < (ts, id)
                });
            if !conflicting {
                return Some(id);
            }
        }
        None
    }

    fn handle_try_dispatch(&mut self, core: CoreId) -> SimResult<()> {
        if matches!(self.state.cores[core.index()], CoreState::Busy { .. }) {
            return Ok(());
        }
        let tile = self.state.tile_of_core(core);

        // Refill spilled tasks if the queue ran dry, or if a spilled task
        // now precedes everything left in the queue (it must run before the
        // GVT can pass it).
        {
            let tile_state = &self.state.tiles[tile.index()];
            let spilled_first = tile_state.spilled.first().copied();
            let idle_first = tile_state.idle.first().copied();
            let should_refill = match (spilled_first, idle_first) {
                (Some(_), None) => true,
                (Some(s), Some(i)) => s < i,
                (None, _) => false,
            };
            if should_refill {
                self.state.refill_tile(tile);
            }
        }

        // Work stealing (idealized): grab the earliest task of the victim.
        if self.state.tiles[tile.index()].idle.is_empty() && self.mapper.steals() {
            let idle = self.state.idle_per_tile();
            if let Some(victim) = self.mapper.steal_victim(tile, &idle) {
                self.state.steal_task(tile, victim);
            }
        }

        let Some(candidate) = self.select_candidate(tile) else {
            self.account_core_transition(core, CoreState::Idle { since: self.now });
            return Ok(());
        };

        // A dispatch reserves a commit-queue entry; if the commit queue is
        // full, either abort the latest finished task (if the candidate
        // precedes it) or stall the core.
        let commit_cap = self.state.cfg.commit_queue_per_tile();
        if self.state.tiles[tile.index()].commit_queue_occupancy() >= commit_cap {
            let candidate_key = self.state.record(candidate).key();
            let latest_finished = self.state.tiles[tile.index()].finished.last().copied();
            match latest_finished {
                Some(last_key) if candidate_key < last_key => {
                    self.state.abort_task(last_key.1, tile);
                    self.process_wakes();
                    // The resource abort's cascade may have touched the
                    // candidate itself (e.g. discarded it because its parent
                    // aborted); restart the dispatch decision from scratch.
                    if self.state.record(candidate).status != TaskStatus::Idle {
                        return self.handle_try_dispatch(core);
                    }
                }
                _ => {
                    self.account_core_transition(core, CoreState::Stalled { since: self.now });
                    return Ok(());
                }
            }
        }

        // Dispatch: remove from the idle queue and execute the body.
        let key = self.state.record(candidate).key();
        self.state.tiles[tile.index()].idle.remove(&key);
        self.state.tiles[tile.index()].running.push(candidate);
        self.account_core_transition(core, CoreState::Busy { task: candidate });
        {
            let (ts, hint) = {
                let desc = &self.state.record(candidate).desc;
                (desc.ts, desc.hint)
            };
            self.state.observers.dequeue(&DequeueEvent {
                task: candidate,
                ts,
                hint,
                tile,
                core,
                now: self.now,
            });
        }

        let outcome = self.execute_body(candidate, core);
        self.executed_bodies += 1;
        let finish_at = self.now + outcome.cycles.max(1);
        {
            let dispatched_at = self.now;
            let rec = self.state.record_mut(candidate);
            rec.exec_cycles = outcome.cycles.max(1);
            rec.dispatched_at = dispatched_at;
            rec.read_set = outcome.read_lines;
            rec.write_set = outcome.write_lines;
            rec.undo = outcome.undo;
            rec.access_trace = outcome.trace;
            rec.status = TaskStatus::Running { core, finish_at };
        }
        // If the body's own accesses triggered an abort of this very task
        // (possible only through a parent abort cascade racing in the same
        // event, which cannot happen, but keep the invariant explicit), the
        // registration below would be stale; register unconditionally since
        // aborted tasks are unregistered when settled.
        self.state.register_access_sets(candidate);
        self.pending_children.insert(candidate, outcome.children);
        self.schedule(finish_at, Event::Finish(core));
        self.process_wakes();
        Ok(())
    }

    fn execute_body(&mut self, task: TaskId, core: CoreId) -> ExecutionOutcome {
        let (fid, ts, args) = {
            let rec = self.state.record(task);
            (rec.desc.fid, rec.desc.ts, rec.desc.args.clone())
        };
        let mut ctx = TaskCtx::new(&mut self.state, task, core, ts);
        self.app.run_task(fid, ts, &args, &mut ctx);
        ctx.into_outcome()
    }

    // ------------------------------------------------------------------
    // Finish
    // ------------------------------------------------------------------

    fn handle_finish(&mut self, core: CoreId) -> SimResult<()> {
        let CoreState::Busy { task } = self.state.cores[core.index()] else {
            return Ok(());
        };
        let tile = self.state.tile_of_core(core);
        self.state.tiles[tile.index()].running.retain(|&t| t != task);

        let aborted = self.state.record(task).aborted;
        if aborted {
            // The execution was doomed while in flight: drop the children it
            // wanted to create and requeue (or discard) the task itself.
            self.pending_children.remove(&task);
            self.state.settle_aborted_running_task(task);
        } else {
            self.state.mark_finished(task);
            // Children become visible to the system when their parent's
            // execution completes.
            let children = self.pending_children.remove(&task).unwrap_or_default();
            for child in children {
                self.enqueue_task(child.fid, child.ts, child.hint, child.args, Some(task))?;
            }
        }

        self.state.cores[core.index()] = CoreState::Idle { since: self.now };
        self.process_wakes();
        self.handle_try_dispatch(core)
    }

    // ------------------------------------------------------------------
    // Commits (GVT) and load balancing
    // ------------------------------------------------------------------

    fn handle_gvt(&mut self) {
        self.state.observers.gvt_update(self.now);
        // Each tile exchanges a GVT update with the arbiter (tile 0).
        let arbiter = TileId(0);
        for t in 0..self.state.cfg.num_tiles() {
            let hops = self.state.mesh.hops(TileId(t as u32), arbiter);
            let flits = self.state.mesh.control_flits();
            self.state.record_traffic(TrafficClass::Gvt, hops, 2 * flits);
        }

        let frontier = self.state.gvt();
        // If the earliest unfinished task was spilled to memory, no commit
        // can pass it and no dispatch will naturally refill it (its tile may
        // have plenty of later idle tasks); pull it back in so the system
        // keeps making forward progress.
        if let Some((_, id)) = frontier {
            if self.state.record(id).status == TaskStatus::Spilled {
                self.state.unspill_task(id);
            }
        }
        let mut to_commit: Vec<TaskId> = Vec::new();
        for tile in 0..self.state.cfg.num_tiles() {
            for &(ts, id) in self.state.tiles[tile].finished.iter() {
                let before_frontier = match frontier {
                    Some(f) => (ts, id) < f,
                    None => true,
                };
                if before_frontier {
                    to_commit.push(id);
                }
            }
        }
        // Commit in key order so parents commit before their children.
        to_commit.sort_by_key(|&id| self.state.record(id).key());
        for id in to_commit {
            let (tile, bucket, cycles) = self.state.commit_task(id);
            self.mapper.on_commit(tile, bucket, cycles);
        }

        // Relaxed commit of independent equal-timestamp tasks (unordered
        // programs): finished tasks at the frontier timestamp whose parent
        // has committed and whose data no earlier uncommitted task touches.
        if self.state.cfg.spec.relaxed_equal_ts_commit {
            if let Some((front_ts, _)) = self.state.gvt() {
                let mut relaxed: Vec<TaskId> = Vec::new();
                for tile in 0..self.state.cfg.num_tiles() {
                    for &(ts, id) in self.state.tiles[tile].finished.iter() {
                        if ts == front_ts && self.state.can_commit_relaxed(id) {
                            relaxed.push(id);
                        }
                    }
                }
                relaxed.sort_by_key(|&id| self.state.record(id).key());
                for id in relaxed {
                    // Re-check: earlier relaxed commits may have changed the
                    // line table, but only by *removing* earlier accessors,
                    // which can only make more tasks eligible, never fewer.
                    let (tile, bucket, cycles) = self.state.commit_task(id);
                    self.mapper.on_commit(tile, bucket, cycles);
                }
            }
        }

        self.process_wakes();
        if self.state.remaining_tasks > 0 {
            self.schedule(self.now + self.state.cfg.spec.gvt_epoch, Event::Gvt);
        }
    }

    fn handle_lb_epoch(&mut self) {
        let idle = self.state.idle_per_tile();
        if self.mapper.on_lb_epoch(self.now, &idle) {
            self.state.observers.lb_reconfig(self.now);
        }
        if self.state.remaining_tasks > 0 {
            self.schedule(self.now + self.state.cfg.lb_epoch, Event::LbEpoch);
        }
    }
}
