//! The application-facing Swarm programming interface.
//!
//! Applications are collections of *task functions*. Each task receives its
//! timestamp and arguments and runs against a [`TaskCtx`], which provides
//! speculative loads/stores to the simulated shared memory and the
//! `swarm::enqueue` primitive for creating child tasks with spatial hints
//! (Listing 1 and 2 of the paper map directly onto this API).

use swarm_mem::{SimMemory, UndoEntry};
use swarm_types::{Addr, CoreId, Hint, LineAddr, TaskFnId, TaskId, Timestamp};

use crate::state::SimState;
use crate::task::{InitialTask, PendingChild};

/// A speculative parallel program runnable on the simulator.
///
/// Implementations hold their *read-only* data (graph topology, circuit
/// netlist, table schemas, ...) in ordinary Rust structures; all *mutable
/// shared state* must live in the simulated memory and be accessed through
/// the [`TaskCtx`], so that conflict detection and rollback see it.
pub trait SwarmApp {
    /// Application name (used in reports, e.g. `"sssp-fine"`).
    fn name(&self) -> &str;

    /// Initialise the simulated shared memory before the parallel region
    /// starts (the sequential setup the paper fast-forwards over). Writes
    /// made here are not speculative and are not counted in any statistic.
    fn init_memory(&self, _mem: &mut SimMemory) {}

    /// The tasks enqueued before `swarm::run()` is called.
    fn initial_tasks(&self) -> Vec<InitialTask>;

    /// Run one task. `fid` selects the task function; `ts` and `args` are the
    /// values passed at enqueue time.
    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>);

    /// Number of distinct task functions (the "Task Funcs" column of
    /// Table I).
    fn num_task_fns(&self) -> usize {
        1
    }

    /// Check the final committed memory state against a serial reference
    /// execution.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch found.
    fn validate(&self, _mem: &SimMemory) -> Result<(), String> {
        Ok(())
    }
}

/// Result of executing one task body, handed back to the engine for
/// integration into the task's speculative record.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// Cycles consumed by the execution (memory, compute and task-management
    /// overheads).
    pub cycles: u64,
    /// Distinct cache lines read.
    pub read_lines: Vec<LineAddr>,
    /// Distinct cache lines written.
    pub write_lines: Vec<LineAddr>,
    /// Undo-log entries for every store performed (already applied).
    pub undo: Vec<UndoEntry>,
    /// Word-granular access trace (profiling only).
    pub trace: Vec<(Addr, bool)>,
    /// Children requested via [`TaskCtx::enqueue`].
    pub children: Vec<PendingChild>,
}

/// Execution context handed to a running task.
///
/// All methods charge simulated cycles to the running task; the sum becomes
/// the task's execution latency.
pub struct TaskCtx<'a> {
    state: &'a mut SimState,
    task: TaskId,
    core: CoreId,
    ts: Timestamp,
    cycles: u64,
    // Plain vecs, deduplicated once at outcome time: a task's footprint is a
    // handful of lines, so push + sort + dedup beats per-access hashing, and
    // the sorted result is deterministic regardless of access order.
    read_lines: Vec<LineAddr>,
    write_lines: Vec<LineAddr>,
    undo: Vec<UndoEntry>,
    trace: Vec<(Addr, bool)>,
    children: Vec<PendingChild>,
}

impl<'a> TaskCtx<'a> {
    /// Create a context for `task` running on `core`. Charges the base task
    /// overhead (dequeue + task body setup) immediately.
    ///
    /// The access-tracking containers are borrowed from the state's
    /// recycled buffers (one execution is in flight at a time) and the
    /// children list from a pool (one children buffer stays in flight per
    /// busy core until its `Finish` event), so a steady-state dispatch
    /// allocates nothing; [`TaskCtx::into_outcome`] and the engine return
    /// them once the outcome is integrated.
    pub(crate) fn new(state: &'a mut SimState, task: TaskId, core: CoreId, ts: Timestamp) -> Self {
        let base = state.cfg.spec.task_base_cost + state.cfg.spec.task_mgmt_cost;
        let read_lines = std::mem::take(&mut state.ctx_read_buf);
        let write_lines = std::mem::take(&mut state.ctx_write_buf);
        let undo = std::mem::take(&mut state.ctx_undo);
        let trace = std::mem::take(&mut state.ctx_trace);
        let children = state.ctx_children_pool.pop().unwrap_or_default();
        debug_assert!(read_lines.is_empty() && write_lines.is_empty());
        debug_assert!(undo.is_empty() && trace.is_empty() && children.is_empty());
        TaskCtx {
            state,
            task,
            core,
            ts,
            cycles: base,
            read_lines,
            write_lines,
            undo,
            trace,
            children,
        }
    }

    /// This task's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Speculatively read the 64-bit word at `addr`.
    pub fn read(&mut self, addr: Addr) -> u64 {
        let (value, latency) = self.state.speculative_read(self.task, self.core, addr, self.cycles);
        self.cycles += latency;
        self.read_lines.push(LineAddr::containing(addr));
        if self.state.profiling {
            self.trace.push((addr, false));
        }
        value
    }

    /// Speculatively write `value` to the 64-bit word at `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        let (undo, latency) =
            self.state.speculative_write(self.task, self.core, addr, value, self.cycles);
        self.cycles += latency;
        self.write_lines.push(LineAddr::containing(addr));
        self.undo.push(undo);
        if self.state.profiling {
            self.trace.push((addr, true));
        }
    }

    /// Read-modify-write convenience: `read` then `write(f(old))`, returning
    /// the old value.
    pub fn update(&mut self, addr: Addr, f: impl FnOnce(u64) -> u64) -> u64 {
        let old = self.read(addr);
        self.write(addr, f(old));
        old
    }

    /// Charge `cycles` of pure computation to this task.
    pub fn compute(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Enqueue a child task (`swarm::enqueue(taskFn, timestamp, hint,
    /// args...)` in the paper's API).
    ///
    /// # Panics
    ///
    /// Panics if `ts` is lower than this task's timestamp: Swarm only allows
    /// children with equal or later timestamps.
    pub fn enqueue(&mut self, fid: TaskFnId, ts: Timestamp, hint: Hint, args: Vec<u64>) {
        assert!(ts >= self.ts, "child timestamp {ts} is lower than parent timestamp {}", self.ts);
        self.cycles += self.state.cfg.spec.task_mgmt_cost;
        self.children.push(PendingChild { fid, ts, hint, args });
    }

    /// Number of children enqueued so far by this execution.
    pub fn children_enqueued(&self) -> usize {
        self.children.len()
    }

    /// Cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Tear the context down into an [`ExecutionOutcome`], charging the
    /// finish overhead.
    pub(crate) fn into_outcome(mut self) -> ExecutionOutcome {
        self.cycles += self.state.cfg.spec.task_mgmt_cost;
        let TaskCtx { cycles, mut read_lines, mut write_lines, undo, trace, children, .. } = self;
        // Sort + dedup the line lists: their order feeds line_table
        // registration and abort-cascade traversal, so it must not depend on
        // the order the task body happened to touch memory in.
        read_lines.sort_unstable();
        read_lines.dedup();
        write_lines.sort_unstable();
        write_lines.dedup();
        ExecutionOutcome { cycles, read_lines, write_lines, undo, trace, children }
    }
}
