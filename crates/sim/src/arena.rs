//! Free-listed task-record arena with a struct-of-arrays split of the hot
//! per-task fields.
//!
//! The seed kept one `Vec<TaskRecord>` indexed by [`TaskId`], where every
//! record carried its descriptor, speculative sets and undo log inline
//! (~200 bytes) and lived forever — the hot scans (candidate selection,
//! abort cascades, commit walks) pointer-chased whole records to read a
//! timestamp or a status byte, and a long run's memory grew with *total*
//! tasks, not *live* tasks.
//!
//! [`TaskArena`] splits a task in two:
//!
//! * **Hot scalars** (`ts`, `tile`, `status`, `hint_hash`, abort flags)
//!   live in one packed record per task, in a flat array indexed by id.
//!   They are exactly what the dispatch/abort/commit scans touch — and
//!   those scans read several of them per visited task, so packing them
//!   costs one cache line per task instead of one per field. Records are
//!   kept for the whole run — ids are handed out monotonically and never
//!   recycled, because `(ts, id)` is the architectural commit order.
//! * **The body** ([`TaskBody`]: arguments, read/write sets, undo log,
//!   children, trace) lives in a free-listed slot pool. A slot is
//!   reclaimed when its task commits or is discarded, and its `Vec`
//!   capacities are retained, so in steady state task creation and
//!   retirement allocate nothing and live memory is bounded by the number
//!   of in-flight tasks.

use swarm_mem::UndoEntry;
use swarm_types::{Addr, Hint, LineAddr, TaskFnId, TaskId, TileId, Timestamp};

use crate::task::{OrderKey, TaskDescriptor, TaskStatus};

/// Body-slot index marking "body reclaimed" (task committed or discarded).
const NO_BODY: u32 = u32::MAX;

/// The cold majority of a task's state: everything the per-cycle scans do
/// *not* touch. Stored in a free-listed arena slot; reclaimed (with `Vec`
/// capacities kept for the next task in the slot) on commit or discard.
#[derive(Debug, Clone, Default)]
pub struct TaskBody {
    /// Task function to run.
    pub fid: TaskFnId,
    /// Spatial hint, with `SAMEHINT` already resolved against the parent.
    pub hint: Hint,
    /// Load-balancer bucket (only set when the active mapper uses buckets).
    pub bucket: Option<u16>,
    /// Parent task, if any (initial tasks have none).
    pub parent: Option<TaskId>,
    /// Task arguments (the paper passes up to three in registers; additional
    /// ones spill to memory — we model the count, not the layout).
    pub args: Vec<u64>,
    /// Cache lines read by the current execution.
    pub read_set: Vec<LineAddr>,
    /// Cache lines written by the current execution.
    pub write_set: Vec<LineAddr>,
    /// Undo-log entries of the current execution (already applied).
    pub undo: Vec<UndoEntry>,
    /// Children created by the current execution.
    pub children: Vec<TaskId>,
    /// Word-granular accesses (addr, is_write) recorded when profiling on.
    pub access_trace: Vec<(Addr, bool)>,
    /// Cycles consumed by the current execution.
    pub exec_cycles: u64,
    /// Cycle at which the current execution was dispatched.
    pub dispatched_at: u64,
    /// Number of times this task has been aborted so far.
    pub abort_count: u32,
}

impl TaskBody {
    /// Clear all speculative state accumulated by the current execution
    /// (called after an abort, before the task is re-queued). Keeps every
    /// buffer's capacity.
    pub fn reset_execution(&mut self) {
        self.reset_speculation_only();
        self.exec_cycles = 0;
    }

    /// Roll back only the speculation bookkeeping of a running task (its
    /// undo entries have already been applied by the cascade); keep the
    /// timing so the engine can settle it at finish time.
    pub(crate) fn reset_speculation_only(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
        self.undo.clear();
        self.children.clear();
        self.access_trace.clear();
    }
}

/// The hot per-task scalars, packed into one record so that touching any of
/// a task's fields pulls the rest of them into cache with it. The scans that
/// motivated the original field-per-array split (status sweeps, key
/// comparisons) read *several* of these per visited task, so parallel arrays
/// cost one potential cache miss per field; packed, a task costs one.
#[derive(Debug, Clone)]
struct TaskMeta {
    ts: Timestamp,
    status: TaskStatus,
    tile: TileId,
    hint_hash: Option<u16>,
    aborted: bool,
    pending_discard: bool,
    /// Body slot; [`NO_BODY`] once reclaimed.
    body_of: u32,
    /// Earliest cycle at which the task may be dispatched or stolen: its
    /// delivery time at the destination tile under
    /// [`swarm_types::NocModel::Contention`]. Always 0 under the analytic
    /// model, so readiness checks compare against 0 and never bite there.
    ready_at: u64,
}

/// All task records of one simulation. See the module docs for the
/// hot/cold split and free-list layout.
#[derive(Debug, Default)]
pub struct TaskArena {
    /// Hot scalars, indexed by `TaskId.0` (never recycled).
    meta: Vec<TaskMeta>,
    /// Body slots; freed slots keep their `Vec` capacities for reuse.
    bodies: Vec<TaskBody>,
    /// Reclaimed body slots available for the next task.
    free: Vec<u32>,
}

impl TaskArena {
    /// An empty arena.
    pub fn new() -> Self {
        TaskArena::default()
    }

    /// Number of tasks ever created.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no task was ever created.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Number of tasks whose body slot is still live (neither committed
    /// nor discarded).
    pub fn live_bodies(&self) -> usize {
        self.bodies.len() - self.free.len()
    }

    /// Register a new task with status [`TaskStatus::Idle`], reusing a
    /// reclaimed body slot when one is free. Returns the new id.
    pub fn add(&mut self, desc: TaskDescriptor) -> TaskId {
        let id = TaskId(self.meta.len() as u64);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.bodies.push(TaskBody::default());
                (self.bodies.len() - 1) as u32
            }
        };
        let body = &mut self.bodies[slot as usize];
        debug_assert!(body.read_set.is_empty() && body.undo.is_empty(), "reclaimed slot is clean");
        body.fid = desc.fid;
        body.hint = desc.hint;
        body.bucket = desc.bucket;
        body.parent = desc.parent;
        body.args = desc.args;
        body.exec_cycles = 0;
        body.dispatched_at = 0;
        body.abort_count = 0;
        self.meta.push(TaskMeta {
            ts: desc.ts,
            status: TaskStatus::Idle,
            tile: desc.tile,
            hint_hash: desc.hint_hash,
            aborted: false,
            pending_discard: false,
            body_of: slot,
            ready_at: 0,
        });
        id
    }

    /// The task's program-order timestamp.
    #[inline]
    pub fn ts(&self, id: TaskId) -> Timestamp {
        self.meta[id.0 as usize].ts
    }

    /// The task's commit-order key `(ts, id)`.
    #[inline]
    pub fn key(&self, id: TaskId) -> OrderKey {
        (self.meta[id.0 as usize].ts, id)
    }

    /// The tile whose task unit currently holds the task.
    #[inline]
    pub fn tile(&self, id: TaskId) -> TileId {
        self.meta[id.0 as usize].tile
    }

    /// Move the task to another tile (work stealing).
    #[inline]
    pub fn set_tile(&mut self, id: TaskId, tile: TileId) {
        self.meta[id.0 as usize].tile = tile;
    }

    /// The task's lifecycle status. Valid for every task ever created,
    /// including committed and discarded ones.
    #[inline]
    pub fn status(&self, id: TaskId) -> TaskStatus {
        self.meta[id.0 as usize].status
    }

    /// Set the task's lifecycle status.
    #[inline]
    pub fn set_status(&mut self, id: TaskId, status: TaskStatus) {
        self.meta[id.0 as usize].status = status;
    }

    /// The 16-bit hashed hint used by dispatch same-hint serialization.
    #[inline]
    pub fn hint_hash(&self, id: TaskId) -> Option<u16> {
        self.meta[id.0 as usize].hint_hash
    }

    /// Whether the current (or just-completed) execution has been aborted.
    #[inline]
    pub fn is_aborted(&self, id: TaskId) -> bool {
        self.meta[id.0 as usize].aborted
    }

    /// Flag or clear the aborted-in-flight marker.
    #[inline]
    pub fn set_aborted(&mut self, id: TaskId, aborted: bool) {
        self.meta[id.0 as usize].aborted = aborted;
    }

    /// For an aborted, still-running task: whether it must be discarded
    /// (instead of requeued) when its core finally releases it.
    #[inline]
    pub fn pending_discard(&self, id: TaskId) -> bool {
        self.meta[id.0 as usize].pending_discard
    }

    /// Set the sticky discard-on-settle marker.
    #[inline]
    pub fn set_pending_discard(&mut self, id: TaskId, discard: bool) {
        self.meta[id.0 as usize].pending_discard = discard;
    }

    /// Earliest cycle at which the task may be dispatched or stolen (its
    /// network delivery time; 0 unless contention delayed it).
    #[inline]
    pub fn ready_at(&self, id: TaskId) -> u64 {
        self.meta[id.0 as usize].ready_at
    }

    /// Record the task's delivery time at its destination tile.
    #[inline]
    pub fn set_ready_at(&mut self, id: TaskId, at: u64) {
        self.meta[id.0 as usize].ready_at = at;
    }

    /// Whether an abort request against this task still makes sense.
    #[inline]
    pub fn key_is_live_for_abort(&self, id: TaskId) -> bool {
        !self.status(id).is_terminal() && !self.is_aborted(id)
    }

    /// The task's body. Panics if the body was reclaimed (the task
    /// committed or was discarded) — no engine path touches a retired
    /// task's body.
    #[inline]
    pub fn body(&self, id: TaskId) -> &TaskBody {
        let slot = self.meta[id.0 as usize].body_of;
        debug_assert_ne!(slot, NO_BODY, "body of retired task {id:?} accessed");
        &self.bodies[slot as usize]
    }

    /// Mutable access to the task's body. Panics if reclaimed.
    #[inline]
    pub fn body_mut(&mut self, id: TaskId) -> &mut TaskBody {
        let slot = self.meta[id.0 as usize].body_of;
        debug_assert_ne!(slot, NO_BODY, "body of retired task {id:?} accessed");
        &mut self.bodies[slot as usize]
    }

    /// Reclaim the task's body slot (on commit or discard): clear its
    /// buffers, keep their capacities, and make the slot available to the
    /// next [`TaskArena::add`].
    pub fn free_body(&mut self, id: TaskId) {
        let slot = std::mem::replace(&mut self.meta[id.0 as usize].body_of, NO_BODY);
        debug_assert_ne!(slot, NO_BODY, "body of {id:?} freed twice");
        let body = &mut self.bodies[slot as usize];
        body.args.clear();
        body.reset_execution();
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(ts: Timestamp) -> TaskDescriptor {
        TaskDescriptor {
            fid: 0,
            ts,
            hint: Hint::None,
            hint_hash: None,
            bucket: None,
            args: vec![1, 2, 3],
            parent: None,
            tile: TileId(0),
        }
    }

    #[test]
    fn ids_are_monotonic_and_hot_fields_readable() {
        let mut arena = TaskArena::new();
        let a = arena.add(desc(7));
        let b = arena.add(desc(3));
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(arena.ts(a), 7);
        assert_eq!(arena.key(b), (3, b));
        assert_eq!(arena.status(a), TaskStatus::Idle);
        assert_eq!(arena.body(a).args, vec![1, 2, 3]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.live_bodies(), 2);
    }

    #[test]
    fn freed_slots_are_recycled_clean_with_capacity() {
        let mut arena = TaskArena::new();
        let a = arena.add(desc(1));
        arena.body_mut(a).read_set.extend([LineAddr(1), LineAddr(2)]);
        arena.body_mut(a).undo.push(UndoEntry { addr: 8, old_value: 0, seq: 0 });
        let cap_before = arena.body(a).read_set.capacity();
        arena.set_status(a, TaskStatus::Committed);
        arena.free_body(a);
        assert_eq!(arena.live_bodies(), 0);
        // Status outlives the body.
        assert_eq!(arena.status(a), TaskStatus::Committed);

        let b = arena.add(desc(2));
        assert_eq!(arena.live_bodies(), 1);
        let body = arena.body(b);
        assert!(body.read_set.is_empty() && body.undo.is_empty());
        assert!(body.read_set.capacity() >= cap_before);
    }

    #[test]
    fn reset_execution_clears_speculative_state() {
        let mut arena = TaskArena::new();
        let a = arena.add(desc(1));
        let body = arena.body_mut(a);
        body.read_set.push(LineAddr(1));
        body.write_set.push(LineAddr(2));
        body.children.push(TaskId(9));
        body.exec_cycles = 100;
        body.reset_execution();
        assert!(body.read_set.is_empty());
        assert!(body.write_set.is_empty());
        assert!(body.children.is_empty());
        assert_eq!(body.exec_cycles, 0);
    }
}
