//! A sorted-vector ordered set of [`OrderKey`]s for the per-tile task
//! queues.
//!
//! The tile sets (idle, finished, spilled) were `BTreeSet<OrderKey>`: every
//! task paid several pointer-chasing tree operations per lifecycle step, and
//! on the paper's machines the sets are *small* (bounded by the task-queue
//! and commit-queue capacities, tens of entries). [`KeyList`] stores the
//! keys in a sorted `Vec` with a `head` offset:
//!
//! * lookups are a binary search over a contiguous slice;
//! * removing the minimum — the overwhelmingly common removal, performed by
//!   every dispatch, commit and refill — just bumps `head` (O(1), with
//!   amortized compaction);
//! * inserting a key larger than the current maximum — the common insert,
//!   since task keys mostly arrive in creation order — is a push.
//!
//! The API mirrors the `BTreeSet` subset the simulator used (`first`,
//! `last`, `insert`, `remove`, `iter`, `len`), with identical set semantics
//! (duplicate inserts and misses are no-ops), so the two are drop-in
//! interchangeable.

use crate::task::OrderKey;

/// A sorted set of commit-order keys. See the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub struct KeyList {
    /// `keys[head..]` is sorted ascending and duplicate-free.
    keys: Vec<OrderKey>,
    /// Number of already-removed slots at the front of `keys`.
    head: usize,
}

impl KeyList {
    /// An empty set.
    pub fn new() -> Self {
        KeyList::default()
    }

    /// Number of keys in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len() - self.head
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.len() == self.head
    }

    /// The smallest key, if any.
    #[inline]
    pub fn first(&self) -> Option<&OrderKey> {
        self.keys.get(self.head)
    }

    /// The largest key, if any.
    #[inline]
    pub fn last(&self) -> Option<&OrderKey> {
        if self.is_empty() {
            None
        } else {
            self.keys.last()
        }
    }

    /// Iterate the keys in ascending order.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, OrderKey> {
        self.keys[self.head..].iter()
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, key: &OrderKey) -> bool {
        self.keys[self.head..].binary_search(key).is_ok()
    }

    /// Insert `key`; a no-op if it is already present (set semantics).
    pub fn insert(&mut self, key: OrderKey) {
        if self.is_empty() {
            self.keys.clear();
            self.head = 0;
            self.keys.push(key);
            return;
        }
        let last = *self.keys.last().expect("non-empty");
        if key > last {
            self.keys.push(key);
            return;
        }
        let first = self.keys[self.head];
        if key < first {
            // Reuse a vacated front slot when one exists.
            if self.head > 0 {
                self.head -= 1;
                self.keys[self.head] = key;
            } else {
                self.keys.insert(0, key);
            }
            return;
        }
        match self.keys[self.head..].binary_search(&key) {
            Ok(_) => {}
            Err(pos) => self.keys.insert(self.head + pos, key),
        }
    }

    /// Remove `key`; returns whether it was present.
    pub fn remove(&mut self, key: &OrderKey) -> bool {
        let Ok(pos) = self.keys[self.head..].binary_search(key) else {
            return false;
        };
        if pos == 0 {
            // Removing the minimum: the dispatch/commit/refill fast path.
            self.head += 1;
            if self.head == self.keys.len() {
                self.keys.clear();
                self.head = 0;
            } else if self.head >= 32 && self.head >= self.keys.len() - self.head {
                // Amortized compaction: at most one shift per removed slot.
                self.keys.drain(..self.head);
                self.head = 0;
            }
        } else {
            self.keys.remove(self.head + pos);
        }
        true
    }
}

impl<'a> IntoIterator for &'a KeyList {
    type Item = &'a OrderKey;
    type IntoIter = std::slice::Iter<'a, OrderKey>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::TaskId;

    fn k(ts: u64, id: u64) -> OrderKey {
        (ts, TaskId(id))
    }

    #[test]
    fn insert_remove_first_last_match_btreeset_semantics() {
        let mut list = KeyList::new();
        assert!(list.is_empty() && list.first().is_none() && list.last().is_none());
        for key in [k(5, 1), k(1, 2), k(3, 3), k(1, 1), k(9, 0)] {
            list.insert(key);
        }
        list.insert(k(3, 3)); // duplicate: no-op
        assert_eq!(list.len(), 5);
        assert_eq!(list.first(), Some(&k(1, 1)));
        assert_eq!(list.last(), Some(&k(9, 0)));
        let in_order: Vec<_> = list.iter().copied().collect();
        assert_eq!(in_order, vec![k(1, 1), k(1, 2), k(3, 3), k(5, 1), k(9, 0)]);

        assert!(list.remove(&k(3, 3)));
        assert!(!list.remove(&k(3, 3)), "second remove misses");
        assert!(list.remove(&k(1, 1)), "min removal");
        assert_eq!(list.first(), Some(&k(1, 2)));
        assert_eq!(list.len(), 3);
        assert!(list.contains(&k(5, 1)) && !list.contains(&k(1, 1)));
    }

    #[test]
    fn head_slots_are_reused_and_compacted() {
        let mut list = KeyList::new();
        for i in 0..100u64 {
            list.insert(k(i, i));
        }
        // Drain from the front (the dispatch pattern).
        for i in 0..99u64 {
            assert!(list.remove(&k(i, i)));
            assert_eq!(list.len() as u64, 99 - i);
        }
        assert_eq!(list.first(), Some(&k(99, 99)));
        // A below-minimum insert reuses a vacated front slot.
        list.insert(k(0, 0));
        assert_eq!(list.first(), Some(&k(0, 0)));
        assert_eq!(list.len(), 2);
        // Empty-out resets the head entirely.
        assert!(list.remove(&k(0, 0)) && list.remove(&k(99, 99)));
        assert!(list.is_empty());
        list.insert(k(7, 7));
        assert_eq!(list.iter().copied().collect::<Vec<_>>(), vec![k(7, 7)]);
    }

    #[test]
    fn randomized_against_btreeset_reference() {
        use std::collections::BTreeSet;
        // Deterministic xorshift; no external RNG needed here.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut list = KeyList::new();
        let mut reference = BTreeSet::new();
        for _ in 0..4000 {
            let key = k(step() % 50, step() % 8);
            if step() % 3 == 0 {
                assert_eq!(list.remove(&key), reference.remove(&key));
            } else {
                list.insert(key);
                reference.insert(key);
            }
            assert_eq!(list.len(), reference.len());
            assert_eq!(list.first(), reference.first());
            assert_eq!(list.last(), reference.last());
        }
        assert!(list.iter().copied().eq(reference.iter().copied()));
    }
}
