//! Task descriptors and lifecycle states.
//!
//! The per-task speculative state itself (read/write sets, undo log,
//! children, timing) lives in the free-listed [`crate::arena::TaskArena`];
//! this module holds the value types that describe a task at enqueue time
//! and its lifecycle status.

use swarm_types::{CoreId, Hint, TaskFnId, TaskId, TileId, Timestamp};

/// The commit-order key of a task: tasks appear to execute in `(timestamp,
/// creation id)` order. Children always have larger ids than their parents,
/// so a parent always precedes its children in this order.
pub type OrderKey = (Timestamp, TaskId);

/// A task as handed to the hardware at enqueue time: the contents of a
/// task-queue entry, before an id is assigned by the
/// [`crate::arena::TaskArena`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDescriptor {
    /// Task function to run.
    pub fid: TaskFnId,
    /// Program-order timestamp.
    pub ts: Timestamp,
    /// Spatial hint, with `SAMEHINT` already resolved against the parent.
    pub hint: Hint,
    /// 16-bit hashed hint used by the dispatch serialization logic.
    pub hint_hash: Option<u16>,
    /// Load-balancer bucket (only set when the active mapper uses buckets).
    pub bucket: Option<u16>,
    /// Task arguments (the paper passes up to three in registers; additional
    /// ones spill to memory — we model the count, not the layout).
    pub args: Vec<u64>,
    /// Parent task, if any (initial tasks have none).
    pub parent: Option<TaskId>,
    /// Tile whose task unit will hold this task.
    pub tile: TileId,
}

/// Where a task currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// In a tile's task queue, waiting to be dispatched.
    Idle,
    /// Executing (speculatively) on a core.
    Running {
        /// Core executing the task.
        core: CoreId,
        /// Cycle at which the execution completes.
        finish_at: u64,
    },
    /// Finished execution; holds a commit-queue entry awaiting the GVT.
    Finished,
    /// Committed; architectural state is final.
    Committed,
    /// Spilled to memory by the coalescer; will be refilled later.
    Spilled,
    /// Removed entirely (its parent aborted, so it will be re-created by the
    /// parent's re-execution, or the run ended).
    Discarded,
}

impl TaskStatus {
    /// Whether the task still occupies a task-queue entry in its tile.
    pub fn holds_task_queue_entry(self) -> bool {
        matches!(self, TaskStatus::Idle | TaskStatus::Running { .. } | TaskStatus::Finished)
    }

    /// Whether the task is finished with its current execution attempt.
    pub fn is_terminal(self) -> bool {
        matches!(self, TaskStatus::Committed | TaskStatus::Discarded)
    }
}

/// A task created by the application before the simulation starts
/// (the `swarm::enqueue` calls made from `main`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialTask {
    /// Task function.
    pub fid: TaskFnId,
    /// Timestamp.
    pub ts: Timestamp,
    /// Spatial hint.
    pub hint: Hint,
    /// Arguments.
    pub args: Vec<u64>,
}

impl InitialTask {
    /// Convenience constructor.
    pub fn new(fid: TaskFnId, ts: Timestamp, hint: Hint, args: Vec<u64>) -> Self {
        InitialTask { fid, ts, hint, args }
    }
}

/// A child task requested by a running task body, before it has been
/// assigned an id and a destination tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingChild {
    /// Task function.
    pub fid: TaskFnId,
    /// Timestamp (must be >= the parent's).
    pub ts: Timestamp,
    /// Hint as given by the program (may be `SAMEHINT`).
    pub hint: Hint,
    /// Arguments.
    pub args: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_sorts_by_timestamp_then_id() {
        let key = |ts, id| -> OrderKey { (ts, TaskId(id)) };
        assert!(key(1, 5) < key(2, 1));
        assert!(key(3, 1) < key(3, 2));
    }

    #[test]
    fn status_queue_occupancy() {
        assert!(TaskStatus::Idle.holds_task_queue_entry());
        assert!(TaskStatus::Finished.holds_task_queue_entry());
        assert!(!TaskStatus::Spilled.holds_task_queue_entry());
        assert!(!TaskStatus::Committed.holds_task_queue_entry());
        assert!(TaskStatus::Committed.is_terminal());
        assert!(TaskStatus::Discarded.is_terminal());
        assert!(!TaskStatus::Idle.is_terminal());
    }
}
