//! Task descriptors and per-task speculative state.

use swarm_mem::UndoEntry;
use swarm_types::{CoreId, Hint, LineAddr, TaskFnId, TaskId, TileId, Timestamp};

/// The commit-order key of a task: tasks appear to execute in `(timestamp,
/// creation id)` order. Children always have larger ids than their parents,
/// so a parent always precedes its children in this order.
pub type OrderKey = (Timestamp, TaskId);

/// A task known to the hardware: the contents of a task-queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDescriptor {
    /// Unique, monotonically increasing id.
    pub id: TaskId,
    /// Task function to run.
    pub fid: TaskFnId,
    /// Program-order timestamp.
    pub ts: Timestamp,
    /// Spatial hint, with `SAMEHINT` already resolved against the parent.
    pub hint: Hint,
    /// 16-bit hashed hint used by the dispatch serialization logic.
    pub hint_hash: Option<u16>,
    /// Load-balancer bucket (only set when the active mapper uses buckets).
    pub bucket: Option<u16>,
    /// Task arguments (the paper passes up to three in registers; additional
    /// ones spill to memory — we model the count, not the layout).
    pub args: Vec<u64>,
    /// Parent task, if any (initial tasks have none).
    pub parent: Option<TaskId>,
    /// Tile whose task unit currently holds this task.
    pub tile: TileId,
}

impl TaskDescriptor {
    /// The task's commit-order key.
    pub fn key(&self) -> OrderKey {
        (self.ts, self.id)
    }
}

/// Where a task currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// In a tile's task queue, waiting to be dispatched.
    Idle,
    /// Executing (speculatively) on a core.
    Running {
        /// Core executing the task.
        core: CoreId,
        /// Cycle at which the execution completes.
        finish_at: u64,
    },
    /// Finished execution; holds a commit-queue entry awaiting the GVT.
    Finished,
    /// Committed; architectural state is final.
    Committed,
    /// Spilled to memory by the coalescer; will be refilled later.
    Spilled,
    /// Removed entirely (its parent aborted, so it will be re-created by the
    /// parent's re-execution, or the run ended).
    Discarded,
}

impl TaskStatus {
    /// Whether the task still occupies a task-queue entry in its tile.
    pub fn holds_task_queue_entry(self) -> bool {
        matches!(self, TaskStatus::Idle | TaskStatus::Running { .. } | TaskStatus::Finished)
    }

    /// Whether the task is finished with its current execution attempt.
    pub fn is_terminal(self) -> bool {
        matches!(self, TaskStatus::Committed | TaskStatus::Discarded)
    }
}

/// Full speculative state of a task tracked by the simulator.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The task descriptor.
    pub desc: TaskDescriptor,
    /// Lifecycle status.
    pub status: TaskStatus,
    /// Whether the current (or just-completed) execution has been aborted
    /// and must be re-run (or discarded if the parent aborted too).
    pub aborted: bool,
    /// For an aborted, still-running task: whether it should be discarded
    /// (its parent also aborted) instead of requeued when its core frees.
    pub pending_discard: bool,
    /// Cache lines read by the current execution.
    pub read_set: Vec<LineAddr>,
    /// Cache lines written by the current execution.
    pub write_set: Vec<LineAddr>,
    /// Undo-log entries of the current execution (already applied to memory).
    pub undo: Vec<UndoEntry>,
    /// Children created by the current execution.
    pub children: Vec<TaskId>,
    /// Cycles consumed by the current execution.
    pub exec_cycles: u64,
    /// Cycle at which the current execution was dispatched.
    pub dispatched_at: u64,
    /// Number of times this task has been aborted so far.
    pub abort_count: u32,
    /// Word-granular accesses (addr, is_write) recorded when profiling is on.
    pub access_trace: Vec<(u64, bool)>,
}

impl TaskRecord {
    /// Create a fresh record for a newly enqueued task.
    pub fn new(desc: TaskDescriptor) -> Self {
        TaskRecord {
            desc,
            status: TaskStatus::Idle,
            aborted: false,
            pending_discard: false,
            read_set: Vec::new(),
            write_set: Vec::new(),
            undo: Vec::new(),
            children: Vec::new(),
            exec_cycles: 0,
            dispatched_at: 0,
            abort_count: 0,
            access_trace: Vec::new(),
        }
    }

    /// The task's commit-order key.
    pub fn key(&self) -> OrderKey {
        self.desc.key()
    }

    /// Clear all speculative state accumulated by the current execution
    /// (called after an abort, before the task is re-queued).
    pub fn reset_execution(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
        self.undo.clear();
        self.children.clear();
        self.exec_cycles = 0;
        self.access_trace.clear();
    }
}

/// A task created by the application before the simulation starts
/// (the `swarm::enqueue` calls made from `main`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialTask {
    /// Task function.
    pub fid: TaskFnId,
    /// Timestamp.
    pub ts: Timestamp,
    /// Spatial hint.
    pub hint: Hint,
    /// Arguments.
    pub args: Vec<u64>,
}

impl InitialTask {
    /// Convenience constructor.
    pub fn new(fid: TaskFnId, ts: Timestamp, hint: Hint, args: Vec<u64>) -> Self {
        InitialTask { fid, ts, hint, args }
    }
}

/// A child task requested by a running task body, before it has been
/// assigned an id and a destination tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingChild {
    /// Task function.
    pub fid: TaskFnId,
    /// Timestamp (must be >= the parent's).
    pub ts: Timestamp,
    /// Hint as given by the program (may be `SAMEHINT`).
    pub hint: Hint,
    /// Arguments.
    pub args: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(id: u64, ts: Timestamp) -> TaskDescriptor {
        TaskDescriptor {
            id: TaskId(id),
            fid: 0,
            ts,
            hint: Hint::None,
            hint_hash: None,
            bucket: None,
            args: vec![],
            parent: None,
            tile: TileId(0),
        }
    }

    #[test]
    fn key_orders_by_timestamp_then_id() {
        assert!(desc(5, 1).key() < desc(1, 2).key());
        assert!(desc(1, 3).key() < desc(2, 3).key());
    }

    #[test]
    fn status_queue_occupancy() {
        assert!(TaskStatus::Idle.holds_task_queue_entry());
        assert!(TaskStatus::Finished.holds_task_queue_entry());
        assert!(!TaskStatus::Spilled.holds_task_queue_entry());
        assert!(!TaskStatus::Committed.holds_task_queue_entry());
        assert!(TaskStatus::Committed.is_terminal());
        assert!(TaskStatus::Discarded.is_terminal());
        assert!(!TaskStatus::Idle.is_terminal());
    }

    #[test]
    fn reset_execution_clears_speculative_state() {
        let mut rec = TaskRecord::new(desc(1, 1));
        rec.read_set.push(LineAddr(1));
        rec.write_set.push(LineAddr(2));
        rec.children.push(TaskId(9));
        rec.exec_cycles = 100;
        rec.reset_execution();
        assert!(rec.read_set.is_empty());
        assert!(rec.write_set.is_empty());
        assert!(rec.children.is_empty());
        assert_eq!(rec.exec_cycles, 0);
    }
}
