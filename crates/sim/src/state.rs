//! Mutable simulation state: tiles, cores, speculative task records, the
//! line-access table used for conflict detection, and all statistics
//! accumulators.
//!
//! The state object knows how to perform the *mechanisms* of the Swarm
//! substrate — enqueue with spilling, conflict detection, abort cascades with
//! rollback, commits — while the [`crate::engine::Engine`] drives *when* they
//! happen (event ordering, dispatch policy, GVT epochs).
//!
//! Task records live in a [`TaskArena`] (struct-of-arrays hot fields plus a
//! free-listed body pool), and every conflict/abort path works out of
//! persistent scratch buffers on this struct instead of allocating per
//! conflict, so a steady-state simulation step performs no heap allocation.

use swarm_mem::{AccessKind, CacheModel, HitLevel, SimMemory, UndoEntry};
use swarm_noc::{LinkNet, Mesh, TrafficClass};
use swarm_types::{Addr, CoreId, LineAddr, NocModel, SystemConfig, TaskId, TileId};

use crate::arena::TaskArena;
use crate::fault::FaultRuntime;
use crate::key_list::KeyList;
use crate::line_table::LineTable;
use crate::observer::{
    AbortEvent, CommitEvent, LinkOccupancyEvent, NetworkEvent, ObserverHub, SpillDirection,
    SpillEvent,
};
use crate::task::{OrderKey, PendingChild, TaskDescriptor, TaskStatus};

/// What a core is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// No dispatchable task was available.
    Idle {
        /// Cycle at which the core became idle.
        since: u64,
    },
    /// Blocked because the tile's commit queue is full.
    Stalled {
        /// Cycle at which the core stalled.
        since: u64,
    },
    /// Executing a task.
    Busy {
        /// The running task.
        task: TaskId,
    },
}

/// Per-tile task unit state: the task queue (idle + running + finished
/// entries), the commit queue (finished entries), and the spill buffer.
#[derive(Debug, Clone, Default)]
pub struct TileState {
    /// Dispatchable tasks, ordered by commit key.
    pub idle: KeyList,
    /// Tasks currently running on this tile's cores.
    pub running: Vec<TaskId>,
    /// Finished tasks holding commit-queue entries, ordered by commit key.
    pub finished: KeyList,
    /// Tasks spilled to memory by the coalescer, ordered by commit key.
    pub spilled: KeyList,
}

impl TileState {
    /// Number of occupied task-queue entries.
    pub fn task_queue_occupancy(&self) -> usize {
        self.idle.len() + self.running.len() + self.finished.len()
    }

    /// Number of occupied (or reserved) commit-queue entries.
    pub fn commit_queue_occupancy(&self) -> usize {
        self.running.len() + self.finished.len()
    }
}

/// The complete mutable state of one simulation.
#[derive(Debug)]
pub struct SimState {
    /// System configuration.
    pub cfg: SystemConfig,
    /// Simulated shared memory.
    pub mem: SimMemory,
    /// Cache hierarchy model.
    pub caches: CacheModel,
    /// Network model.
    pub mesh: Mesh,
    /// Per-link contention state: `Some` only under
    /// [`NocModel::Contention`]; `None` keeps the analytic fast path intact.
    pub(crate) links: Option<LinkNet>,
    /// The engine's current cycle, mirrored here at every event so state
    /// methods can time the messages they send without threading a clock
    /// parameter through every mechanism.
    pub(crate) now_cycle: u64,
    /// Speculative access table: line -> uncommitted readers/writers. An
    /// open-addressed flat table (see [`crate::line_table`]): it is consulted
    /// on every speculative access, and first SipHash, then the `HashMap`
    /// control-byte machinery, dominated its cost.
    pub line_table: LineTable,
    /// All task records: hot scalars in struct-of-arrays form, heavy bodies
    /// in free-listed slots reclaimed on commit/discard.
    pub tasks: TaskArena,
    /// Per-tile task unit state.
    pub tiles: Vec<TileState>,
    /// Per-core state.
    pub cores: Vec<CoreState>,
    /// Number of tasks that are neither committed nor discarded; the run
    /// terminates when this reaches zero.
    pub remaining_tasks: u64,
    /// Conflict checks performed.
    pub conflict_checks: u64,
    /// Conflicts that only a Bloom false positive would have flagged.
    pub bloom_false_positives: u64,
    /// Whether to record per-task access traces for committed tasks.
    pub profiling: bool,
    /// The event fan-out point: the built-in statistics observer plus any
    /// custom [`crate::SimObserver`]s. All statistics accumulation happens
    /// here — the state only *announces* commits, aborts, dequeues, network
    /// messages, spills and waits.
    pub observers: ObserverHub,
    /// Tiles that received new dispatchable work or freed commit slots since
    /// the engine last drained this list.
    pub wake_tiles: Vec<TileId>,
    /// Live fault switches (see [`crate::fault`]). All disabled unless a
    /// fault plan flipped one mid-run, so fault-free runs are unaffected.
    pub(crate) faults: FaultRuntime,
    /// `log2(cores_per_tile)` when the count is a power of two, so
    /// [`SimState::tile_of_core`] — called several times per task — can
    /// shift instead of divide.
    tile_shift: Option<u32>,

    // Scratch buffers reused across conflict/abort events so the hot paths
    // never allocate. Each is taken (`std::mem::take`), used, cleared and
    // restored by exactly one non-reentrant method.
    /// [`SimState::access_line`]: conflicting later-key tasks to abort.
    scratch_victims: Vec<TaskId>,
    /// [`SimState::abort_task`]: the computed abort set, in discovery order.
    scratch_abort_set: Vec<TaskId>,
    /// [`SimState::abort_task`]: DFS worklist for the abort closure.
    scratch_abort_stack: Vec<TaskId>,
    /// [`SimState::abort_task`]: per-member discard decision.
    scratch_abort_discard: Vec<bool>,
    /// [`SimState::abort_task`]: combined undo log of the abort set.
    scratch_undo: Vec<UndoEntry>,
    /// [`SimState::route_message`]: link ids of the route being walked.
    scratch_route: Vec<u32>,

    // Execution-context buffers recycled between task-body executions (at
    // most one body runs at a time): [`crate::TaskCtx`] takes them on
    // dispatch and the engine returns them once the outcome is integrated.
    pub(crate) ctx_read_buf: Vec<LineAddr>,
    pub(crate) ctx_write_buf: Vec<LineAddr>,
    pub(crate) ctx_undo: Vec<UndoEntry>,
    pub(crate) ctx_trace: Vec<(Addr, bool)>,
    /// Pool of `PendingChild` buffers. Unlike the buffers above, a task's
    /// children list outlives its execution event (it sits with the engine
    /// until the `Finish` event integrates it), so one buffer is in flight
    /// per busy core and a single recycle slot would leak capacity on every
    /// concurrent dispatch burst.
    pub(crate) ctx_children_pool: Vec<Vec<PendingChild>>,
}

impl SimState {
    /// Build the initial state for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SystemConfig::validate`])
    /// or if a tile's commit queue is not larger than its core count.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        assert!(
            cfg.commit_queue_per_tile() > cfg.cores_per_tile as usize,
            "commit queue must be larger than the number of cores per tile"
        );
        let num_tiles = cfg.num_tiles();
        let num_cores = cfg.num_cores();
        let mesh = Mesh::new(cfg.tiles_x, cfg.tiles_y, cfg.noc.clone());
        let links = (cfg.noc.model == NocModel::Contention)
            .then(|| LinkNet::new(&cfg.noc, mesh.num_links()));
        SimState {
            mem: SimMemory::new(),
            caches: CacheModel::new(cfg.cache.clone(), num_tiles, cfg.cores_per_tile),
            mesh,
            links,
            now_cycle: 0,
            line_table: LineTable::new(),
            tasks: TaskArena::new(),
            tiles: vec![TileState::default(); num_tiles],
            cores: vec![CoreState::Idle { since: 0 }; num_cores],
            remaining_tasks: 0,
            conflict_checks: 0,
            bloom_false_positives: 0,
            profiling: false,
            observers: ObserverHub::new(num_tiles),
            wake_tiles: Vec::new(),
            faults: FaultRuntime::default(),
            tile_shift: cfg
                .cores_per_tile
                .is_power_of_two()
                .then(|| cfg.cores_per_tile.trailing_zeros()),
            scratch_victims: Vec::new(),
            scratch_abort_set: Vec::new(),
            scratch_abort_stack: Vec::new(),
            scratch_abort_discard: Vec::new(),
            scratch_undo: Vec::new(),
            scratch_route: Vec::new(),
            ctx_read_buf: Vec::new(),
            ctx_write_buf: Vec::new(),
            ctx_undo: Vec::new(),
            ctx_trace: Vec::new(),
            ctx_children_pool: Vec::new(),
            cfg,
        }
    }

    /// Announce one on-chip network message to every observer (the built-in
    /// statistics observer accumulates it into the traffic breakdown).
    ///
    /// This is the abstract accounting path: no link is walked and no
    /// queueing delay accrues, so it is reserved for traffic with no
    /// physical route (e.g. the hop-count-1 rollback abstraction). Messages
    /// between two real tiles go through [`SimState::send_message`], which
    /// models contention when enabled.
    #[inline]
    pub(crate) fn record_traffic(&mut self, class: TrafficClass, hops: u64, flits: u64) {
        self.observers.network(&NetworkEvent { class, hops, flits, queue_cycles: 0 });
        // An armed DuplicateMessage fault delivers (and accounts) the next
        // message a second time.
        if self.faults.duplicate_next {
            self.faults.duplicate_next = false;
            self.observers.network(&NetworkEvent { class, hops, flits, queue_cycles: 0 });
        }
    }

    /// Deliver one message from `from` to `to`: walk its dimension-ordered
    /// route through the link FIFOs under [`NocModel::Contention`] (a no-op
    /// under `Analytic`), announce it to the observers with its queueing
    /// delay, and honor an armed `DuplicateMessage` fault by walking and
    /// announcing the message a second time (under contention the duplicate
    /// also occupies the links again).
    ///
    /// `event_hops` is the hop count recorded in the traffic statistics —
    /// some messages account round trips or off-chip legs, so it can exceed
    /// the route length. `enter` is the cycle the message leaves `from`.
    /// Returns the queueing delay of the (first) delivery in cycles, always
    /// zero under `Analytic`; callers decide whether that delay lands on a
    /// latency-critical path or only occupies the links.
    pub(crate) fn send_message(
        &mut self,
        class: TrafficClass,
        from: TileId,
        to: TileId,
        event_hops: u64,
        flits: u64,
        enter: u64,
    ) -> u64 {
        let queue_cycles = self.route_message(class, from, to, flits, enter);
        self.observers.network(&NetworkEvent { class, hops: event_hops, flits, queue_cycles });
        if self.faults.duplicate_next {
            self.faults.duplicate_next = false;
            let dup = self.route_message(class, from, to, flits, enter);
            self.observers.network(&NetworkEvent {
                class,
                hops: event_hops,
                flits,
                queue_cycles: dup,
            });
        }
        queue_cycles
    }

    /// Walk `flits` of `class` hop by hop from `from` to `to` through the
    /// link FIFOs, entering the first link at cycle `enter`. Returns the
    /// total queueing delay across the route. No-op (returning zero) under
    /// [`NocModel::Analytic`] or when source and destination coincide.
    fn route_message(
        &mut self,
        class: TrafficClass,
        from: TileId,
        to: TileId,
        flits: u64,
        enter: u64,
    ) -> u64 {
        if self.links.is_none() || from == to {
            return 0;
        }
        let mut route = std::mem::take(&mut self.scratch_route);
        debug_assert!(route.is_empty());
        self.mesh.route_links(from, to, |l| route.push(l));
        let links = self.links.as_mut().expect("contention mode checked above");
        let want_events = self.observers.wants_link_occupancy();
        let service = links.service_cycles(flits);
        let mut at = enter;
        let mut queued = 0;
        for &link in &route {
            let depart = links.traverse(link, class, flits, at);
            let wait = depart - at - service;
            queued += wait;
            if want_events {
                self.observers.link_occupancy(&LinkOccupancyEvent {
                    link,
                    class,
                    flits,
                    enter: at,
                    depart,
                    queue_cycles: wait,
                });
            }
            at = depart;
        }
        route.clear();
        self.scratch_route = route;
        queued
    }

    /// The tile a core belongs to.
    #[inline]
    pub fn tile_of_core(&self, core: CoreId) -> TileId {
        match self.tile_shift {
            Some(shift) => TileId(core.0 >> shift),
            None => core.tile(self.cfg.cores_per_tile),
        }
    }

    /// Cores belonging to `tile` (contiguous global core ids).
    pub fn cores_of_tile(&self, tile: TileId) -> impl Iterator<Item = CoreId> {
        let first = tile.index() as u32 * self.cfg.cores_per_tile;
        (first..first + self.cfg.cores_per_tile).map(CoreId)
    }

    /// Number of tasks that are neither committed nor discarded.
    pub fn live_tasks(&self) -> usize {
        self.remaining_tasks as usize
    }

    /// Mark a running task as finished: move it to the commit queue. (The
    /// engine removes it from the tile's running list, so [`SimState::gvt`]
    /// stops counting it as unfinished from that point on.)
    pub fn mark_finished(&mut self, task: TaskId) {
        let tile = self.tasks.tile(task);
        let key = self.tasks.key(task);
        self.tasks.set_status(task, TaskStatus::Finished);
        self.tiles[tile.index()].finished.insert(key);
    }

    /// Number of idle (dispatchable) tasks per tile.
    pub fn idle_per_tile(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.idle_per_tile_into(&mut out);
        out
    }

    /// Fill `out` with the number of idle tasks per tile (the allocation-free
    /// variant the engine's dispatch/lb hot paths use).
    pub fn idle_per_tile_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.tiles.iter().map(|t| t.idle.len()));
    }

    /// The global virtual time: the commit key of the earliest unfinished
    /// task. `None` means every remaining task has finished executing, so
    /// all of them may commit.
    ///
    /// Computed by direct scan: every unfinished task lives in exactly one
    /// per-tile structure (idle and spilled are sorted key lists with O(1)
    /// minimums; running is at most one task per core), so the minimum falls
    /// out of a few dozen comparisons — no auxiliary priority queue to keep
    /// in sync with status changes.
    pub fn gvt(&self) -> Option<OrderKey> {
        let mut min: Option<OrderKey> = None;
        for tile in &self.tiles {
            for k in
                [tile.idle.first().copied(), tile.spilled.first().copied()].into_iter().flatten()
            {
                if min.is_none_or(|m| k < m) {
                    min = Some(k);
                }
            }
            for &t in &tile.running {
                let k = self.tasks.key(t);
                if min.is_none_or(|m| k < m) {
                    min = Some(k);
                }
            }
        }
        min
    }

    fn note_wake(&mut self, tile: TileId) {
        if !self.wake_tiles.contains(&tile) {
            self.wake_tiles.push(tile);
        }
    }

    /// Drain the list of tiles that may have new dispatchable work.
    pub fn drain_wakes(&mut self) -> Vec<TileId> {
        std::mem::take(&mut self.wake_tiles)
    }

    /// Return a (cleared) `PendingChild` buffer to the pool for a later
    /// task execution to accumulate children into.
    pub(crate) fn recycle_children(&mut self, mut buf: Vec<PendingChild>) {
        buf.clear();
        self.ctx_children_pool.push(buf);
    }

    /// Return the execution-outcome buffers (cleared) after the engine has
    /// copied their contents into the task's body.
    pub(crate) fn recycle_exec_buffers(
        &mut self,
        mut reads: Vec<LineAddr>,
        mut writes: Vec<LineAddr>,
        mut undo: Vec<UndoEntry>,
        mut trace: Vec<(Addr, bool)>,
    ) {
        reads.clear();
        writes.clear();
        undo.clear();
        trace.clear();
        self.ctx_read_buf = reads;
        self.ctx_write_buf = writes;
        self.ctx_undo = undo;
        self.ctx_trace = trace;
    }

    // ------------------------------------------------------------------
    // Task creation, spilling and refilling
    // ------------------------------------------------------------------

    /// Register a new task and place it in its destination tile's task
    /// queue, spilling older idle tasks if the queue is full. Returns the
    /// new task's id.
    pub fn add_task(&mut self, desc: TaskDescriptor) -> TaskId {
        let tile = desc.tile;
        let ts = desc.ts;
        let id = self.tasks.add(desc);
        let key = (ts, id);
        self.remaining_tasks += 1;

        let cap = self.faults.effective_task_queue_cap(tile, self.cfg.task_queue_per_tile());
        if self.tiles[tile.index()].task_queue_occupancy() >= cap {
            self.spill_from_tile(tile);
        }
        self.tiles[tile.index()].idle.insert(key);
        self.note_wake(tile);
        id
    }

    /// Spill a batch of the latest-key idle tasks of `tile` to memory,
    /// freeing task-queue entries (Section II-B "spills").
    pub fn spill_from_tile(&mut self, tile: TileId) {
        let batch = self.cfg.queues.spill_batch.max(1);
        let mut spilled = 0;
        while spilled < batch {
            let Some(&key) = self.tiles[tile.index()].idle.last() else { break };
            // Never spill the earliest idle task of the tile: the GVT may be
            // waiting on it, and spilling it could deadlock the commit
            // protocol.
            if self.tiles[tile.index()].idle.len() <= 1 {
                break;
            }
            self.tiles[tile.index()].idle.remove(&key);
            self.tiles[tile.index()].spilled.insert(key);
            self.tasks.set_status(key.1, TaskStatus::Spilled);
            spilled += 1;
        }
        if spilled > 0 {
            self.observers.spill(&SpillEvent {
                tile,
                tasks: spilled as u64,
                cycles: spilled as u64 * self.cfg.queues.spill_cost_per_task,
                direction: SpillDirection::Spilled,
            });
            let hops = self.mesh.hops(tile, TileId(0)).max(1);
            let flits = self.mesh.line_flits() * spilled as u64;
            let at = self.now_cycle;
            self.send_message(TrafficClass::Memory, tile, TileId(0), hops, flits, at);
        }
    }

    /// Refill a batch of the earliest-key spilled tasks of `tile` back into
    /// its task queue. Returns how many were refilled.
    pub fn refill_tile(&mut self, tile: TileId) -> usize {
        let batch = self.cfg.queues.spill_batch.max(1);
        let cap = self.faults.effective_task_queue_cap(tile, self.cfg.task_queue_per_tile());
        let mut refilled = 0;
        while refilled < batch {
            if self.tiles[tile.index()].task_queue_occupancy() >= cap {
                break;
            }
            let Some(&key) = self.tiles[tile.index()].spilled.first() else { break };
            self.tiles[tile.index()].spilled.remove(&key);
            self.tiles[tile.index()].idle.insert(key);
            self.tasks.set_status(key.1, TaskStatus::Idle);
            refilled += 1;
        }
        if refilled > 0 {
            self.observers.spill(&SpillEvent {
                tile,
                tasks: refilled as u64,
                cycles: refilled as u64 * self.cfg.queues.spill_cost_per_task,
                direction: SpillDirection::Refilled,
            });
            let hops = self.mesh.hops(tile, TileId(0)).max(1);
            let flits = self.mesh.line_flits() * refilled as u64;
            let at = self.now_cycle;
            self.send_message(TrafficClass::Memory, tile, TileId(0), hops, flits, at);
            self.note_wake(tile);
        }
        refilled
    }

    /// Pull one specific spilled task back into its tile's task queue (used
    /// by the commit protocol when the globally earliest unfinished task
    /// sits in a spill buffer: it must become dispatchable or the GVT can
    /// never advance past it).
    pub fn unspill_task(&mut self, task: TaskId) {
        if self.tasks.status(task) != TaskStatus::Spilled {
            return;
        }
        let tile = self.tasks.tile(task);
        let key = self.tasks.key(task);
        self.tiles[tile.index()].spilled.remove(&key);
        self.tiles[tile.index()].idle.insert(key);
        self.tasks.set_status(task, TaskStatus::Idle);
        self.observers.spill(&SpillEvent {
            tile,
            tasks: 1,
            cycles: self.cfg.queues.spill_cost_per_task,
            direction: SpillDirection::Refilled,
        });
        let hops = self.mesh.hops(tile, TileId(0)).max(1);
        let flits = self.mesh.line_flits();
        let at = self.now_cycle;
        self.send_message(TrafficClass::Memory, tile, TileId(0), hops, flits, at);
        self.note_wake(tile);
    }

    /// Move the earliest idle task of `victim` to `thief` (idealized work
    /// stealing: no latency, no traffic). Returns the stolen task, if any.
    /// A task still in flight to `victim` under [`NocModel::Contention`]
    /// (delivery cycle in the future) cannot be stolen before it arrives.
    pub fn steal_task(&mut self, thief: TileId, victim: TileId) -> Option<TaskId> {
        if thief == victim {
            return None;
        }
        let &key = self.tiles[victim.index()].idle.first()?;
        if self.tasks.ready_at(key.1) > self.now_cycle {
            return None;
        }
        self.tiles[victim.index()].idle.remove(&key);
        self.tiles[thief.index()].idle.insert(key);
        self.tasks.set_tile(key.1, thief);
        Some(key.1)
    }

    // ------------------------------------------------------------------
    // Memory accesses with eager conflict detection
    // ------------------------------------------------------------------

    /// Perform a speculative read of the word at `addr` on behalf of `task`
    /// running on `core`, `elapsed` cycles into the task's execution (so
    /// contention-mode messages enter the network at the right virtual
    /// time). Returns `(value, latency_cycles)`.
    pub fn speculative_read(
        &mut self,
        task: TaskId,
        core: CoreId,
        addr: Addr,
        elapsed: u64,
    ) -> (u64, u64) {
        let latency = self.access_line(task, core, addr, AccessKind::Read, elapsed);
        (self.mem.load(addr), latency)
    }

    /// Perform a speculative write of `value` to `addr` on behalf of `task`,
    /// `elapsed` cycles into the task's execution. Returns the latency in
    /// cycles. The previous value is recorded in the task's undo log by the
    /// caller (the task context owns the log until the execution is
    /// integrated).
    pub fn speculative_write(
        &mut self,
        task: TaskId,
        core: CoreId,
        addr: Addr,
        value: u64,
        elapsed: u64,
    ) -> (swarm_mem::UndoEntry, u64) {
        let latency = self.access_line(task, core, addr, AccessKind::Write, elapsed);
        let undo = self.mem.store_logged(addr, value);
        (undo, latency)
    }

    /// Conflict-check and charge one line access; aborts conflicting
    /// later-key tasks eagerly. Returns the access latency. Under
    /// [`NocModel::Contention`] the access's off-tile messages enter the
    /// network at `now_cycle + elapsed` and any queueing delay on the data
    /// transfer is added to the returned latency.
    fn access_line(
        &mut self,
        task: TaskId,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        elapsed: u64,
    ) -> u64 {
        let line = LineAddr::containing(addr);
        let my_key = self.tasks.key(task);
        let tile = self.tile_of_core(core);

        // Eager conflict detection: any uncommitted, later-key task that has
        // accessed this line in a conflicting way must abort (its accesses
        // would otherwise appear out of timestamp order). The victim list is
        // a persistent scratch buffer: conflicts are frequent under
        // contention and a fresh Vec per access was measurable.
        let mut victims = std::mem::take(&mut self.scratch_victims);
        debug_assert!(victims.is_empty());
        let mut check_cost = 0;
        if let Some(acc) = self.line_table.get(line) {
            self.conflict_checks += 1;
            let compared = (acc.readers.len() + acc.writers.len()) as u64;
            check_cost =
                self.cfg.spec.conflict_check_cost + compared * self.cfg.spec.conflict_compare_cost;
            for &wk in &acc.writers {
                if wk.1 != task && wk > my_key {
                    victims.push(wk.1);
                }
            }
            if kind == AccessKind::Write {
                for &rk in &acc.readers {
                    if rk.1 != task && rk > my_key && !victims.contains(&rk.1) {
                        victims.push(rk.1);
                    }
                }
            }
        }
        for &v in &victims {
            // The victim may already have been aborted transitively.
            if !self.tasks.key_is_live_for_abort(v) {
                continue;
            }
            self.abort_task(v, tile);
        }
        victims.clear();
        self.scratch_victims = victims;

        // Charge the cache/NoC cost of the access itself.
        let outcome = self.caches.access(core, line, kind);
        let mut latency = outcome.base_latency + check_cost;
        let line_flits = self.mesh.line_flits();
        // An active DelayedMessage fault slows every off-tile transfer this
        // tile issues (zero unless armed, so the fault-free path is exact).
        let delay = self.faults.extra_remote_latency(tile);
        // Cycle at which the access's messages leave the tile. Earlier
        // accesses in the same task body already folded their own queueing
        // delays into `elapsed`, so contention naturally compounds.
        let at = self.now_cycle + elapsed;
        match outcome.level {
            HitLevel::L1 | HitLevel::L2 => {}
            HitLevel::RemoteL2 { owner } => {
                let home = self.caches.home_tile(line);
                latency +=
                    2 * self.mesh.latency(tile, owner) + self.mesh.latency(tile, home) + delay;
                let owner_hops = self.mesh.hops(tile, owner);
                // The line transfer is on the access's critical path: its
                // queueing delay lands in the latency. The directory control
                // message only occupies links.
                latency += self.send_message(
                    TrafficClass::Memory,
                    tile,
                    owner,
                    owner_hops,
                    line_flits,
                    at,
                );
                let home_hops = self.mesh.hops(tile, home);
                let control_flits = self.mesh.control_flits();
                self.send_message(TrafficClass::Memory, tile, home, home_hops, control_flits, at);
            }
            HitLevel::L3 { home } => {
                latency += 2 * self.mesh.latency(tile, home) + delay;
                let hops = self.mesh.hops(tile, home);
                latency +=
                    self.send_message(TrafficClass::Memory, tile, home, hops, line_flits, at);
            }
            HitLevel::Memory { home } => {
                latency += 2 * self.mesh.latency(tile, home) + delay;
                let hops = self.mesh.hops(tile, home) * 2 + 2;
                latency +=
                    self.send_message(TrafficClass::Memory, tile, home, hops, line_flits, at);
            }
        }
        for inv in &outcome.invalidated {
            let hops = self.mesh.hops(tile, *inv);
            let control_flits = self.mesh.control_flits();
            self.send_message(TrafficClass::Memory, tile, *inv, hops, control_flits, at);
        }
        latency
    }

    /// Register a completed execution's read/write sets in the line table so
    /// later accesses by other tasks can detect conflicts against it.
    ///
    /// The sets are taken out of the task's body and restored afterwards
    /// (instead of cloned) so that registering a task allocates nothing.
    pub fn register_access_sets(&mut self, task: TaskId) {
        let key = self.tasks.key(task);
        let body = self.tasks.body_mut(task);
        let reads = std::mem::take(&mut body.read_set);
        let writes = std::mem::take(&mut body.write_set);
        for &line in &reads {
            let acc = self.line_table.entry_or_default(line);
            if !acc.readers.contains(&key) {
                acc.readers.push(key);
            }
        }
        for &line in &writes {
            let acc = self.line_table.entry_or_default(line);
            if !acc.writers.contains(&key) {
                acc.writers.push(key);
            }
        }
        let body = self.tasks.body_mut(task);
        body.read_set = reads;
        body.write_set = writes;
    }

    fn unregister_access_sets(&mut self, task: TaskId) {
        let body = self.tasks.body_mut(task);
        let reads = std::mem::take(&mut body.read_set);
        let writes = std::mem::take(&mut body.write_set);
        for &line in reads.iter().chain(writes.iter()) {
            if let Some(acc) = self.line_table.get_mut(line) {
                acc.readers.retain(|&k| k.1 != task);
                acc.writers.retain(|&k| k.1 != task);
                if acc.is_empty() {
                    self.line_table.remove(line);
                }
            }
        }
        let body = self.tasks.body_mut(task);
        body.read_set = reads;
        body.write_set = writes;
    }

    // ------------------------------------------------------------------
    // Aborts
    // ------------------------------------------------------------------

    /// Abort `victim` and everything that transitively depends on it: its
    /// descendants (children will be re-created when the task re-runs) and
    /// every uncommitted later-key task that read or wrote data `victim`
    /// wrote (conservative data-dependence closure).
    ///
    /// Works entirely out of persistent scratch buffers; a cascade of any
    /// size allocates only if it outgrows every previous cascade. Not
    /// reentrant (an abort cannot trigger another abort — the cascade
    /// already computes the full closure).
    pub fn abort_task(&mut self, victim: TaskId, aborter_tile: TileId) {
        // 1. Compute the abort set (closure over children and dependents).
        let mut set = std::mem::take(&mut self.scratch_abort_set);
        let mut stack = std::mem::take(&mut self.scratch_abort_stack);
        debug_assert!(set.is_empty() && stack.is_empty());
        stack.push(victim);
        while let Some(t) = stack.pop() {
            if set.contains(&t) {
                continue;
            }
            if self.tasks.status(t).is_terminal() {
                continue;
            }
            set.push(t);
            let my_key = self.tasks.key(t);
            let body = self.tasks.body(t);
            // Children of the current execution.
            for &c in &body.children {
                stack.push(c);
            }
            // Data-dependent tasks: later-key readers/writers of lines this
            // task wrote.
            for &line in &body.write_set {
                if let Some(acc) = self.line_table.get(line) {
                    for &ok in acc.readers.iter().chain(acc.writers.iter()) {
                        if ok.1 != t && ok > my_key {
                            stack.push(ok.1);
                        }
                    }
                }
            }
        }

        // 2. Decide which members are discarded (their parent is also being
        //    aborted, so the parent's re-execution will re-create them).
        let mut discard = std::mem::take(&mut self.scratch_abort_discard);
        debug_assert!(discard.is_empty());
        for &t in &set {
            discard.push(self.tasks.body(t).parent.map(|p| set.contains(&p)).unwrap_or(false));
        }

        // 3. Roll back all undo entries of the set, newest store first.
        let mut undo = std::mem::take(&mut self.scratch_undo);
        debug_assert!(undo.is_empty());
        for &t in &set {
            undo.extend_from_slice(&self.tasks.body(t).undo);
        }
        let rollback_entries = undo.len() as u64;
        self.mem.rollback_all(&mut undo);
        undo.clear();
        self.scratch_undo = undo;

        // 4. Update per-task state.
        for i in 0..set.len() {
            let t = set[i];
            self.unregister_access_sets(t);
            let tile = self.tasks.tile(t);
            let status = self.tasks.status(t);
            let key = self.tasks.key(t);
            let already_aborted = self.tasks.is_aborted(t);
            let executed = !already_aborted
                && matches!(status, TaskStatus::Running { .. } | TaskStatus::Finished);
            // Announce each doomed task once: a Running member that an
            // earlier cascade already aborted (still draining on its core)
            // was announced then, so a second cascade reaching it is not a
            // new abort.
            if !status.is_terminal() && !already_aborted {
                let cycles = if executed { self.tasks.body(t).exec_cycles } else { 0 };
                let ts = self.tasks.ts(t);
                self.observers.abort(&AbortEvent {
                    task: t,
                    ts,
                    tile,
                    aborter_tile,
                    cycles,
                    executed,
                });
            }
            if executed {
                // Abort message to the victim's tile (occupies links under
                // contention; the cascade itself is not delayed by it).
                let hops = self.mesh.hops(aborter_tile, tile);
                let control_flits = self.mesh.control_flits();
                let at = self.now_cycle;
                self.send_message(TrafficClass::Abort, aborter_tile, tile, hops, control_flits, at);
            }
            match status {
                TaskStatus::Idle => {
                    self.tiles[tile.index()].idle.remove(&key);
                }
                TaskStatus::Spilled => {
                    self.tiles[tile.index()].spilled.remove(&key);
                }
                TaskStatus::Finished => {
                    self.tiles[tile.index()].finished.remove(&key);
                    // A commit-queue slot was freed; stalled cores may now
                    // dispatch.
                    self.note_wake(tile);
                }
                TaskStatus::Running { .. } => {
                    // The core keeps executing the doomed task until its
                    // scheduled finish; the engine requeues or discards it
                    // then. Mark it so. A discard decision is sticky: once a
                    // parent abort dooms the task it must never be requeued.
                    self.tasks.set_aborted(t, true);
                    let doomed = self.tasks.pending_discard(t) || discard[i];
                    self.tasks.set_pending_discard(t, doomed);
                    self.tasks.body_mut(t).reset_speculation_only();
                    continue;
                }
                TaskStatus::Committed | TaskStatus::Discarded => continue,
            }
            // Non-running members are reset immediately.
            {
                let body = self.tasks.body_mut(t);
                body.reset_execution();
                body.abort_count += 1;
            }
            if discard[i] {
                self.tasks.set_status(t, TaskStatus::Discarded);
                self.remaining_tasks -= 1;
                self.tasks.free_body(t);
            } else {
                self.tasks.set_status(t, TaskStatus::Idle);
                self.tasks.set_aborted(t, false);
                self.tiles[tile.index()].idle.insert(key);
                self.note_wake(tile);
            }
        }

        set.clear();
        discard.clear();
        self.scratch_abort_set = set;
        self.scratch_abort_stack = stack;
        self.scratch_abort_discard = discard;

        // 5. Rollback memory traffic.
        if rollback_entries > 0 {
            let flits = rollback_entries * self.mesh.control_flits();
            self.record_traffic(TrafficClass::Abort, 1, flits);
        }
    }

    /// Requeue or discard a running task whose execution was aborted, once
    /// its core finally releases it. Returns `true` if it was requeued.
    pub fn settle_aborted_running_task(&mut self, task: TaskId) -> bool {
        let tile = self.tasks.tile(task);
        let key = self.tasks.key(task);
        let discard = self.tasks.pending_discard(task);
        {
            let body = self.tasks.body_mut(task);
            body.reset_execution();
            body.abort_count += 1;
        }
        self.tasks.set_aborted(task, false);
        self.tasks.set_pending_discard(task, false);
        if discard {
            self.tasks.set_status(task, TaskStatus::Discarded);
            self.remaining_tasks -= 1;
            self.tasks.free_body(task);
            false
        } else {
            self.tasks.set_status(task, TaskStatus::Idle);
            self.tiles[tile.index()].idle.insert(key);
            self.note_wake(tile);
            true
        }
    }

    // ------------------------------------------------------------------
    // Commits
    // ------------------------------------------------------------------

    /// Commit a finished task: free its commit-queue entry, retire its
    /// speculative state (reclaiming its arena body slot) and account its
    /// cycles. Returns `(tile, bucket, exec_cycles)` so the engine can
    /// inform the mapper.
    pub fn commit_task(&mut self, task: TaskId) -> (TileId, Option<u16>, u64) {
        debug_assert_eq!(
            self.tasks.status(task),
            TaskStatus::Finished,
            "only finished tasks commit"
        );
        let tile = self.tasks.tile(task);
        let key = self.tasks.key(task);
        let ts = self.tasks.ts(task);
        let (cycles, bucket, hint, num_args) = {
            let body = self.tasks.body(task);
            (body.exec_cycles, body.bucket, body.hint, body.args.len())
        };
        self.unregister_access_sets(task);
        self.tiles[tile.index()].finished.remove(&key);
        self.remaining_tasks -= 1;
        if self.profiling {
            // Take the trace out of the body so the event can borrow it
            // while the observers borrow the rest of the state; its (cleared)
            // buffer goes back afterwards so the slot recycles the capacity.
            let mut trace = std::mem::take(&mut self.tasks.body_mut(task).access_trace);
            self.observers.commit(&CommitEvent {
                task,
                ts,
                hint,
                tile,
                bucket,
                cycles,
                num_args,
                accesses: Some(trace.as_slice()),
            });
            trace.clear();
            self.tasks.body_mut(task).access_trace = trace;
        } else {
            self.observers.commit(&CommitEvent {
                task,
                ts,
                hint,
                tile,
                bucket,
                cycles,
                num_args,
                accesses: None,
            });
        }
        self.tasks.set_status(task, TaskStatus::Committed);
        // Reclaim the body slot: the task's speculative state is final.
        self.tasks.free_body(task);
        self.note_wake(tile);
        (tile, bucket, cycles)
    }

    /// Whether `task` may commit ahead of earlier-created tasks with the same
    /// timestamp: its parent must have committed and no uncommitted
    /// earlier-key task may have touched its data in a conflicting way.
    pub fn can_commit_relaxed(&self, task: TaskId) -> bool {
        if self.tasks.status(task) != TaskStatus::Finished {
            return false;
        }
        let body = self.tasks.body(task);
        if let Some(parent) = body.parent {
            // Statuses outlive arena bodies, so this works even for parents
            // that committed (and had their body slot reclaimed) long ago.
            if self.tasks.status(parent) != TaskStatus::Committed {
                return false;
            }
        }
        let my_key = self.tasks.key(task);
        // No earlier uncommitted writer of anything I read or wrote, and no
        // earlier uncommitted reader of anything I wrote.
        for &line in body.read_set.iter().chain(body.write_set.iter()) {
            if let Some(acc) = self.line_table.get(line) {
                for &wk in &acc.writers {
                    if wk.1 != task && wk < my_key {
                        return false;
                    }
                }
            }
        }
        for &line in &body.write_set {
            if let Some(acc) = self.line_table.get(line) {
                for &rk in &acc.readers {
                    if rk.1 != task && rk < my_key {
                        return false;
                    }
                }
            }
        }
        true
    }
}
