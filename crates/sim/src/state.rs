//! Mutable simulation state: tiles, cores, speculative task records, the
//! line-access table used for conflict detection, and all statistics
//! accumulators.
//!
//! The state object knows how to perform the *mechanisms* of the Swarm
//! substrate — enqueue with spilling, conflict detection, abort cascades with
//! rollback, commits — while the [`crate::engine::Engine`] drives *when* they
//! happen (event ordering, dispatch policy, GVT epochs).

use std::collections::BTreeSet;

use swarm_mem::{AccessKind, CacheModel, HitLevel, SimMemory};
use swarm_noc::{Mesh, TrafficClass};
use swarm_types::{Addr, CoreId, LineAddr, SystemConfig, TaskId, TileId};

use crate::line_table::LineTable;
use crate::observer::{
    AbortEvent, CommitEvent, NetworkEvent, ObserverHub, SpillDirection, SpillEvent,
};
use crate::task::{OrderKey, TaskDescriptor, TaskRecord, TaskStatus};

/// What a core is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// No dispatchable task was available.
    Idle {
        /// Cycle at which the core became idle.
        since: u64,
    },
    /// Blocked because the tile's commit queue is full.
    Stalled {
        /// Cycle at which the core stalled.
        since: u64,
    },
    /// Executing a task.
    Busy {
        /// The running task.
        task: TaskId,
    },
}

/// Per-tile task unit state: the task queue (idle + running + finished
/// entries), the commit queue (finished entries), and the spill buffer.
#[derive(Debug, Clone, Default)]
pub struct TileState {
    /// Dispatchable tasks, ordered by commit key.
    pub idle: BTreeSet<OrderKey>,
    /// Tasks currently running on this tile's cores.
    pub running: Vec<TaskId>,
    /// Finished tasks holding commit-queue entries, ordered by commit key.
    pub finished: BTreeSet<OrderKey>,
    /// Tasks spilled to memory by the coalescer, ordered by commit key.
    pub spilled: BTreeSet<OrderKey>,
}

impl TileState {
    /// Number of occupied task-queue entries.
    pub fn task_queue_occupancy(&self) -> usize {
        self.idle.len() + self.running.len() + self.finished.len()
    }

    /// Number of occupied (or reserved) commit-queue entries.
    pub fn commit_queue_occupancy(&self) -> usize {
        self.running.len() + self.finished.len()
    }
}

/// The complete mutable state of one simulation.
#[derive(Debug)]
pub struct SimState {
    /// System configuration.
    pub cfg: SystemConfig,
    /// Simulated shared memory.
    pub mem: SimMemory,
    /// Cache hierarchy model.
    pub caches: CacheModel,
    /// Network model.
    pub mesh: Mesh,
    /// Speculative access table: line -> uncommitted readers/writers. An
    /// open-addressed flat table (see [`crate::line_table`]): it is consulted
    /// on every speculative access, and first SipHash, then the `HashMap`
    /// control-byte machinery, dominated its cost.
    pub line_table: LineTable,
    /// All task records, indexed by `TaskId.0`.
    pub records: Vec<TaskRecord>,
    /// Per-tile task unit state.
    pub tiles: Vec<TileState>,
    /// Per-core state.
    pub cores: Vec<CoreState>,
    /// Keys of all *unfinished* tasks (idle, running or spilled); the GVT is
    /// the minimum of this set. Finished-but-uncommitted tasks are not here.
    pub unfinished: BTreeSet<OrderKey>,
    /// Number of tasks that are neither committed nor discarded; the run
    /// terminates when this reaches zero.
    pub remaining_tasks: u64,
    /// Conflict checks performed.
    pub conflict_checks: u64,
    /// Conflicts that only a Bloom false positive would have flagged.
    pub bloom_false_positives: u64,
    /// Whether to record per-task access traces for committed tasks.
    pub profiling: bool,
    /// The event fan-out point: the built-in statistics observer plus any
    /// custom [`crate::SimObserver`]s. All statistics accumulation happens
    /// here — the state only *announces* commits, aborts, dequeues, network
    /// messages, spills and waits.
    pub observers: ObserverHub,
    /// Tiles that received new dispatchable work or freed commit slots since
    /// the engine last drained this list.
    pub wake_tiles: Vec<TileId>,
}

impl SimState {
    /// Build the initial state for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SystemConfig::validate`])
    /// or if a tile's commit queue is not larger than its core count.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        assert!(
            cfg.commit_queue_per_tile() > cfg.cores_per_tile as usize,
            "commit queue must be larger than the number of cores per tile"
        );
        let num_tiles = cfg.num_tiles();
        let num_cores = cfg.num_cores();
        SimState {
            mem: SimMemory::new(),
            caches: CacheModel::new(cfg.cache.clone(), num_tiles, cfg.cores_per_tile),
            mesh: Mesh::new(cfg.tiles_x, cfg.tiles_y, cfg.noc.clone()),
            line_table: LineTable::new(),
            records: Vec::new(),
            tiles: vec![TileState::default(); num_tiles],
            cores: vec![CoreState::Idle { since: 0 }; num_cores],
            unfinished: BTreeSet::new(),
            remaining_tasks: 0,
            conflict_checks: 0,
            bloom_false_positives: 0,
            profiling: false,
            observers: ObserverHub::new(num_tiles),
            wake_tiles: Vec::new(),
            cfg,
        }
    }

    /// Announce one on-chip network message to every observer (the built-in
    /// statistics observer accumulates it into the traffic breakdown).
    #[inline]
    pub(crate) fn record_traffic(&mut self, class: TrafficClass, hops: u64, flits: u64) {
        self.observers.network(&NetworkEvent { class, hops, flits });
    }

    /// The tile a core belongs to.
    pub fn tile_of_core(&self, core: CoreId) -> TileId {
        core.tile(self.cfg.cores_per_tile)
    }

    /// Cores belonging to `tile` (contiguous global core ids).
    pub fn cores_of_tile(&self, tile: TileId) -> impl Iterator<Item = CoreId> {
        let first = tile.index() as u32 * self.cfg.cores_per_tile;
        (first..first + self.cfg.cores_per_tile).map(CoreId)
    }

    /// Immutable access to a task record.
    pub fn record(&self, id: TaskId) -> &TaskRecord {
        &self.records[id.0 as usize]
    }

    /// Mutable access to a task record.
    pub fn record_mut(&mut self, id: TaskId) -> &mut TaskRecord {
        &mut self.records[id.0 as usize]
    }

    /// Number of tasks that are neither committed nor discarded.
    pub fn live_tasks(&self) -> usize {
        self.remaining_tasks as usize
    }

    /// Mark a running task as finished: move it to the commit queue and drop
    /// it from the unfinished (GVT) set.
    pub fn mark_finished(&mut self, task: TaskId) {
        let (tile, key) = {
            let rec = self.record(task);
            (rec.desc.tile, rec.key())
        };
        self.record_mut(task).status = TaskStatus::Finished;
        self.tiles[tile.index()].finished.insert(key);
        self.unfinished.remove(&key);
    }

    /// Number of idle (dispatchable) tasks per tile.
    pub fn idle_per_tile(&self) -> Vec<usize> {
        self.tiles.iter().map(|t| t.idle.len()).collect()
    }

    /// The global virtual time: the commit key of the earliest unfinished
    /// task. `None` means every remaining task has finished executing, so
    /// all of them may commit.
    pub fn gvt(&self) -> Option<OrderKey> {
        self.unfinished.first().copied()
    }

    fn note_wake(&mut self, tile: TileId) {
        if !self.wake_tiles.contains(&tile) {
            self.wake_tiles.push(tile);
        }
    }

    /// Drain the list of tiles that may have new dispatchable work.
    pub fn drain_wakes(&mut self) -> Vec<TileId> {
        std::mem::take(&mut self.wake_tiles)
    }

    // ------------------------------------------------------------------
    // Task creation, spilling and refilling
    // ------------------------------------------------------------------

    /// Register a new task and place it in its destination tile's task
    /// queue, spilling older idle tasks if the queue is full. Returns the
    /// new task's id.
    pub fn add_task(&mut self, mut desc: TaskDescriptor) -> TaskId {
        let id = TaskId(self.records.len() as u64);
        desc.id = id;
        let tile = desc.tile;
        let key = (desc.ts, id);
        let record = TaskRecord::new(desc);
        self.records.push(record);
        self.unfinished.insert(key);
        self.remaining_tasks += 1;

        if self.tiles[tile.index()].task_queue_occupancy() >= self.cfg.task_queue_per_tile() {
            self.spill_from_tile(tile);
        }
        self.tiles[tile.index()].idle.insert(key);
        self.record_mut(id).status = TaskStatus::Idle;
        self.note_wake(tile);
        id
    }

    /// Spill a batch of the latest-key idle tasks of `tile` to memory,
    /// freeing task-queue entries (Section II-B "spills").
    pub fn spill_from_tile(&mut self, tile: TileId) {
        let batch = self.cfg.queues.spill_batch.max(1);
        let mut spilled = 0;
        while spilled < batch {
            let Some(&key) = self.tiles[tile.index()].idle.last() else { break };
            // Never spill the earliest idle task of the tile: the GVT may be
            // waiting on it, and spilling it could deadlock the commit
            // protocol.
            if self.tiles[tile.index()].idle.len() <= 1 {
                break;
            }
            self.tiles[tile.index()].idle.remove(&key);
            self.tiles[tile.index()].spilled.insert(key);
            self.record_mut(key.1).status = TaskStatus::Spilled;
            spilled += 1;
        }
        if spilled > 0 {
            self.observers.spill(&SpillEvent {
                tile,
                tasks: spilled as u64,
                cycles: spilled as u64 * self.cfg.queues.spill_cost_per_task,
                direction: SpillDirection::Spilled,
            });
            let hops = self.mesh.hops(tile, TileId(0)).max(1);
            let flits = self.mesh.line_flits() * spilled as u64;
            self.record_traffic(TrafficClass::Memory, hops, flits);
        }
    }

    /// Refill a batch of the earliest-key spilled tasks of `tile` back into
    /// its task queue. Returns how many were refilled.
    pub fn refill_tile(&mut self, tile: TileId) -> usize {
        let batch = self.cfg.queues.spill_batch.max(1);
        let cap = self.cfg.task_queue_per_tile();
        let mut refilled = 0;
        while refilled < batch {
            if self.tiles[tile.index()].task_queue_occupancy() >= cap {
                break;
            }
            let Some(&key) = self.tiles[tile.index()].spilled.first() else { break };
            self.tiles[tile.index()].spilled.remove(&key);
            self.tiles[tile.index()].idle.insert(key);
            self.record_mut(key.1).status = TaskStatus::Idle;
            refilled += 1;
        }
        if refilled > 0 {
            self.observers.spill(&SpillEvent {
                tile,
                tasks: refilled as u64,
                cycles: refilled as u64 * self.cfg.queues.spill_cost_per_task,
                direction: SpillDirection::Refilled,
            });
            let hops = self.mesh.hops(tile, TileId(0)).max(1);
            let flits = self.mesh.line_flits() * refilled as u64;
            self.record_traffic(TrafficClass::Memory, hops, flits);
            self.note_wake(tile);
        }
        refilled
    }

    /// Pull one specific spilled task back into its tile's task queue (used
    /// by the commit protocol when the globally earliest unfinished task
    /// sits in a spill buffer: it must become dispatchable or the GVT can
    /// never advance past it).
    pub fn unspill_task(&mut self, task: TaskId) {
        let (tile, key) = {
            let rec = self.record(task);
            (rec.desc.tile, rec.key())
        };
        if self.record(task).status != TaskStatus::Spilled {
            return;
        }
        self.tiles[tile.index()].spilled.remove(&key);
        self.tiles[tile.index()].idle.insert(key);
        self.record_mut(task).status = TaskStatus::Idle;
        self.observers.spill(&SpillEvent {
            tile,
            tasks: 1,
            cycles: self.cfg.queues.spill_cost_per_task,
            direction: SpillDirection::Refilled,
        });
        let hops = self.mesh.hops(tile, TileId(0)).max(1);
        let flits = self.mesh.line_flits();
        self.record_traffic(TrafficClass::Memory, hops, flits);
        self.note_wake(tile);
    }

    /// Move the earliest idle task of `victim` to `thief` (idealized work
    /// stealing: no latency, no traffic). Returns the stolen task, if any.
    pub fn steal_task(&mut self, thief: TileId, victim: TileId) -> Option<TaskId> {
        if thief == victim {
            return None;
        }
        let &key = self.tiles[victim.index()].idle.first()?;
        self.tiles[victim.index()].idle.remove(&key);
        self.tiles[thief.index()].idle.insert(key);
        self.record_mut(key.1).desc.tile = thief;
        Some(key.1)
    }

    // ------------------------------------------------------------------
    // Memory accesses with eager conflict detection
    // ------------------------------------------------------------------

    /// Perform a speculative read of the word at `addr` on behalf of `task`
    /// running on `core`. Returns `(value, latency_cycles)`.
    pub fn speculative_read(&mut self, task: TaskId, core: CoreId, addr: Addr) -> (u64, u64) {
        let latency = self.access_line(task, core, addr, AccessKind::Read);
        (self.mem.load(addr), latency)
    }

    /// Perform a speculative write of `value` to `addr` on behalf of `task`.
    /// Returns the latency in cycles. The previous value is recorded in the
    /// task's undo log by the caller (the task context owns the log until
    /// the execution is integrated).
    pub fn speculative_write(
        &mut self,
        task: TaskId,
        core: CoreId,
        addr: Addr,
        value: u64,
    ) -> (swarm_mem::UndoEntry, u64) {
        let latency = self.access_line(task, core, addr, AccessKind::Write);
        let undo = self.mem.store_logged(addr, value);
        (undo, latency)
    }

    /// Conflict-check and charge one line access; aborts conflicting
    /// later-key tasks eagerly. Returns the access latency.
    fn access_line(&mut self, task: TaskId, core: CoreId, addr: Addr, kind: AccessKind) -> u64 {
        let line = LineAddr::containing(addr);
        let my_key = self.record(task).key();
        let tile = self.tile_of_core(core);

        // Eager conflict detection: any uncommitted, later-key task that has
        // accessed this line in a conflicting way must abort (its accesses
        // would otherwise appear out of timestamp order).
        let mut victims: Vec<TaskId> = Vec::new();
        let mut check_cost = 0;
        if let Some(acc) = self.line_table.get(line) {
            self.conflict_checks += 1;
            let compared = (acc.readers.len() + acc.writers.len()) as u64;
            check_cost =
                self.cfg.spec.conflict_check_cost + compared * self.cfg.spec.conflict_compare_cost;
            for &w in &acc.writers {
                if w != task && self.record(w).key() > my_key {
                    victims.push(w);
                }
            }
            if kind == AccessKind::Write {
                for &r in &acc.readers {
                    if r != task && self.record(r).key() > my_key && !victims.contains(&r) {
                        victims.push(r);
                    }
                }
            }
        }
        for v in victims {
            // The victim may already have been aborted transitively.
            if !self.record(v).key_is_live_for_abort() {
                continue;
            }
            self.abort_task(v, tile);
        }

        // Charge the cache/NoC cost of the access itself.
        let outcome = self.caches.access(core, line, kind);
        let mut latency = outcome.base_latency + check_cost;
        let line_flits = self.mesh.line_flits();
        match outcome.level {
            HitLevel::L1 | HitLevel::L2 => {}
            HitLevel::RemoteL2 { owner } => {
                let home = self.caches.home_tile(line);
                latency += 2 * self.mesh.latency(tile, owner) + self.mesh.latency(tile, home);
                let owner_hops = self.mesh.hops(tile, owner);
                self.record_traffic(TrafficClass::Memory, owner_hops, line_flits);
                let home_hops = self.mesh.hops(tile, home);
                let control_flits = self.mesh.control_flits();
                self.record_traffic(TrafficClass::Memory, home_hops, control_flits);
            }
            HitLevel::L3 { home } => {
                latency += 2 * self.mesh.latency(tile, home);
                let hops = self.mesh.hops(tile, home);
                self.record_traffic(TrafficClass::Memory, hops, line_flits);
            }
            HitLevel::Memory { home } => {
                latency += 2 * self.mesh.latency(tile, home);
                let hops = self.mesh.hops(tile, home) * 2 + 2;
                self.record_traffic(TrafficClass::Memory, hops, line_flits);
            }
        }
        for inv in &outcome.invalidated {
            let hops = self.mesh.hops(tile, *inv);
            let control_flits = self.mesh.control_flits();
            self.record_traffic(TrafficClass::Memory, hops, control_flits);
        }
        latency
    }

    /// Register a completed execution's read/write sets in the line table so
    /// later accesses by other tasks can detect conflicts against it.
    ///
    /// The sets are taken out of the record and restored afterwards (instead
    /// of cloned) so that registering a task allocates nothing.
    pub fn register_access_sets(&mut self, task: TaskId) {
        let rec = self.record_mut(task);
        let reads = std::mem::take(&mut rec.read_set);
        let writes = std::mem::take(&mut rec.write_set);
        for &line in &reads {
            let acc = self.line_table.entry_or_default(line);
            if !acc.readers.contains(&task) {
                acc.readers.push(task);
            }
        }
        for &line in &writes {
            let acc = self.line_table.entry_or_default(line);
            if !acc.writers.contains(&task) {
                acc.writers.push(task);
            }
        }
        let rec = self.record_mut(task);
        rec.read_set = reads;
        rec.write_set = writes;
    }

    fn unregister_access_sets(&mut self, task: TaskId) {
        let rec = self.record_mut(task);
        let reads = std::mem::take(&mut rec.read_set);
        let writes = std::mem::take(&mut rec.write_set);
        for &line in reads.iter().chain(writes.iter()) {
            if let Some(acc) = self.line_table.get_mut(line) {
                acc.readers.retain(|&t| t != task);
                acc.writers.retain(|&t| t != task);
                if acc.is_empty() {
                    self.line_table.remove(line);
                }
            }
        }
        let rec = self.record_mut(task);
        rec.read_set = reads;
        rec.write_set = writes;
    }

    // ------------------------------------------------------------------
    // Aborts
    // ------------------------------------------------------------------

    /// Abort `victim` and everything that transitively depends on it: its
    /// descendants (children will be re-created when the task re-runs) and
    /// every uncommitted later-key task that read or wrote data `victim`
    /// wrote (conservative data-dependence closure).
    pub fn abort_task(&mut self, victim: TaskId, aborter_tile: TileId) {
        // 1. Compute the abort set (closure over children and dependents).
        let mut set: Vec<TaskId> = Vec::new();
        let mut stack = vec![victim];
        while let Some(t) = stack.pop() {
            if set.contains(&t) {
                continue;
            }
            let rec = self.record(t);
            if rec.status.is_terminal() {
                continue;
            }
            set.push(t);
            // Children of the current execution.
            for &c in &rec.children {
                stack.push(c);
            }
            // Data-dependent tasks: later-key readers/writers of lines this
            // task wrote.
            let my_key = rec.key();
            for &line in &rec.write_set {
                if let Some(acc) = self.line_table.get(line) {
                    for &other in acc.readers.iter().chain(acc.writers.iter()) {
                        if other != t && self.record(other).key() > my_key {
                            stack.push(other);
                        }
                    }
                }
            }
        }

        // 2. Decide which members are discarded (their parent is also being
        //    aborted, so the parent's re-execution will re-create them).
        let discard: Vec<bool> = set
            .iter()
            .map(|&t| self.record(t).desc.parent.map(|p| set.contains(&p)).unwrap_or(false))
            .collect();

        // 3. Roll back all undo entries of the set, newest store first.
        let mut undo: Vec<swarm_mem::UndoEntry> = Vec::new();
        for &t in &set {
            undo.extend(self.record(t).undo.iter().copied());
        }
        let rollback_entries = undo.len() as u64;
        self.mem.rollback_all(&mut undo);

        // 4. Update per-task state.
        for (i, &t) in set.iter().enumerate() {
            self.unregister_access_sets(t);
            let tile = self.record(t).desc.tile;
            let status = self.record(t).status;
            let key = self.record(t).key();
            let already_aborted = self.record(t).aborted;
            let executed = !already_aborted
                && matches!(status, TaskStatus::Running { .. } | TaskStatus::Finished);
            // Announce each doomed task once: a Running member that an
            // earlier cascade already aborted (still draining on its core)
            // was announced then, so a second cascade reaching it is not a
            // new abort.
            if !status.is_terminal() && !already_aborted {
                let cycles = if executed { self.record(t).exec_cycles } else { 0 };
                let ts = self.record(t).desc.ts;
                self.observers.abort(&AbortEvent {
                    task: t,
                    ts,
                    tile,
                    aborter_tile,
                    cycles,
                    executed,
                });
            }
            if executed {
                // Abort message to the victim's tile.
                let hops = self.mesh.hops(aborter_tile, tile);
                let control_flits = self.mesh.control_flits();
                self.record_traffic(TrafficClass::Abort, hops, control_flits);
            }
            match status {
                TaskStatus::Idle => {
                    self.tiles[tile.index()].idle.remove(&key);
                }
                TaskStatus::Spilled => {
                    self.tiles[tile.index()].spilled.remove(&key);
                }
                TaskStatus::Finished => {
                    self.tiles[tile.index()].finished.remove(&key);
                    // A commit-queue slot was freed; stalled cores may now
                    // dispatch.
                    self.note_wake(tile);
                }
                TaskStatus::Running { .. } => {
                    // The core keeps executing the doomed task until its
                    // scheduled finish; the engine requeues or discards it
                    // then. Mark it so. A discard decision is sticky: once a
                    // parent abort dooms the task it must never be requeued.
                    let rec = self.record_mut(t);
                    rec.aborted = true;
                    rec.pending_discard = rec.pending_discard || discard[i];
                    rec.reset_speculation_only();
                    continue;
                }
                TaskStatus::Committed | TaskStatus::Discarded => continue,
            }
            // Non-running members are reset immediately.
            let rec = self.record_mut(t);
            rec.reset_execution();
            rec.abort_count += 1;
            if discard[i] {
                rec.status = TaskStatus::Discarded;
                self.unfinished.remove(&key);
                self.remaining_tasks -= 1;
            } else {
                rec.status = TaskStatus::Idle;
                rec.aborted = false;
                self.unfinished.insert(key);
                self.tiles[tile.index()].idle.insert(key);
                self.note_wake(tile);
            }
        }

        // 5. Rollback memory traffic.
        if rollback_entries > 0 {
            let flits = rollback_entries * self.mesh.control_flits();
            self.record_traffic(TrafficClass::Abort, 1, flits);
        }
    }

    /// Requeue or discard a running task whose execution was aborted, once
    /// its core finally releases it. Returns `true` if it was requeued.
    pub fn settle_aborted_running_task(&mut self, task: TaskId) -> bool {
        let (tile, key, discard) = {
            let rec = self.record(task);
            (rec.desc.tile, rec.key(), rec.pending_discard)
        };
        let rec = self.record_mut(task);
        rec.reset_execution();
        rec.abort_count += 1;
        rec.aborted = false;
        rec.pending_discard = false;
        if discard {
            rec.status = TaskStatus::Discarded;
            self.unfinished.remove(&key);
            self.remaining_tasks -= 1;
            false
        } else {
            rec.status = TaskStatus::Idle;
            self.unfinished.insert(key);
            self.tiles[tile.index()].idle.insert(key);
            self.note_wake(tile);
            true
        }
    }

    // ------------------------------------------------------------------
    // Commits
    // ------------------------------------------------------------------

    /// Commit a finished task: free its commit-queue entry, retire its
    /// speculative state and account its cycles. Returns `(tile, bucket,
    /// exec_cycles)` so the engine can inform the mapper.
    pub fn commit_task(&mut self, task: TaskId) -> (TileId, Option<u16>, u64) {
        let (tile, key, cycles, bucket) = {
            let rec = self.record(task);
            debug_assert_eq!(rec.status, TaskStatus::Finished, "only finished tasks commit");
            (rec.desc.tile, rec.key(), rec.exec_cycles, rec.desc.bucket)
        };
        self.unregister_access_sets(task);
        self.tiles[tile.index()].finished.remove(&key);
        self.remaining_tasks -= 1;
        {
            // Take the trace out of the record so the event can borrow it
            // while the observers borrow the rest of the state; it is not
            // restored (commits free their speculative memory anyway).
            let profiling = self.profiling;
            let trace = std::mem::take(&mut self.record_mut(task).access_trace);
            let (ts, hint, num_args) = {
                let rec = self.record(task);
                (rec.desc.ts, rec.desc.hint, rec.desc.args.len())
            };
            self.observers.commit(&CommitEvent {
                task,
                ts,
                hint,
                tile,
                bucket,
                cycles,
                num_args,
                accesses: profiling.then_some(trace.as_slice()),
            });
        }
        let rec = self.record_mut(task);
        rec.status = TaskStatus::Committed;
        // Free speculative state memory.
        rec.undo.clear();
        rec.undo.shrink_to_fit();
        self.note_wake(tile);
        (tile, bucket, cycles)
    }

    /// Whether `task` may commit ahead of earlier-created tasks with the same
    /// timestamp: its parent must have committed and no uncommitted
    /// earlier-key task may have touched its data in a conflicting way.
    pub fn can_commit_relaxed(&self, task: TaskId) -> bool {
        let rec = self.record(task);
        if rec.status != TaskStatus::Finished {
            return false;
        }
        if let Some(parent) = rec.desc.parent {
            if self.record(parent).status != TaskStatus::Committed {
                return false;
            }
        }
        let my_key = rec.key();
        // No earlier uncommitted writer of anything I read or wrote, and no
        // earlier uncommitted reader of anything I wrote.
        for &line in rec.read_set.iter().chain(rec.write_set.iter()) {
            if let Some(acc) = self.line_table.get(line) {
                for &w in &acc.writers {
                    if w != task && self.record(w).key() < my_key {
                        return false;
                    }
                }
            }
        }
        for &line in &rec.write_set {
            if let Some(acc) = self.line_table.get(line) {
                for &r in &acc.readers {
                    if r != task && self.record(r).key() < my_key {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl TaskRecord {
    /// Whether an abort request against this task still makes sense.
    pub(crate) fn key_is_live_for_abort(&self) -> bool {
        !self.status.is_terminal() && !self.aborted
    }

    /// Roll back only the speculation bookkeeping of a running task (its
    /// undo entries have already been applied by the cascade); keep the
    /// descriptor and timing so the engine can settle it at finish time.
    pub(crate) fn reset_speculation_only(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
        self.undo.clear();
        self.children.clear();
        self.access_trace.clear();
    }
}
