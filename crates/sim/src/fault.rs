//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s, each naming a
//! simulated cycle and a [`FaultKind`]. The engine schedules every event
//! into its timing wheel at run start, so faults fire at *exact,
//! reproducible* points in the event order: the same plan against the same
//! app and configuration perturbs the run identically every time. Attach a
//! plan with [`crate::SimBuilder::fault_plan`]; each execution is announced
//! through [`crate::SimObserver::on_fault_injected`].
//!
//! The fault family generalizes the lost-task hook the deadlock detector
//! was originally tested with (`Engine::inject_lost_task`):
//!
//! * **Recoverable faults** ([`FaultKind::DelayedMessage`],
//!   [`FaultKind::DuplicateMessage`], [`FaultKind::QueueSqueeze`],
//!   [`FaultKind::AbortStorm`], [`FaultKind::CorruptHint`]) perturb timing,
//!   traffic accounting, queue capacity or placement; the run must still
//!   complete with a `validate()`-clean, deterministic result.
//! * **Wedging faults** ([`FaultKind::LostTaskWake`], and
//!   [`FaultKind::StuckCore`] when no other core can reach the work) starve
//!   the system of progress; the run must terminate with a typed
//!   [`SimError`](swarm_types::SimError) — never a hang or a panic. The
//!   chaos battery in [`crate::chaos`] asserts exactly this invariant.
//!
//! Plans are serializable: the derive markers keep the types compatible
//! with the vendored `serde` surface, and the canonical interchange format
//! is the text form implemented by `Display`/`FromStr`
//! (`kind[:k=v[,k=v]]@cycle`, events joined by `;` — see
//! [`FaultPlan::from_str`]).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use swarm_types::{CoreId, TileId, Timestamp};

/// What goes wrong. All variants carry only small `Copy` scalars so a
/// [`FaultEvent`] can ride inside hashable experiment-request keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Register a task at timestamp `ts` on tile 0 that is counted as
    /// remaining work but has no task-queue entry and no pending wake — the
    /// lost-wake fault class. The run must end in a typed
    /// `SimError::Deadlock` once healthy work drains.
    LostTaskWake {
        /// Timestamp of the planted task.
        ts: Timestamp,
    },
    /// From the fault cycle on, every off-tile memory transfer issued by
    /// cores of `tile` takes `extra_cycles` longer (a persistently slow NoC
    /// link). Timing-only: results must stay correct and deterministic.
    DelayedMessage {
        /// Tile whose remote accesses are delayed.
        tile: TileId,
        /// Extra latency per delayed transfer, in cycles.
        extra_cycles: u32,
    },
    /// The next NoC message is delivered twice (and accounted twice in the
    /// traffic breakdown). Observational under the analytic NoC model:
    /// timing and results are untouched. Under
    /// [`swarm_types::NocModel::Contention`] the duplicate also walks the
    /// links a second time, so it occupies real bandwidth and can delay
    /// later messages — but never the one it duplicates.
    DuplicateMessage,
    /// From the fault cycle on, `tile`'s effective task-queue capacity is
    /// clamped to `capacity` entries, forcing spills (a partial task-unit
    /// failure). Recoverable through the existing spill/refill protocol.
    QueueSqueeze {
        /// Tile whose task queue is squeezed.
        tile: TileId,
        /// Effective capacity from the fault cycle on (clamped to >= 1).
        capacity: u16,
    },
    /// From the fault cycle on, `core` never dequeues another task. Other
    /// cores may absorb its work; if none can, the run must end in a typed
    /// `SimError::Deadlock`.
    StuckCore {
        /// The core that stops dequeuing.
        core: CoreId,
    },
    /// Abort every live speculative task (running or finished) once, in
    /// deterministic tile order. All aborted work requeues and re-executes,
    /// so the storm is recoverable by construction.
    AbortStorm,
    /// From the fault cycle on, every newly enqueued task with a concrete
    /// spatial hint has its hint value XORed with `xor` (a corrupted hint
    /// field). Hints steer placement only, so results must stay correct.
    CorruptHint {
        /// Mask XORed into `Hint::Value` hints.
        xor: u64,
    },
}

impl FaultKind {
    /// Short stable name of the fault class (the text-format keyword and
    /// the column label used by `swarm chaos`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LostTaskWake { .. } => "lost-wake",
            FaultKind::DelayedMessage { .. } => "delay",
            FaultKind::DuplicateMessage => "duplicate",
            FaultKind::QueueSqueeze { .. } => "squeeze",
            FaultKind::StuckCore { .. } => "stuck",
            FaultKind::AbortStorm => "abort-storm",
            FaultKind::CorruptHint { .. } => "corrupt-hint",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::LostTaskWake { ts } => write!(f, "lost-wake:ts={ts}"),
            FaultKind::DelayedMessage { tile, extra_cycles } => {
                write!(f, "delay:tile={},extra={extra_cycles}", tile.0)
            }
            FaultKind::DuplicateMessage => write!(f, "duplicate"),
            FaultKind::QueueSqueeze { tile, capacity } => {
                write!(f, "squeeze:tile={},cap={capacity}", tile.0)
            }
            FaultKind::StuckCore { core } => write!(f, "stuck:core={}", core.0),
            FaultKind::AbortStorm => write!(f, "abort-storm"),
            FaultKind::CorruptHint { xor } => write!(f, "corrupt-hint:xor={xor}"),
        }
    }
}

/// A single injectable fault: a [`FaultKind`] plus the simulated cycle at
/// which the engine executes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated cycle at which the fault fires. Same-cycle faults fire in
    /// plan order after every engine event already scheduled for the cycle.
    pub at_cycle: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.at_cycle)
    }
}

/// Parse-error type for the fault-plan text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

fn parse_args<'a>(
    spec: &str,
    body: Option<&'a str>,
    names: &[&str],
) -> Result<Vec<(&'a str, u64)>, FaultParseError> {
    let body = match body {
        Some(b) => b,
        None if names.is_empty() => return Ok(vec![]),
        None => return Err(FaultParseError(format!("`{spec}` is missing `{}`", names.join(",")))),
    };
    let mut out = Vec::new();
    for part in body.split(',') {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| FaultParseError(format!("`{part}` in `{spec}` is not `key=value`")))?;
        if !names.contains(&k) {
            return Err(FaultParseError(format!("unknown parameter `{k}` in `{spec}`")));
        }
        let v = v
            .parse::<u64>()
            .map_err(|_| FaultParseError(format!("`{v}` in `{spec}` is not a number")))?;
        out.push((k, v));
    }
    Ok(out)
}

fn lookup(args: &[(&str, u64)], name: &str, spec: &str) -> Result<u64, FaultParseError> {
    args.iter()
        .find(|(k, _)| *k == name)
        .map(|&(_, v)| v)
        .ok_or_else(|| FaultParseError(format!("`{spec}` is missing `{name}=`")))
}

impl FromStr for FaultEvent {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (kind_spec, cycle) = s
            .rsplit_once('@')
            .ok_or_else(|| FaultParseError(format!("`{s}` is missing `@cycle`")))?;
        let at_cycle = cycle
            .trim()
            .parse::<u64>()
            .map_err(|_| FaultParseError(format!("`{cycle}` is not a cycle number")))?;
        let (name, body) = match kind_spec.split_once(':') {
            Some((n, b)) => (n.trim(), Some(b)),
            None => (kind_spec.trim(), None),
        };
        let kind = match name {
            "lost-wake" => {
                let args = parse_args(s, body, &["ts"])?;
                FaultKind::LostTaskWake { ts: lookup(&args, "ts", s)? }
            }
            "delay" => {
                let args = parse_args(s, body, &["tile", "extra"])?;
                FaultKind::DelayedMessage {
                    tile: TileId(lookup(&args, "tile", s)? as u32),
                    extra_cycles: lookup(&args, "extra", s)? as u32,
                }
            }
            "duplicate" => {
                parse_args(s, body, &[])?;
                FaultKind::DuplicateMessage
            }
            "squeeze" => {
                let args = parse_args(s, body, &["tile", "cap"])?;
                FaultKind::QueueSqueeze {
                    tile: TileId(lookup(&args, "tile", s)? as u32),
                    capacity: lookup(&args, "cap", s)? as u16,
                }
            }
            "stuck" => {
                let args = parse_args(s, body, &["core"])?;
                FaultKind::StuckCore { core: CoreId(lookup(&args, "core", s)? as u32) }
            }
            "abort-storm" => {
                parse_args(s, body, &[])?;
                FaultKind::AbortStorm
            }
            "corrupt-hint" => {
                let args = parse_args(s, body, &["xor"])?;
                FaultKind::CorruptHint { xor: lookup(&args, "xor", s)? }
            }
            other => return Err(FaultParseError(format!("unknown fault kind `{other}`"))),
        };
        Ok(FaultEvent { at_cycle, kind })
    }
}

/// An ordered list of [`FaultEvent`]s to inject into one run.
///
/// The plan is executed verbatim: events are scheduled at their cycles in
/// plan order (ties fire in plan order), making every injected fault a
/// deterministic part of the event sequence. An empty plan is equivalent to
/// no plan at all.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append an event, builder-style.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Append an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The plan's events, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl From<FaultEvent> for FaultPlan {
    fn from(event: FaultEvent) -> Self {
        FaultPlan { events: vec![event] }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            plan.push(part.parse()?);
        }
        Ok(plan)
    }
}

/// One representative [`FaultEvent`] per fault class, all firing at
/// `at_cycle`: the per-combination battery `swarm chaos` (and the chaos
/// conformance kit in [`crate::chaos`]) sweeps.
pub fn standard_faults(at_cycle: u64) -> Vec<FaultEvent> {
    vec![
        FaultEvent { at_cycle, kind: FaultKind::LostTaskWake { ts: 50 } },
        FaultEvent {
            at_cycle,
            kind: FaultKind::DelayedMessage { tile: TileId(0), extra_cycles: 7 },
        },
        FaultEvent { at_cycle, kind: FaultKind::DuplicateMessage },
        FaultEvent { at_cycle, kind: FaultKind::QueueSqueeze { tile: TileId(0), capacity: 2 } },
        FaultEvent { at_cycle, kind: FaultKind::StuckCore { core: CoreId(0) } },
        FaultEvent { at_cycle, kind: FaultKind::AbortStorm },
        FaultEvent { at_cycle, kind: FaultKind::CorruptHint { xor: 0xDEAD_BEEF } },
    ]
}

/// Live fault switches consulted by the engine and state hot paths. All
/// fields start disabled; with no plan attached every check is a cheap
/// always-false branch and the run is bit-identical to a fault-free build.
#[derive(Debug, Default)]
pub(crate) struct FaultRuntime {
    /// `DelayedMessage`: tile whose remote transfers pay extra latency.
    pub delayed: Option<(TileId, u32)>,
    /// `DuplicateMessage`: deliver (and account) the next message twice.
    pub duplicate_next: bool,
    /// `QueueSqueeze`: tile whose task queue is clamped to a capacity.
    pub squeeze: Option<(TileId, u16)>,
    /// `StuckCore`: core that no longer dequeues.
    pub stuck: Option<CoreId>,
    /// `CorruptHint`: mask XORed into newly enqueued value hints.
    pub hint_xor: Option<u64>,
}

impl FaultRuntime {
    /// Whether `core` has been wedged by a `StuckCore` fault.
    #[inline]
    pub fn is_stuck(&self, core: CoreId) -> bool {
        self.stuck == Some(core)
    }

    /// Extra cycles each off-tile transfer from `tile` currently pays.
    #[inline]
    pub fn extra_remote_latency(&self, tile: TileId) -> u64 {
        match self.delayed {
            Some((t, extra)) if t == tile => extra as u64,
            _ => 0,
        }
    }

    /// The task-queue capacity `tile` may currently use, given the
    /// configured capacity `cap`.
    #[inline]
    pub fn effective_task_queue_cap(&self, tile: TileId, cap: usize) -> usize {
        match self.squeeze {
            Some((t, c)) if t == tile => cap.min((c as usize).max(1)),
            _ => cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_fault_round_trips_through_the_text_format() {
        for event in standard_faults(123) {
            let text = event.to_string();
            let parsed: FaultEvent = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, event, "{text}");
        }
    }

    #[test]
    fn plans_round_trip_and_tolerate_whitespace() {
        let plan = FaultPlan::new()
            .with(FaultEvent { at_cycle: 10, kind: FaultKind::AbortStorm })
            .with(FaultEvent {
                at_cycle: 20,
                kind: FaultKind::QueueSqueeze { tile: TileId(3), capacity: 4 },
            });
        let text = plan.to_string();
        assert_eq!(text, "abort-storm@10;squeeze:tile=3,cap=4@20");
        assert_eq!(text.parse::<FaultPlan>().unwrap(), plan);
        assert_eq!(
            " abort-storm@10 ; squeeze:tile=3,cap=4@20 ".parse::<FaultPlan>().unwrap(),
            plan
        );
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::new());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for bad in
            ["abort-storm", "nonsense@5", "delay:tile=1@x", "squeeze:tile=1@9", "lost-wake:ts=a@3"]
        {
            let err = bad.parse::<FaultEvent>().expect_err(bad).to_string();
            assert!(err.starts_with("invalid fault spec"), "{bad}: {err}");
        }
    }

    #[test]
    fn runtime_switches_start_disabled() {
        let rt = FaultRuntime::default();
        assert!(!rt.is_stuck(CoreId(0)));
        assert_eq!(rt.extra_remote_latency(TileId(0)), 0);
        assert_eq!(rt.effective_task_queue_cap(TileId(0), 64), 64);
    }

    #[test]
    fn runtime_switches_apply_only_to_their_target() {
        let rt = FaultRuntime {
            delayed: Some((TileId(1), 5)),
            squeeze: Some((TileId(2), 0)),
            stuck: Some(CoreId(3)),
            ..FaultRuntime::default()
        };
        assert_eq!(rt.extra_remote_latency(TileId(1)), 5);
        assert_eq!(rt.extra_remote_latency(TileId(0)), 0);
        // A zero-capacity squeeze still leaves one usable entry.
        assert_eq!(rt.effective_task_queue_cap(TileId(2), 64), 1);
        assert_eq!(rt.effective_task_queue_cap(TileId(1), 64), 64);
        assert!(rt.is_stuck(CoreId(3)) && !rt.is_stuck(CoreId(2)));
    }
}
