//! On-chip network model: a 2D mesh with X-Y routing, per-hop latencies and
//! flit-level traffic accounting by message class (paper Table II for the
//! mesh parameters, Fig. 5b / Fig. 8b for the traffic categories).
//!
//! The paper's machine uses a 16×16 mesh of 128-bit links with X-Y routing,
//! one cycle per hop when going straight and two on turns (Table II). The
//! evaluation reports NoC data transferred broken down into memory accesses,
//! abort traffic, task enqueues, and GVT updates (Fig. 5b); [`TrafficStats`]
//! mirrors exactly those categories.
//!
//! # Example
//!
//! ```
//! use swarm_noc::{Mesh, TrafficClass, TrafficStats};
//! use swarm_types::{NocConfig, TileId};
//!
//! let mesh = Mesh::new(4, 4, NocConfig::default());
//! let hops = mesh.hops(TileId(0), TileId(15));
//! assert_eq!(hops, 6); // 3 in X + 3 in Y
//!
//! let mut traffic = TrafficStats::default();
//! traffic.record(TrafficClass::Task, hops, 2);
//! assert_eq!(traffic.task_flit_hops, 12);
//! ```

pub mod link;
pub mod mesh;
pub mod traffic;

pub use link::{LinkCounters, LinkNet, LinkStats};
pub use mesh::{Mesh, DIR_LABELS, LINKS_PER_TILE};
pub use traffic::{TrafficClass, TrafficStats};
