//! Link contention: each directed mesh link as a bandwidth-limited FIFO.
//!
//! In [`swarm_types::NocModel::Contention`] every message walks its
//! dimension-ordered route link by link (see [`crate::Mesh::route_links`]).
//! A link serves one message at a time in arrival order and needs
//! `ceil(flits / link_flits_per_cycle)` cycles per message, so a message
//! arriving while the link is busy queues behind the in-flight ones and its
//! delivery time slips by the backlog. The model is work-conserving: a link
//! never idles while a message is waiting, and because arrival order is
//! deterministic (the engine processes events in a fixed total order) the
//! resulting delays are bit-identical across repeats and `--jobs` levels.
//!
//! The configured `link_queue_depth` bounds the *reported* occupancy — the
//! backlog a router's finite buffers would expose — not the departure times:
//! a work-conserving FIFO drains in the same order and at the same rate
//! regardless of how the backlog is buffered, so clamping only the statistic
//! keeps the model simple and the delays exact.

use std::collections::VecDeque;

use swarm_types::NocConfig;

use crate::traffic::TrafficClass;

/// Aggregate counters for one directed link (integer-only: these end up in
/// `RunStats`, which derives `Eq` so determinism checks can compare runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct LinkCounters {
    /// Messages that traversed the link.
    pub messages: u64,
    /// Total flits carried.
    pub flits: u64,
    /// Total cycles messages spent queued behind earlier ones.
    pub queue_cycles: u64,
    /// Sum over messages of the backlog observed on arrival (each clamped to
    /// `link_queue_depth`); divide by `messages` for the mean occupancy.
    pub occupancy_sum: u64,
    /// Largest backlog observed on any arrival (clamped to
    /// `link_queue_depth`).
    pub max_occupancy: u64,
}

impl LinkCounters {
    /// Mean backlog observed on arrival (0 when the link carried nothing).
    pub fn mean_occupancy(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.messages as f64
        }
    }
}

/// End-of-run snapshot of link contention: per-link counters plus queueing
/// cycles broken down by [`TrafficClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// One entry per directed link slot (see [`crate::Mesh::num_links`];
    /// index with the link ids of [`crate::Mesh::route_links`]).
    pub links: Vec<LinkCounters>,
    /// Queueing cycles per class, indexed by [`TrafficClass::index`].
    pub class_queue_cycles: [u64; TrafficClass::ALL.len()],
}

impl LinkStats {
    /// Total queueing cycles over every link and class.
    pub fn total_queue_cycles(&self) -> u64 {
        self.class_queue_cycles.iter().sum()
    }

    /// The busiest link by queueing cycles, as `(link id, counters)`.
    pub fn hottest_link(&self) -> Option<(u32, LinkCounters)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, c)| c.messages > 0)
            .max_by_key(|&(i, c)| (c.queue_cycles, std::cmp::Reverse(i)))
            .map(|(i, c)| (i as u32, *c))
    }
}

/// The live contention state of every directed link in the mesh.
#[derive(Debug, Clone)]
pub struct LinkNet {
    flits_per_cycle: u64,
    queue_depth: u64,
    /// Cycle at which each link finishes serving everything accepted so far.
    busy_until: Vec<u64>,
    /// Departure cycles of the messages still in flight on each link, in
    /// FIFO (= ascending) order; drained lazily to measure the backlog a new
    /// arrival queues behind. Capacity is retained across messages, so the
    /// steady state allocates nothing.
    in_flight: Vec<VecDeque<u64>>,
    counters: Vec<LinkCounters>,
    class_queue_cycles: [u64; TrafficClass::ALL.len()],
}

impl LinkNet {
    /// Create the link state for a mesh with `num_links` directed link slots
    /// (see [`crate::Mesh::num_links`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.link_flits_per_cycle` or `cfg.link_queue_depth` is
    /// zero (a validated `SystemConfig` rejects both).
    pub fn new(cfg: &NocConfig, num_links: usize) -> Self {
        assert!(cfg.link_flits_per_cycle > 0, "link_flits_per_cycle must be positive");
        assert!(cfg.link_queue_depth > 0, "link_queue_depth must be positive");
        LinkNet {
            flits_per_cycle: cfg.link_flits_per_cycle,
            queue_depth: cfg.link_queue_depth,
            busy_until: vec![0; num_links],
            in_flight: vec![VecDeque::new(); num_links],
            counters: vec![LinkCounters::default(); num_links],
            class_queue_cycles: [0; TrafficClass::ALL.len()],
        }
    }

    /// Pass one `flits`-flit message of `class` through `link`, arriving at
    /// cycle `enter`. Returns the departure cycle; the difference between
    /// `depart - enter` and the link's raw service time is the queueing
    /// delay, which is also accumulated into the link's counters.
    pub fn traverse(&mut self, link: u32, class: TrafficClass, flits: u64, enter: u64) -> u64 {
        let i = link as usize;
        let busy = self.busy_until[i];
        let wait = busy.saturating_sub(enter);
        let service = flits.div_ceil(self.flits_per_cycle).max(1);
        let depart = enter.max(busy) + service;
        self.busy_until[i] = depart;

        let queue = &mut self.in_flight[i];
        while queue.front().is_some_and(|&d| d <= enter) {
            queue.pop_front();
        }
        let occupancy = (queue.len() as u64).min(self.queue_depth);
        queue.push_back(depart);

        let c = &mut self.counters[i];
        c.messages += 1;
        c.flits += flits;
        c.queue_cycles += wait;
        c.occupancy_sum += occupancy;
        c.max_occupancy = c.max_occupancy.max(occupancy);
        self.class_queue_cycles[class.index()] += wait;
        depart
    }

    /// Raw service time of a `flits`-flit message on an idle link.
    pub fn service_cycles(&self, flits: u64) -> u64 {
        flits.div_ceil(self.flits_per_cycle).max(1)
    }

    /// Total queueing cycles accumulated so far, over every link and class.
    pub fn total_queue_cycles(&self) -> u64 {
        self.class_queue_cycles.iter().sum()
    }

    /// Snapshot the counters for end-of-run statistics.
    pub fn snapshot(&self) -> LinkStats {
        LinkStats { links: self.counters.clone(), class_queue_cycles: self.class_queue_cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(flits_per_cycle: u64, depth: u64) -> LinkNet {
        let cfg = NocConfig {
            link_flits_per_cycle: flits_per_cycle,
            link_queue_depth: depth,
            ..NocConfig::default()
        };
        LinkNet::new(&cfg, 8)
    }

    #[test]
    fn idle_link_charges_only_service_time() {
        let mut n = net(1, 16);
        // 5 flits at 1 flit/cycle: departs 5 cycles after arrival, no wait.
        assert_eq!(n.traverse(0, TrafficClass::Memory, 5, 100), 105);
        let s = n.snapshot();
        assert_eq!(s.links[0].queue_cycles, 0);
        assert_eq!(s.links[0].messages, 1);
        assert_eq!(s.links[0].flits, 5);
        assert_eq!(s.total_queue_cycles(), 0);
    }

    #[test]
    fn back_to_back_messages_queue_fifo() {
        let mut n = net(1, 16);
        // Three 4-flit messages arriving at the same cycle serialize.
        assert_eq!(n.traverse(0, TrafficClass::Memory, 4, 0), 4);
        assert_eq!(n.traverse(0, TrafficClass::Task, 4, 0), 8);
        assert_eq!(n.traverse(0, TrafficClass::Task, 4, 0), 12);
        let s = n.snapshot();
        assert_eq!(s.links[0].queue_cycles, 4 + 8);
        assert_eq!(s.class_queue_cycles[TrafficClass::Memory.index()], 0);
        assert_eq!(s.class_queue_cycles[TrafficClass::Task.index()], 12);
        assert_eq!(s.total_queue_cycles(), 12);
    }

    #[test]
    fn a_late_arrival_finds_the_link_idle_again() {
        let mut n = net(2, 16);
        // 4 flits at 2 flits/cycle = 2 cycles of service.
        assert_eq!(n.traverse(3, TrafficClass::Gvt, 4, 10), 12);
        // Arriving after the link drained: no queueing.
        assert_eq!(n.traverse(3, TrafficClass::Gvt, 4, 20), 22);
        assert_eq!(n.snapshot().links[3].queue_cycles, 0);
    }

    #[test]
    fn occupancy_counts_messages_ahead_and_clamps_at_depth() {
        let mut n = net(1, 2);
        for k in 0..5 {
            n.traverse(1, TrafficClass::Abort, 10, 0);
            let c = n.snapshot().links[1];
            // The k-th arrival queues behind min(k, depth) earlier messages.
            assert_eq!(c.max_occupancy, (k as u64).min(2));
        }
        let c = n.snapshot().links[1];
        // Backlogs seen: 0, 1, 2, 2 (clamped), 2 (clamped) — sum 7.
        assert_eq!(c.occupancy_sum, 7);
        assert_eq!(c.max_occupancy, 2);
        assert!((c.mean_occupancy() - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn links_are_independent() {
        let mut n = net(1, 16);
        assert_eq!(n.traverse(0, TrafficClass::Memory, 8, 0), 8);
        // A different link is idle even while link 0 is busy.
        assert_eq!(n.traverse(1, TrafficClass::Memory, 8, 0), 8);
        assert_eq!(n.total_queue_cycles(), 0);
    }

    #[test]
    fn hottest_link_picks_the_most_queued() {
        let mut n = net(1, 16);
        n.traverse(2, TrafficClass::Memory, 4, 0);
        n.traverse(2, TrafficClass::Memory, 4, 0);
        n.traverse(5, TrafficClass::Memory, 4, 0);
        let (link, c) = n.snapshot().hottest_link().expect("traffic exists");
        assert_eq!(link, 2);
        assert_eq!(c.queue_cycles, 4);
        assert!(LinkStats::default().hottest_link().is_none());
    }

    #[test]
    fn zero_flit_control_still_occupies_one_cycle() {
        let mut n = net(4, 16);
        // Service time is at least one cycle regardless of width.
        assert_eq!(n.traverse(0, TrafficClass::Gvt, 1, 0), 1);
        assert_eq!(n.service_cycles(1), 1);
    }
}
