//! Traffic accounting by message class (the categories of Fig. 5b).

use std::ops::AddAssign;

/// Classes of NoC traffic reported by the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Memory accesses between L2s and the LLC, or LLC and main memory.
    Memory,
    /// Abort traffic: child-abort messages and rollback memory accesses.
    Abort,
    /// Task descriptors enqueued to remote tiles.
    Task,
    /// GVT (commit protocol) updates.
    Gvt,
}

impl TrafficClass {
    /// All classes, in the order the paper's figures stack them.
    pub const ALL: [TrafficClass; 4] =
        [TrafficClass::Memory, TrafficClass::Abort, TrafficClass::Task, TrafficClass::Gvt];

    /// Position of this class in [`TrafficClass::ALL`] (used to index
    /// per-class counter arrays without a map).
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Memory => 0,
            TrafficClass::Abort => 1,
            TrafficClass::Task => 2,
            TrafficClass::Gvt => 3,
        }
    }

    /// Short label used by the harness tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Memory => "mem",
            TrafficClass::Abort => "abort",
            TrafficClass::Task => "task",
            TrafficClass::Gvt => "gvt",
        }
    }
}

/// Flit-hop counters per traffic class.
///
/// We account traffic in *flit-hops* (flits × hops travelled): this is
/// proportional to the energy and bandwidth consumed and matches the paper's
/// "NoC data transferred (total flits injected)" metric up to a constant
/// factor when comparing schedulers on the same workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Memory-access flit-hops.
    pub mem_flit_hops: u64,
    /// Abort and rollback flit-hops.
    pub abort_flit_hops: u64,
    /// Task-enqueue flit-hops.
    pub task_flit_hops: u64,
    /// GVT-update flit-hops.
    pub gvt_flit_hops: u64,
}

impl TrafficStats {
    /// Record `flits` of class `class` travelling `hops` hops.
    pub fn record(&mut self, class: TrafficClass, hops: u64, flits: u64) {
        let amount = hops * flits;
        match class {
            TrafficClass::Memory => self.mem_flit_hops += amount,
            TrafficClass::Abort => self.abort_flit_hops += amount,
            TrafficClass::Task => self.task_flit_hops += amount,
            TrafficClass::Gvt => self.gvt_flit_hops += amount,
        }
    }

    /// Total flit-hops over all classes.
    pub fn total(&self) -> u64 {
        self.mem_flit_hops + self.abort_flit_hops + self.task_flit_hops + self.gvt_flit_hops
    }

    /// Flit-hops of one class.
    pub fn of(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::Memory => self.mem_flit_hops,
            TrafficClass::Abort => self.abort_flit_hops,
            TrafficClass::Task => self.task_flit_hops,
            TrafficClass::Gvt => self.gvt_flit_hops,
        }
    }

    /// Fraction of the total contributed by one class (0 if no traffic).
    pub fn fraction(&self, class: TrafficClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.of(class) as f64 / total as f64
        }
    }
}

impl AddAssign for TrafficStats {
    fn add_assign(&mut self, rhs: Self) {
        self.mem_flit_hops += rhs.mem_flit_hops;
        self.abort_flit_hops += rhs.abort_flit_hops;
        self.task_flit_hops += rhs.task_flit_hops;
        self.gvt_flit_hops += rhs.gvt_flit_hops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_class() {
        let mut t = TrafficStats::default();
        t.record(TrafficClass::Memory, 3, 5);
        t.record(TrafficClass::Memory, 1, 1);
        t.record(TrafficClass::Abort, 2, 2);
        t.record(TrafficClass::Task, 4, 2);
        t.record(TrafficClass::Gvt, 1, 1);
        assert_eq!(t.mem_flit_hops, 16);
        assert_eq!(t.abort_flit_hops, 4);
        assert_eq!(t.task_flit_hops, 8);
        assert_eq!(t.gvt_flit_hops, 1);
        assert_eq!(t.total(), 29);
    }

    #[test]
    fn zero_hops_records_nothing() {
        let mut t = TrafficStats::default();
        t.record(TrafficClass::Memory, 0, 100);
        assert_eq!(t.total(), 0);
        assert_eq!(t.fraction(TrafficClass::Memory), 0.0);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let mut t = TrafficStats::default();
        for (i, class) in TrafficClass::ALL.iter().enumerate() {
            t.record(*class, (i + 1) as u64, 2);
        }
        let sum: f64 = TrafficClass::ALL.iter().map(|c| t.fraction(*c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_merges_counters() {
        let mut a = TrafficStats::default();
        a.record(TrafficClass::Task, 2, 3);
        let mut b = TrafficStats::default();
        b.record(TrafficClass::Task, 1, 1);
        b.record(TrafficClass::Gvt, 1, 1);
        a += b;
        assert_eq!(a.task_flit_hops, 7);
        assert_eq!(a.gvt_flit_hops, 1);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            TrafficClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
