//! Mesh geometry, routing distance and latency.

use swarm_types::{NocConfig, TileId};

/// Directed-link slots per tile: east, west, south, north (in the direction
/// encoding of [`Mesh::route_links`]).
pub const LINKS_PER_TILE: usize = 4;

/// Direction labels matching the link-id encoding of [`Mesh::route_links`].
pub const DIR_LABELS: [&str; LINKS_PER_TILE] = ["E", "W", "S", "N"];

/// A 2D mesh of tiles with dimension-ordered (X-Y) routing.
#[derive(Debug, Clone)]
pub struct Mesh {
    width: u32,
    height: u32,
    cfg: NocConfig,
    /// `log2(width)` when the width is a power of two, so the hot-path
    /// coordinate split can use shift/mask instead of division.
    width_shift: Option<u32>,
    /// Cached [`Mesh::flits_for_bytes`] of one cache line.
    line_flits: u64,
}

impl Mesh {
    /// Create a `width` × `height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, or if `cfg.link_bits` is zero —
    /// callers construct meshes from a validated `SystemConfig`
    /// (`SystemConfig::validate` rejects zero NoC knobs), so a zero width
    /// here is a bug, not a user error to clamp away.
    pub fn new(width: u32, height: u32, cfg: NocConfig) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(cfg.link_bits > 0, "link_bits must be positive");
        let bits = swarm_types::CACHE_LINE_BYTES * 8;
        let line_flits = cfg.control_flits + bits.div_ceil(cfg.link_bits);
        let width_shift = width.is_power_of_two().then(|| width.trailing_zeros());
        Mesh { width, height, cfg, width_shift, line_flits }
    }

    /// Split a tile id into (x, y) without the bounds check.
    #[inline]
    fn split(&self, t: u32) -> (u32, u32) {
        match self.width_shift {
            Some(shift) => (t & (self.width - 1), t >> shift),
            None => (t % self.width, t / self.width),
        }
    }

    /// Number of tiles in the mesh.
    pub fn num_tiles(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Mesh width (tiles along X).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (tiles along Y).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// (x, y) coordinates of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the tile is outside the mesh.
    pub fn coords(&self, tile: TileId) -> (u32, u32) {
        assert!(
            tile.index() < self.num_tiles(),
            "tile {tile} outside {}x{} mesh",
            self.width,
            self.height
        );
        self.split(tile.0)
    }

    /// Tile at coordinates (x, y).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates fall outside the mesh.
    pub fn tile_at(&self, x: u32, y: u32) -> TileId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        TileId(y * self.width + x)
    }

    /// Manhattan hop count between two tiles under X-Y routing.
    pub fn hops(&self, from: TileId, to: TileId) -> u64 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// Network latency in cycles from `from` to `to`: per-hop latency plus a
    /// turn penalty when the X-Y route changes dimension.
    pub fn latency(&self, from: TileId, to: TileId) -> u64 {
        if from == to {
            return 0;
        }
        let (fx, fy) = self.split(from.0);
        let (tx, ty) = self.split(to.0);
        let hops = u64::from(fx.abs_diff(tx) + fy.abs_diff(ty));
        let turns = u64::from(fx != tx && fy != ty);
        hops * self.cfg.hop_latency + turns * self.cfg.turn_penalty
    }

    /// Number of flits needed to move `bytes` of payload over this mesh's
    /// links, including one head flit of control.
    pub fn flits_for_bytes(&self, bytes: u64) -> u64 {
        let bits = bytes * 8;
        self.cfg.control_flits + bits.div_ceil(self.cfg.link_bits)
    }

    /// Flits for a full cache line (64 bytes).
    pub fn line_flits(&self) -> u64 {
        self.line_flits
    }

    /// Flits for a short control-only message (GVT update, abort signal).
    pub fn control_flits(&self) -> u64 {
        self.cfg.control_flits
    }

    /// Visit every directed link on the dimension-ordered (X-then-Y) route
    /// from `from` to `to`, in traversal order. Each link is identified as
    /// `source_tile_index * LINKS_PER_TILE + direction` with direction
    /// `0 = east (+x)`, `1 = west (-x)`, `2 = south (+y)`, `3 = north (-y)`,
    /// named after the tile the flit *leaves*. A `from == to` route visits
    /// nothing; the number of visits always equals [`Mesh::hops`].
    ///
    /// # Panics
    ///
    /// Panics if either tile is outside the mesh.
    pub fn route_links(&self, from: TileId, to: TileId, mut visit: impl FnMut(u32)) {
        let (mut x, mut y) = self.coords(from);
        let (tx, ty) = self.coords(to);
        while x != tx {
            let (dir, nx) = if x < tx { (0, x + 1) } else { (1, x - 1) };
            visit((y * self.width + x) * LINKS_PER_TILE as u32 + dir);
            x = nx;
        }
        while y != ty {
            let (dir, ny) = if y < ty { (2, y + 1) } else { (3, y - 1) };
            visit((y * self.width + x) * LINKS_PER_TILE as u32 + dir);
            y = ny;
        }
    }

    /// Total number of directed link slots (`num_tiles * LINKS_PER_TILE`).
    /// Edge tiles own slots pointing off-mesh that no route ever visits;
    /// indexing by slot keeps link lookup a shift instead of a map.
    pub fn num_links(&self) -> usize {
        self.num_tiles() * LINKS_PER_TILE
    }

    /// The `(source, destination)` tiles of a directed link id produced by
    /// [`Mesh::route_links`].
    ///
    /// # Panics
    ///
    /// Panics if the link id points off-mesh (a slot no route ever visits).
    pub fn link_endpoints(&self, link: u32) -> (TileId, TileId) {
        let tile = link / LINKS_PER_TILE as u32;
        let dir = link % LINKS_PER_TILE as u32;
        let (x, y) = self.coords(TileId(tile));
        let (nx, ny) = match dir {
            0 => (x + 1, y),
            1 => (x.checked_sub(1).expect("west link off-mesh"), y),
            2 => (x, y + 1),
            _ => (x, y.checked_sub(1).expect("north link off-mesh")),
        };
        (TileId(tile), self.tile_at(nx, ny))
    }

    /// Average hop distance between distinct tiles (useful as a sanity check
    /// and in the analytical tests).
    pub fn mean_hops(&self) -> f64 {
        let n = self.num_tiles();
        if n <= 1 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(TileId(a as u32), TileId(b as u32));
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4x4() -> Mesh {
        Mesh::new(4, 4, NocConfig::default())
    }

    #[test]
    fn coords_round_trip() {
        let m = mesh4x4();
        for t in 0..16u32 {
            let (x, y) = m.coords(TileId(t));
            assert_eq!(m.tile_at(x, y), TileId(t));
        }
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = mesh4x4();
        assert_eq!(m.hops(TileId(0), TileId(0)), 0);
        assert_eq!(m.hops(TileId(0), TileId(3)), 3);
        assert_eq!(m.hops(TileId(0), TileId(12)), 3);
        assert_eq!(m.hops(TileId(0), TileId(15)), 6);
        assert_eq!(m.hops(TileId(5), TileId(10)), 2);
    }

    #[test]
    fn hops_are_symmetric() {
        let m = mesh4x4();
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(m.hops(TileId(a), TileId(b)), m.hops(TileId(b), TileId(a)));
            }
        }
    }

    #[test]
    fn latency_adds_turn_penalty() {
        let m = mesh4x4();
        // Straight along X: no turn.
        assert_eq!(m.latency(TileId(0), TileId(3)), 3);
        // Diagonal route: one turn.
        assert_eq!(m.latency(TileId(0), TileId(5)), 2 + 1);
        // Same tile: free.
        assert_eq!(m.latency(TileId(7), TileId(7)), 0);
    }

    #[test]
    fn line_flits_match_link_width() {
        let m = mesh4x4();
        // 64 bytes = 512 bits over 128-bit links = 4 flits + 1 control.
        assert_eq!(m.line_flits(), 5);
        assert_eq!(m.control_flits(), 1);
        assert_eq!(m.flits_for_bytes(0), 1);
        assert_eq!(m.flits_for_bytes(16), 2);
    }

    #[test]
    fn single_tile_mesh_is_free() {
        let m = Mesh::new(1, 1, NocConfig::default());
        assert_eq!(m.num_tiles(), 1);
        assert_eq!(m.latency(TileId(0), TileId(0)), 0);
        assert_eq!(m.mean_hops(), 0.0);
    }

    #[test]
    fn mean_hops_grows_with_mesh_size() {
        let small = Mesh::new(2, 2, NocConfig::default()).mean_hops();
        let large = Mesh::new(8, 8, NocConfig::default()).mean_hops();
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_tile_panics() {
        let m = mesh4x4();
        let _ = m.coords(TileId(16));
    }

    #[test]
    #[should_panic(expected = "link_bits")]
    fn zero_link_bits_panics_instead_of_clamping() {
        let cfg = NocConfig { link_bits: 0, ..NocConfig::default() };
        let _ = Mesh::new(4, 4, cfg);
    }

    /// Collect the route as a link-id list.
    fn route(m: &Mesh, from: u32, to: u32) -> Vec<u32> {
        let mut links = Vec::new();
        m.route_links(TileId(from), TileId(to), |l| links.push(l));
        links
    }

    #[test]
    fn route_walk_covers_exactly_the_hop_count() {
        let m = mesh4x4();
        for a in 0..16u32 {
            for b in 0..16u32 {
                let links = route(&m, a, b);
                assert_eq!(links.len() as u64, m.hops(TileId(a), TileId(b)), "{a}->{b}");
            }
        }
    }

    #[test]
    fn route_walk_is_a_contiguous_x_then_y_path() {
        let m = mesh4x4();
        for a in 0..16u32 {
            for b in 0..16u32 {
                if a == b {
                    continue;
                }
                // Each link departs from where the previous one arrived, the
                // path starts at `a` and ends at `b`, and X moves precede Y
                // moves (dimension order).
                let links = route(&m, a, b);
                let mut at = TileId(a);
                let mut seen_y = false;
                for &l in &links {
                    let (src, dst) = m.link_endpoints(l);
                    assert_eq!(src, at, "route {a}->{b} teleported");
                    let x_move = l % LINKS_PER_TILE as u32 <= 1;
                    assert!(!(x_move && seen_y), "route {a}->{b} turned back to X");
                    seen_y |= !x_move;
                    at = dst;
                }
                assert_eq!(at, TileId(b), "route {a}->{b} ended elsewhere");
            }
        }
    }

    #[test]
    fn route_walk_on_same_tile_is_empty() {
        let m = mesh4x4();
        assert!(route(&m, 7, 7).is_empty());
    }
}
