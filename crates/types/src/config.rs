//! Configuration of the simulated system (the analogue of Table II).
//!
//! The paper simulates a 256-core, 64-tile chip. The defaults here describe
//! the same machine; [`SystemConfig::small`] and [`SystemConfig::with_cores`]
//! produce scaled-down versions used by tests and by the laptop-scale
//! experiment harness.

use serde::{Deserialize, Serialize};

use crate::ids::TileId;

/// Cache hierarchy parameters (latencies in cycles, capacities in lines).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// Per-core L1 capacity in cache lines (16 KB / 64 B = 256 in the paper).
    pub l1_lines: usize,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// Per-tile L2 capacity in cache lines (256 KB / 64 B = 4096).
    pub l2_lines: usize,
    /// L3 bank hit latency (cycles).
    pub l3_latency: u64,
    /// Per-tile L3 slice capacity in cache lines (1 MB / 64 B = 16384).
    pub l3_lines_per_tile: usize,
    /// Main memory latency (cycles).
    pub mem_latency: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1_latency: 2,
            l1_lines: 256,
            l2_latency: 7,
            l2_lines: 4096,
            l3_latency: 9,
            l3_lines_per_tile: 16384,
            mem_latency: 120,
        }
    }
}

/// Network fidelity level: how message delivery times are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NocModel {
    /// Purely analytic hop latencies (the historical model, and the default):
    /// every message pays `hops * hop_latency (+ turn_penalty)` regardless of
    /// load. Figure outputs are pinned against this mode.
    #[default]
    Analytic,
    /// Contention-aware: each directed mesh link is a bandwidth-limited FIFO
    /// (service time = flits / `link_flits_per_cycle`), messages walk their
    /// dimension-ordered route link by link, and queueing delay behind
    /// earlier messages is charged into delivery times.
    Contention,
}

/// On-chip network parameters (16x16 mesh of 128-bit links in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Cycles per hop when going straight.
    pub hop_latency: u64,
    /// Extra cycles when a route turns (X-Y routing turns at most once).
    pub turn_penalty: u64,
    /// Link width in bits; a 64-byte line payload is `512 / link_bits` flits.
    pub link_bits: u64,
    /// Flits in a control message (task enqueue header, GVT update, abort).
    pub control_flits: u64,
    /// Fidelity of the delivery-time model (see [`NocModel`]).
    pub model: NocModel,
    /// Flits a link accepts per cycle in [`NocModel::Contention`]; the
    /// service time of an `f`-flit message is `ceil(f / link_flits_per_cycle)`.
    pub link_flits_per_cycle: u64,
    /// Queue-depth bound per link in [`NocModel::Contention`]: the occupancy
    /// statistic reported per link saturates here. Links are work-conserving
    /// FIFOs, so departure times do not depend on this bound — it bounds the
    /// *observed* backlog, mirroring a router's finite buffer occupancy.
    pub link_queue_depth: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            hop_latency: 1,
            turn_penalty: 1,
            link_bits: 128,
            control_flits: 1,
            model: NocModel::Analytic,
            link_flits_per_cycle: 1,
            link_queue_depth: 16,
        }
    }
}

/// Task-queue, commit-queue and spill parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Task queue entries per core (64 in the paper).
    pub task_queue_per_core: usize,
    /// Commit queue entries per core (16 in the paper).
    pub commit_queue_per_core: usize,
    /// Occupancy fraction (percent) of the task queue at which the spill
    /// coalescer fires (85% in the paper).
    pub spill_threshold_pct: u8,
    /// Number of tasks spilled per coalescer invocation (15 in the paper).
    pub spill_batch: usize,
    /// Cycles charged per spilled or refilled task.
    pub spill_cost_per_task: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            task_queue_per_core: 64,
            commit_queue_per_core: 16,
            spill_threshold_pct: 85,
            spill_batch: 15,
            spill_cost_per_task: 10,
        }
    }
}

/// Speculation and commit-protocol parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Bits in each read/write Bloom filter signature (2 Kbit in the paper).
    pub bloom_bits: usize,
    /// Number of hash functions per Bloom filter (8-way in the paper).
    pub bloom_hashes: usize,
    /// Cycles per conflict check at a tile (5 in the paper).
    pub conflict_check_cost: u64,
    /// Cycles per commit-queue timestamp comparison during a check.
    pub conflict_compare_cost: u64,
    /// Whether Bloom-filter false positives cause (harmless but wasteful)
    /// aborts, as in real signature-based conflict detection. Exact sets are
    /// always kept for architectural correctness.
    pub bloom_false_positive_aborts: bool,
    /// Cycles between GVT (global virtual time) updates (200 in the paper).
    pub gvt_epoch: u64,
    /// Cycles charged per Swarm task-management instruction
    /// (enqueue / dequeue / finish, 5 in the paper).
    pub task_mgmt_cost: u64,
    /// Base cycles charged to every task execution, modelling the
    /// non-memory instructions of a short task body.
    pub task_base_cost: u64,
    /// Cycles charged per undo-log entry rolled back on abort.
    pub rollback_cost_per_entry: u64,
    /// If true, finished tasks whose timestamp equals the GVT and whose
    /// parent has committed may commit even if earlier-created same-timestamp
    /// tasks are still running (the "Swarm chooses an order among equal
    /// timestamps" rule; needed by the unordered STAMP benchmarks).
    pub relaxed_equal_ts_commit: bool,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            bloom_bits: 2048,
            bloom_hashes: 8,
            conflict_check_cost: 5,
            conflict_compare_cost: 1,
            bloom_false_positive_aborts: false,
            gvt_epoch: 200,
            task_mgmt_cost: 5,
            task_base_cost: 10,
            rollback_cost_per_entry: 2,
            relaxed_equal_ts_commit: true,
        }
    }
}

/// Full description of the simulated machine.
///
/// # Example
///
/// ```
/// use swarm_types::SystemConfig;
///
/// let cfg = SystemConfig::with_cores(16);
/// assert_eq!(cfg.num_cores(), 16);
/// assert_eq!(cfg.num_tiles(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Tiles along the X dimension of the mesh.
    pub tiles_x: u32,
    /// Tiles along the Y dimension of the mesh.
    pub tiles_y: u32,
    /// Cores per tile (4 in the paper).
    pub cores_per_tile: u32,
    /// Cache hierarchy parameters.
    pub cache: CacheConfig,
    /// Network parameters.
    pub noc: NocConfig,
    /// Queue and spill parameters.
    pub queues: QueueConfig,
    /// Speculation parameters.
    pub spec: SpeculationConfig,
    /// Load-balancer buckets per tile (16 in the paper).
    pub lb_buckets_per_tile: usize,
    /// Cycles between load-balancer reconfigurations (500 Kcycles in the
    /// paper; scaled down together with the workloads).
    pub lb_epoch: u64,
    /// Fraction (percent) of a tile's load surplus/deficit corrected per
    /// reconfiguration (80% in the paper).
    pub lb_correction_pct: u8,
    /// Seed for all randomized policies (Random mapper, NOHINT placement).
    pub seed: u64,
    /// Maximum simulated cycles the run may consume before it is aborted
    /// with `SimError::CycleBudgetExceeded`. Checked at GVT epochs so the
    /// hot loop pays nothing; 0 disables the budget.
    pub max_cycles: u64,
    /// Maximum wall-clock milliseconds the run may consume before it is
    /// aborted with `SimError::WallClockBudgetExceeded`. Checked at GVT
    /// epochs; 0 disables the budget. Termination under this budget is
    /// host-speed dependent, so budgeted runs are not cycle-deterministic.
    pub max_wall_ms: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        // The paper's 256-core, 64-tile machine.
        SystemConfig {
            tiles_x: 8,
            tiles_y: 8,
            cores_per_tile: 4,
            cache: CacheConfig::default(),
            noc: NocConfig::default(),
            queues: QueueConfig::default(),
            spec: SpeculationConfig::default(),
            lb_buckets_per_tile: 16,
            lb_epoch: 500_000,
            lb_correction_pct: 80,
            seed: 0xC0FFEE,
            max_cycles: 0,
            max_wall_ms: 0,
        }
    }
}

impl SystemConfig {
    /// The paper's full-scale 256-core, 64-tile configuration (Table II).
    pub fn paper_256core() -> Self {
        SystemConfig::default()
    }

    /// A small 4-tile, 16-core configuration suitable for unit tests.
    pub fn small() -> Self {
        let mut cfg = SystemConfig::with_cores(16);
        cfg.lb_epoch = 20_000;
        cfg
    }

    /// A single-core configuration (1 tile, 1 core): the serial baseline all
    /// speedups are measured against.
    pub fn single_core() -> Self {
        SystemConfig::with_cores(1)
    }

    /// A configuration with `cores` total cores. Core counts that are a
    /// multiple of 4 use 4 cores per tile and a square-ish mesh of tiles
    /// (matching how the paper scales K×K tile systems); smaller counts use
    /// one core per tile.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(cores: u32) -> Self {
        assert!(cores > 0, "core count must be positive");
        let mut cfg = SystemConfig::default();
        let (cores_per_tile, tiles) =
            if cores.is_multiple_of(4) { (4, cores / 4) } else { (1, cores) };
        let (tx, ty) = Self::mesh_dims(tiles);
        cfg.tiles_x = tx;
        cfg.tiles_y = ty;
        cfg.cores_per_tile = cores_per_tile;
        // Keep the load-balancer epoch proportional to the scaled-down runs
        // this configuration is used for (the paper reconfigures every
        // 500 Kcycles on >1 Bcycle runs).
        cfg.lb_epoch = 10_000;
        cfg
    }

    fn mesh_dims(tiles: u32) -> (u32, u32) {
        let mut x = (tiles as f64).sqrt().floor() as u32;
        while x > 1 && !tiles.is_multiple_of(x) {
            x -= 1;
        }
        (x.max(1), tiles / x.max(1))
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.num_tiles() * self.cores_per_tile as usize
    }

    /// Total task-queue capacity of one tile.
    pub fn task_queue_per_tile(&self) -> usize {
        self.queues.task_queue_per_core * self.cores_per_tile as usize
    }

    /// Total commit-queue capacity of one tile.
    pub fn commit_queue_per_tile(&self) -> usize {
        self.queues.commit_queue_per_core * self.cores_per_tile as usize
    }

    /// Total number of load-balancer buckets.
    pub fn num_buckets(&self) -> usize {
        (self.lb_buckets_per_tile * self.num_tiles()).max(1)
    }

    /// The tile that is the static-NUCA home of an L3 line.
    pub fn l3_home(&self, line: crate::ids::LineAddr) -> TileId {
        TileId(crate::hashing::hash_to_range(line.0, self.num_tiles()) as u32)
    }

    /// Validate internal consistency; returns a human-readable description of
    /// the first problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any dimension or capacity is zero, or a percentage
    /// parameter exceeds 100.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiles_x == 0 || self.tiles_y == 0 {
            return Err("mesh dimensions must be positive".into());
        }
        if self.cores_per_tile == 0 {
            return Err("cores_per_tile must be positive".into());
        }
        if self.queues.task_queue_per_core == 0 || self.queues.commit_queue_per_core == 0 {
            return Err("queue capacities must be positive".into());
        }
        if self.queues.spill_threshold_pct > 100 {
            return Err("spill_threshold_pct must be <= 100".into());
        }
        if self.lb_correction_pct > 100 {
            return Err("lb_correction_pct must be <= 100".into());
        }
        if self.spec.bloom_bits == 0 || self.spec.bloom_hashes == 0 {
            return Err("Bloom filter parameters must be positive".into());
        }
        if self.spec.gvt_epoch == 0 || self.lb_epoch == 0 {
            return Err("epoch lengths must be positive".into());
        }
        if self.noc.link_bits == 0 {
            return Err("noc.link_bits must be positive".into());
        }
        if self.noc.control_flits == 0 {
            return Err("noc.control_flits must be positive".into());
        }
        if self.noc.link_flits_per_cycle == 0 {
            return Err("noc.link_flits_per_cycle must be positive".into());
        }
        if self.noc.link_queue_depth == 0 {
            return Err("noc.link_queue_depth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LineAddr;

    #[test]
    fn default_matches_paper_table2() {
        let cfg = SystemConfig::paper_256core();
        assert_eq!(cfg.num_tiles(), 64);
        assert_eq!(cfg.num_cores(), 256);
        assert_eq!(cfg.queues.task_queue_per_core, 64);
        assert_eq!(cfg.queues.commit_queue_per_core, 16);
        assert_eq!(cfg.task_queue_per_tile() * 64, 16384);
        assert_eq!(cfg.commit_queue_per_tile() * 64, 4096);
        assert_eq!(cfg.spec.gvt_epoch, 200);
        assert_eq!(cfg.spec.bloom_bits, 2048);
        assert_eq!(cfg.lb_buckets_per_tile, 16);
        assert_eq!(cfg.num_buckets(), 1024);
        cfg.validate().unwrap();
    }

    #[test]
    fn with_cores_produces_requested_count() {
        for cores in [1u32, 2, 4, 8, 16, 64, 144, 256] {
            let cfg = SystemConfig::with_cores(cores);
            assert_eq!(cfg.num_cores(), cores as usize, "cores={cores}");
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn single_core_has_one_tile() {
        let cfg = SystemConfig::single_core();
        assert_eq!(cfg.num_cores(), 1);
        assert_eq!(cfg.num_tiles(), 1);
    }

    #[test]
    fn l3_home_is_stable_and_in_range() {
        let cfg = SystemConfig::small();
        for l in 0..1000u64 {
            let home = cfg.l3_home(LineAddr(l));
            assert!(home.index() < cfg.num_tiles());
            assert_eq!(home, cfg.l3_home(LineAddr(l)));
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = SystemConfig::small();
        cfg.cores_per_tile = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small();
        cfg.queues.spill_threshold_pct = 150;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small();
        cfg.spec.gvt_epoch = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_noc_knobs() {
        let mut cfg = SystemConfig::small();
        cfg.noc.link_bits = 0;
        assert!(cfg.validate().unwrap_err().contains("link_bits"));

        let mut cfg = SystemConfig::small();
        cfg.noc.control_flits = 0;
        assert!(cfg.validate().unwrap_err().contains("control_flits"));

        let mut cfg = SystemConfig::small();
        cfg.noc.link_flits_per_cycle = 0;
        assert!(cfg.validate().unwrap_err().contains("link_flits_per_cycle"));

        let mut cfg = SystemConfig::small();
        cfg.noc.link_queue_depth = 0;
        assert!(cfg.validate().unwrap_err().contains("link_queue_depth"));
    }

    #[test]
    fn noc_model_defaults_to_analytic() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.noc.model, NocModel::Analytic);
        let mut cfg = SystemConfig::small();
        cfg.noc.model = NocModel::Contention;
        cfg.validate().unwrap();
    }

    #[test]
    fn budgets_default_to_unlimited_and_validate() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.max_cycles, 0, "no cycle budget by default");
        assert_eq!(cfg.max_wall_ms, 0, "no wall-clock budget by default");
        let mut cfg = SystemConfig::small();
        cfg.max_cycles = 1_000;
        cfg.max_wall_ms = 50;
        cfg.validate().unwrap();
    }

    #[test]
    fn mesh_dims_cover_all_tiles() {
        for tiles in 1..=64u32 {
            let (x, y) = SystemConfig::mesh_dims(tiles);
            assert_eq!(x * y, tiles, "tiles={tiles}");
        }
    }
}
