//! The spatial hint abstraction (Section III of the paper).
//!
//! A hint is an abstract 64-bit integer given at task-creation time that
//! denotes the data the task is likely to access. Two special values exist:
//! `NOHINT` (the programmer does not know what the task will access) and
//! `SAMEHINT` (use the parent task's hint, exploiting parent-child locality).

use serde::{Deserialize, Serialize};

use crate::hashing::{hash_to_bucket, hash_to_range, hash_to_u16};
use crate::ids::TileId;

/// Default number of bits used to index load-balancer buckets (Section VI
/// uses a 10-bit hint-to-bucket hash, i.e. 1024 buckets at 64 tiles).
pub const HINT_BUCKET_BITS: u32 = 10;

/// A spatial hint attached to a task at creation time.
///
/// # Example
///
/// ```
/// use swarm_types::Hint;
///
/// let h = Hint::value(0xF00);
/// assert!(h.is_value());
/// assert_eq!(h.raw(), Some(0xF00));
/// assert_eq!(Hint::None.raw(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Hint {
    /// A concrete 64-bit integer identifying the data likely to be accessed
    /// (an address, an object id, a `(table, key)` pair, ...).
    Value(u64),
    /// `NOHINT`: the data accessed is unknown at creation time. The task is
    /// sent to a random tile.
    #[default]
    None,
    /// `SAMEHINT`: inherit the parent task's hint (and therefore its tile).
    Same,
}

impl Hint {
    /// Convenience constructor for [`Hint::Value`].
    pub fn value(v: u64) -> Self {
        Hint::Value(v)
    }

    /// Hint derived from the cache line containing byte address `addr`
    /// (the "cache-line address" pattern used by the graph benchmarks).
    pub fn cache_line(addr: u64) -> Self {
        Hint::Value(addr / crate::ids::CACHE_LINE_BYTES)
    }

    /// Hint built from an object id within a named space, e.g.
    /// `(table id, primary key)` in `silo`. The spaces are kept disjoint by
    /// mixing the space id into the upper bits.
    pub fn object(space: u32, id: u64) -> Self {
        Hint::Value(((space as u64) << 48) ^ id)
    }

    /// The raw integer value, if this is a concrete hint.
    pub fn raw(self) -> Option<u64> {
        match self {
            Hint::Value(v) => Some(v),
            Hint::None | Hint::Same => None,
        }
    }

    /// Whether this is a concrete integer hint.
    pub fn is_value(self) -> bool {
        matches!(self, Hint::Value(_))
    }

    /// Resolve `SAMEHINT` against the parent's hint. `NOHINT` and concrete
    /// hints are returned unchanged; `SAMEHINT` with no parent hint becomes
    /// `NOHINT`.
    pub fn resolve(self, parent: Option<Hint>) -> Hint {
        match self {
            Hint::Same => match parent {
                Some(Hint::Value(v)) => Hint::Value(v),
                Some(Hint::Same) | Some(Hint::None) | None => Hint::None,
            },
            other => other,
        }
    }

    /// The destination tile for this hint under the static hash mapping of
    /// Section III-B (no load balancer). Returns `None` for `NOHINT` and
    /// `SAMEHINT`, which the scheduler resolves differently (random tile and
    /// parent tile respectively).
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero.
    pub fn to_tile(self, num_tiles: usize) -> Option<TileId> {
        self.raw().map(|v| TileId(hash_to_range(v, num_tiles) as u32))
    }

    /// The 16-bit hashed hint carried in task descriptors and compared by the
    /// dispatch logic to serialize same-hint tasks. `NOHINT`/`SAMEHINT` tasks
    /// have no hash and are never serialized against others.
    pub fn hash16(self) -> Option<u16> {
        self.raw().map(hash_to_u16)
    }

    /// The load-balancer bucket for this hint (Section VI).
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is zero.
    pub fn bucket(self, num_buckets: usize) -> Option<u16> {
        self.raw().map(|v| hash_to_bucket(v, num_buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_line_hints_group_same_line() {
        assert_eq!(Hint::cache_line(0), Hint::cache_line(63));
        assert_ne!(Hint::cache_line(0), Hint::cache_line(64));
    }

    #[test]
    fn object_hints_separate_spaces() {
        assert_ne!(Hint::object(0, 5), Hint::object(1, 5));
        assert_eq!(Hint::object(2, 5), Hint::object(2, 5));
    }

    #[test]
    fn resolve_same_hint_takes_parent_value() {
        assert_eq!(Hint::Same.resolve(Some(Hint::value(9))), Hint::value(9));
        assert_eq!(Hint::Same.resolve(Some(Hint::None)), Hint::None);
        assert_eq!(Hint::Same.resolve(None), Hint::None);
        assert_eq!(Hint::value(3).resolve(Some(Hint::value(9))), Hint::value(3));
        assert_eq!(Hint::None.resolve(Some(Hint::value(9))), Hint::None);
    }

    #[test]
    fn same_hint_to_tile_is_none() {
        assert_eq!(Hint::Same.to_tile(64), None);
        assert_eq!(Hint::None.to_tile(64), None);
        assert!(Hint::value(77).to_tile(64).is_some());
    }

    #[test]
    fn equal_hints_map_to_equal_tiles_and_hashes() {
        let a = Hint::value(123456);
        let b = Hint::value(123456);
        assert_eq!(a.to_tile(64), b.to_tile(64));
        assert_eq!(a.hash16(), b.hash16());
        assert_eq!(a.bucket(1024), b.bucket(1024));
    }

    #[test]
    fn default_hint_is_nohint() {
        assert_eq!(Hint::default(), Hint::None);
    }

    #[test]
    fn abstract_hints_have_no_hash_or_bucket() {
        for h in [Hint::None, Hint::Same] {
            assert_eq!(h.raw(), None);
            assert_eq!(h.hash16(), None);
            assert_eq!(h.bucket(1024), None);
            assert!(!h.is_value());
        }
    }

    #[test]
    fn tiles_stay_in_bounds_for_all_tile_counts() {
        for num_tiles in [1, 2, 3, 16, 64, 256] {
            for v in 0..500u64 {
                let tile = Hint::value(v).to_tile(num_tiles).expect("value hint maps");
                assert!((tile.0 as usize) < num_tiles);
            }
        }
    }

    #[test]
    fn buckets_cover_the_default_bucket_space() {
        let num_buckets = 1usize << HINT_BUCKET_BITS;
        let seen: std::collections::HashSet<u16> =
            (0..50_000u64).filter_map(|v| Hint::value(v).bucket(num_buckets)).collect();
        assert!(seen.len() > num_buckets * 9 / 10, "only {} of {num_buckets} hit", seen.len());
    }

    #[test]
    fn object_hints_distinguish_spaces_across_many_ids() {
        for id in 0..1000u64 {
            assert_ne!(Hint::object(1, id), Hint::object(2, id));
            assert_eq!(Hint::object(1, id).resolve(None), Hint::object(1, id));
        }
    }

    #[test]
    fn resolve_is_idempotent() {
        for h in [Hint::value(7), Hint::None, Hint::Same] {
            let once = h.resolve(Some(Hint::value(3)));
            assert_eq!(once.resolve(Some(Hint::value(3))), once);
        }
    }
}
