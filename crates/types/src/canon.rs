//! Canonical byte serialization and content-addressed keys.
//!
//! Every simulation in this reproduction is deterministic: the statistics of
//! a run are fully determined by its configuration. That makes a run point
//! *content-addressable* — a canonical byte form of the configuration can
//! key a cache of completed results. This module defines that byte form:
//!
//! * [`CanonBuf`] — an append-only byte buffer with fixed-width
//!   little-endian integer writes and length-prefixed strings, so the
//!   encoding is injective (no two distinct field sequences share bytes);
//! * [`Canonical`] — the trait a configuration type implements to write its
//!   fields, in a fixed documented order, into a [`CanonBuf`];
//! * [`CanonKey`] — a 128-bit digest of the canonical bytes, computed with
//!   two independent [`hash64`] chains. Equal
//!   configurations always produce equal keys; distinct configurations
//!   collide with probability ~2⁻¹²⁸ per pair, which is negligible next to
//!   the simulation counts this repo can ever produce.
//!
//! The serving layer (`swarm_serve`) uses [`CanonKey`] to name cached
//! `RunStats` entries in memory and on disk; the hex
//! form ([`CanonKey::hex`]) is the on-disk file name.
//!
//! # Example
//!
//! ```
//! use swarm_types::{key_of, Canonical, SystemConfig};
//!
//! let a = SystemConfig::with_cores(16);
//! let mut b = SystemConfig::with_cores(16);
//! assert_eq!(key_of(&a), key_of(&b), "equal configs share a key");
//! b.seed ^= 1;
//! assert_ne!(key_of(&a), key_of(&b), "any field change moves the key");
//! ```

use std::fmt;

use crate::config::{
    CacheConfig, NocConfig, NocModel, QueueConfig, SpeculationConfig, SystemConfig,
};
use crate::hashing::hash64;

/// Append-only byte buffer for canonical encodings.
///
/// All integers are written fixed-width little-endian; strings are
/// length-prefixed. Fixed widths are what make the encoding injective: a
/// field can never borrow bytes from its neighbour, so two value sequences
/// that differ in any field differ in the output bytes.
#[derive(Debug, Default, Clone)]
pub struct CanonBuf {
    bytes: Vec<u8>,
}

impl CanonBuf {
    /// An empty buffer.
    pub fn new() -> CanonBuf {
        CanonBuf::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the buffer and return its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (canonical encodings must not depend on
    /// the host's pointer width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a string, length-prefixed with its byte length as a `u64`.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.bytes.extend_from_slice(v.as_bytes());
    }
}

/// A type with a canonical byte form.
///
/// Implementations must write every semantically relevant field, in a fixed
/// order, using the fixed-width [`CanonBuf`] writers — never a formatting
/// shortcut whose output could collide across distinct values.
pub trait Canonical {
    /// Append this value's canonical bytes to `buf`.
    fn canonicalize(&self, buf: &mut CanonBuf);

    /// The 128-bit content key of this value (see [`key_of`]).
    fn canon_key(&self) -> CanonKey {
        key_of(self)
    }
}

/// Compute the [`CanonKey`] of any [`Canonical`] value.
pub fn key_of<T: Canonical + ?Sized>(value: &T) -> CanonKey {
    let mut buf = CanonBuf::new();
    value.canonicalize(&mut buf);
    CanonKey::of_bytes(buf.as_bytes())
}

/// A 128-bit content key over a canonical byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonKey {
    /// High 64 bits of the digest.
    pub hi: u64,
    /// Low 64 bits of the digest.
    pub lo: u64,
}

impl CanonKey {
    /// Digest a byte string with two independent [`hash64`] chains.
    ///
    /// The chains differ in their initial state and in how each word is
    /// mixed in, and both absorb the input length, so prefix-extended
    /// inputs and zero-padded tails produce different keys.
    pub fn of_bytes(bytes: &[u8]) -> CanonKey {
        let mut hi = hash64(0x5EED_CAFE_0000_0001 ^ bytes.len() as u64);
        let mut lo = hash64(0x5EED_CAFE_0000_0002 ^ (bytes.len() as u64).rotate_left(32));
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let word = u64::from_le_bytes(word);
            hi = hash64(hi ^ word);
            lo = hash64(lo.rotate_left(32) ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        CanonKey { hi, lo }
    }

    /// The 32-character lowercase hex form (stable; used as the on-disk
    /// cache file name).
    pub fn hex(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for CanonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl Canonical for u8 {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u8(*self);
    }
}

impl Canonical for u32 {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u32(*self);
    }
}

impl Canonical for u64 {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u64(*self);
    }
}

impl Canonical for usize {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_usize(*self);
    }
}

impl Canonical for bool {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_bool(*self);
    }
}

impl Canonical for str {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_str(self);
    }
}

impl Canonical for String {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_str(self);
    }
}

/// `None` writes a 0 tag; `Some(v)` writes a 1 tag followed by `v`.
impl<T: Canonical> Canonical for Option<T> {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.canonicalize(buf);
            }
        }
    }
}

/// Length-prefixed element sequence.
impl<T: Canonical> Canonical for [T] {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_usize(self.len());
        for item in self {
            item.canonicalize(buf);
        }
    }
}

impl<T: Canonical> Canonical for Vec<T> {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        self.as_slice().canonicalize(buf);
    }
}

impl Canonical for CacheConfig {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u64(self.l1_latency);
        buf.put_usize(self.l1_lines);
        buf.put_u64(self.l2_latency);
        buf.put_usize(self.l2_lines);
        buf.put_u64(self.l3_latency);
        buf.put_usize(self.l3_lines_per_tile);
        buf.put_u64(self.mem_latency);
    }
}

impl Canonical for NocModel {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u8(match self {
            NocModel::Analytic => 0,
            NocModel::Contention => 1,
        });
    }
}

impl Canonical for NocConfig {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u64(self.hop_latency);
        buf.put_u64(self.turn_penalty);
        buf.put_u64(self.link_bits);
        buf.put_u64(self.control_flits);
        self.model.canonicalize(buf);
        buf.put_u64(self.link_flits_per_cycle);
        buf.put_u64(self.link_queue_depth);
    }
}

impl Canonical for QueueConfig {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_usize(self.task_queue_per_core);
        buf.put_usize(self.commit_queue_per_core);
        buf.put_u8(self.spill_threshold_pct);
        buf.put_usize(self.spill_batch);
        buf.put_u64(self.spill_cost_per_task);
    }
}

impl Canonical for SpeculationConfig {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_usize(self.bloom_bits);
        buf.put_usize(self.bloom_hashes);
        buf.put_u64(self.conflict_check_cost);
        buf.put_u64(self.conflict_compare_cost);
        buf.put_bool(self.bloom_false_positive_aborts);
        buf.put_u64(self.gvt_epoch);
        buf.put_u64(self.task_mgmt_cost);
        buf.put_u64(self.task_base_cost);
        buf.put_u64(self.rollback_cost_per_entry);
        buf.put_bool(self.relaxed_equal_ts_commit);
    }
}

impl Canonical for SystemConfig {
    fn canonicalize(&self, buf: &mut CanonBuf) {
        buf.put_u32(self.tiles_x);
        buf.put_u32(self.tiles_y);
        buf.put_u32(self.cores_per_tile);
        self.cache.canonicalize(buf);
        self.noc.canonicalize(buf);
        self.queues.canonicalize(buf);
        self.spec.canonicalize(buf);
        buf.put_usize(self.lb_buckets_per_tile);
        buf.put_u64(self.lb_epoch);
        buf.put_u8(self.lb_correction_pct);
        buf.put_u64(self.seed);
        buf.put_u64(self.max_cycles);
        buf.put_u64(self.max_wall_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_share_keys_and_bytes() {
        let a = SystemConfig::with_cores(16);
        let b = SystemConfig::with_cores(16);
        let mut ba = CanonBuf::new();
        let mut bb = CanonBuf::new();
        a.canonicalize(&mut ba);
        b.canonicalize(&mut bb);
        assert_eq!(ba.as_bytes(), bb.as_bytes());
        assert_eq!(key_of(&a), key_of(&b));
    }

    #[test]
    fn every_system_config_field_moves_the_key() {
        // One mutator per field (including every nested field); each edited
        // config must produce a key distinct from the base and from every
        // other edit — the injectivity the result cache depends on.
        let mutators: Vec<fn(&mut SystemConfig)> = vec![
            |c| c.tiles_x += 1,
            |c| c.tiles_y += 1,
            |c| c.cores_per_tile += 1,
            |c| c.cache.l1_latency += 1,
            |c| c.cache.l1_lines += 1,
            |c| c.cache.l2_latency += 1,
            |c| c.cache.l2_lines += 1,
            |c| c.cache.l3_latency += 1,
            |c| c.cache.l3_lines_per_tile += 1,
            |c| c.cache.mem_latency += 1,
            |c| c.noc.hop_latency += 1,
            |c| c.noc.turn_penalty += 1,
            |c| c.noc.link_bits += 1,
            |c| c.noc.control_flits += 1,
            |c| c.noc.model = NocModel::Contention,
            |c| c.noc.link_flits_per_cycle += 1,
            |c| c.noc.link_queue_depth += 1,
            |c| c.queues.task_queue_per_core += 1,
            |c| c.queues.commit_queue_per_core += 1,
            |c| c.queues.spill_threshold_pct += 1,
            |c| c.queues.spill_batch += 1,
            |c| c.queues.spill_cost_per_task += 1,
            |c| c.spec.bloom_bits += 1,
            |c| c.spec.bloom_hashes += 1,
            |c| c.spec.conflict_check_cost += 1,
            |c| c.spec.conflict_compare_cost += 1,
            |c| c.spec.bloom_false_positive_aborts = !c.spec.bloom_false_positive_aborts,
            |c| c.spec.gvt_epoch += 1,
            |c| c.spec.task_mgmt_cost += 1,
            |c| c.spec.task_base_cost += 1,
            |c| c.spec.rollback_cost_per_entry += 1,
            |c| c.spec.relaxed_equal_ts_commit = !c.spec.relaxed_equal_ts_commit,
            |c| c.lb_buckets_per_tile += 1,
            |c| c.lb_epoch += 1,
            |c| c.lb_correction_pct += 1,
            |c| c.seed += 1,
            |c| c.max_cycles += 1,
            |c| c.max_wall_ms += 1,
        ];
        let base = SystemConfig::with_cores(16);
        let mut keys = vec![key_of(&base)];
        for (i, m) in mutators.iter().enumerate() {
            let mut edited = base.clone();
            m(&mut edited);
            let key = key_of(&edited);
            assert!(!keys.contains(&key), "mutator #{i} collided with an earlier key");
            keys.push(key);
        }
    }

    #[test]
    fn string_lengths_prevent_prefix_collisions() {
        // ["ab","c"] and ["a","bc"] concatenate identically; the length
        // prefixes must keep them apart.
        let a = vec!["ab".to_string(), "c".to_string()];
        let b = vec!["a".to_string(), "bc".to_string()];
        assert_ne!(key_of(&a), key_of(&b));
    }

    #[test]
    fn option_tags_distinguish_none_from_zero() {
        let none: Option<u64> = None;
        let zero: Option<u64> = Some(0);
        assert_ne!(key_of(&none), key_of(&zero));
    }

    #[test]
    fn hex_is_32_lowercase_chars_and_stable() {
        let key = key_of(&SystemConfig::default());
        let hex = key.hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(hex, key.hex(), "hex form is deterministic");
        assert_eq!(hex, format!("{key}"));
    }

    #[test]
    fn trailing_zero_bytes_change_the_key() {
        // The digest absorbs the length, so zero-padding that the chunked
        // word loop alone would not see still changes the key.
        let a = CanonKey::of_bytes(&[1, 2, 3]);
        let b = CanonKey::of_bytes(&[1, 2, 3, 0]);
        assert_ne!(a, b);
    }
}
