//! Common types for the Swarm spatial-hints reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for tasks, tiles and cores, timestamps, the
//! [`Hint`] type that is the paper's central abstraction, deterministic
//! hashing utilities, and the [`SystemConfig`] describing the simulated
//! machine (the analogue of Table II in the paper).
//!
//! # Example
//!
//! ```
//! use swarm_types::{Hint, SystemConfig, TileId};
//!
//! let cfg = SystemConfig::small();
//! assert_eq!(cfg.num_tiles(), cfg.tiles_x as usize * cfg.tiles_y as usize);
//!
//! let hint = Hint::value(42);
//! let tile = hint.to_tile(cfg.num_tiles()).unwrap_or(TileId(0));
//! assert!((tile.0 as usize) < cfg.num_tiles());
//! ```

#![warn(missing_docs)]

pub mod canon;
pub mod config;
pub mod error;
pub mod hashing;
pub mod hint;
pub mod ids;

pub use canon::{key_of, CanonBuf, CanonKey, Canonical};
pub use config::{CacheConfig, NocConfig, NocModel, QueueConfig, SpeculationConfig, SystemConfig};
pub use error::{SimError, SimResult};
pub use hashing::{
    fast_mix64, hash64, hash_to_bucket, hash_to_range, hash_to_u16, FastBuildHasher, FastHashMap,
    FastHashSet, FastHasher,
};
pub use hint::{Hint, HINT_BUCKET_BITS};
pub use ids::{Addr, CoreId, LineAddr, TaskFnId, TaskId, TileId, Timestamp, CACHE_LINE_BYTES};
