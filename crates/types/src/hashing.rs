//! Deterministic hash functions used throughout the simulator.
//!
//! The hardware described in the paper uses small fixed hash functions (H3
//! hashes for Bloom filters, a 6-bit hash for hint-to-tile mapping, a 16-bit
//! hash for same-hint serialization, and a 10-bit hash for hint-to-bucket
//! mapping). We use a single 64-bit mixer (a SplitMix64 finalizer) and
//! truncate it; it is deterministic, stateless, and well distributed, which
//! is all the model needs.

/// A 64-bit finalizer (SplitMix64 style). Deterministic across runs and
/// platforms; never allocates.
#[inline]
pub fn hash64(value: u64) -> u64 {
    let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash `value` into the range `[0, n)`.
///
/// # Panics
///
/// Panics if `n` is zero.
#[inline]
pub fn hash_to_range(value: u64, n: usize) -> usize {
    assert!(n > 0, "hash range must be non-empty");
    let h = hash64(value);
    // Power-of-two ranges (every paper mesh: 4, 16, 64 tiles) take a mask
    // instead of a hardware divide; `h % n == h & (n - 1)` exactly, so the
    // result is bit-identical either way.
    if n.is_power_of_two() {
        (h & (n as u64 - 1)) as usize
    } else {
        (h % n as u64) as usize
    }
}

/// The 16-bit hashed hint carried by task descriptors and used by the
/// dispatch logic to serialize same-hint tasks (Section III-B).
#[inline]
pub fn hash_to_u16(value: u64) -> u16 {
    (hash64(value) & 0xFFFF) as u16
}

/// Hash a hint into one of `num_buckets` load-balancer buckets
/// (Section VI: 16 buckets per tile by default).
///
/// # Panics
///
/// Panics if `num_buckets` is zero.
#[inline]
pub fn hash_to_bucket(value: u64, num_buckets: usize) -> u16 {
    assert!(num_buckets > 0, "bucket count must be non-empty");
    assert!(num_buckets <= u16::MAX as usize + 1, "bucket count must fit in u16");
    (hash64(value.rotate_left(17)) % num_buckets as u64) as u16
}

/// A cheap 64-bit mixer for *hash-table indexing* (one multiply, two
/// xor-shifts — the MurmurHash3 finalizer's first half).
///
/// This is deliberately weaker than [`hash64`]: it exists so the hot-path
/// data structures (`LruSet`, the cache directory, the line-access table) can
/// index their tables with a single cheap hash instead of SipHash. It must
/// *not* be used where the paper's fixed hash functions are being modelled —
/// simulated-architecture decisions (home tiles, hint buckets, Bloom
/// signatures) always go through [`hash64`] so results stay bit-identical.
#[inline]
pub fn fast_mix64(value: u64) -> u64 {
    let mut z = value ^ (value >> 33);
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^ (z >> 33)
}

/// A [`std::hash::Hasher`] over [`fast_mix64`] for `HashMap`/`HashSet` keyed
/// by integers or integer newtypes (line addresses, task ids).
///
/// Deterministic across runs and platforms (unlike the default `RandomState`
/// SipHash), and far cheaper per lookup. Multi-word keys fold each word into
/// the running state with one mix per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for non-integer keys: fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = fast_mix64(self.state ^ i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FastHasher`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBuildHasher;

impl std::hash::BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed through [`FastHasher`] (deterministic, one cheap hash).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed through [`FastHasher`] (deterministic, one cheap hash).
pub type FastHashSet<K> = std::collections::HashSet<K, FastBuildHasher>;

/// A family of independent hash functions, used by the Bloom filter model to
/// emulate the H3 hash functions of LogTM-SE-style signatures.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u64>,
}

impl HashFamily {
    /// Create a family of `k` independent hash functions.
    pub fn new(k: usize) -> Self {
        let seeds = (0..k as u64)
            .map(|i| hash64(0xDEAD_BEEF_u64.wrapping_add(i.wrapping_mul(0x1234_5678_9ABC_DEF1))))
            .collect();
        HashFamily { seeds }
    }

    /// Number of hash functions in the family.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Evaluate the `i`-th hash function on `value`, reduced modulo `range`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `range` is zero.
    #[inline]
    pub fn hash(&self, i: usize, value: u64, range: usize) -> usize {
        assert!(range > 0, "hash range must be non-empty");
        (hash64(value ^ self.seeds[i]) % range as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash64_is_deterministic() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(42), hash64(43));
    }

    #[test]
    fn hash_to_range_stays_in_range() {
        for v in 0..1000u64 {
            let r = hash_to_range(v, 7);
            assert!(r < 7);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn hash_to_range_zero_panics() {
        let _ = hash_to_range(1, 0);
    }

    #[test]
    fn hash_to_range_spreads_values() {
        // All 64 tiles should receive at least one of 10k consecutive hints.
        let mut seen = HashSet::new();
        for v in 0..10_000u64 {
            seen.insert(hash_to_range(v, 64));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn hash_to_bucket_spreads_values() {
        let mut seen = HashSet::new();
        for v in 0..50_000u64 {
            seen.insert(hash_to_bucket(v, 1024));
        }
        // Nearly every bucket of 1024 should be hit by 50k hints.
        assert!(seen.len() > 1000, "only {} buckets hit", seen.len());
    }

    #[test]
    fn hash_family_functions_differ() {
        let fam = HashFamily::new(8);
        assert_eq!(fam.len(), 8);
        assert!(!fam.is_empty());
        let a: Vec<usize> = (0..8).map(|i| fam.hash(i, 12345, 2048)).collect();
        let distinct: HashSet<_> = a.iter().collect();
        assert!(distinct.len() > 1, "hash family produced identical outputs");
    }

    #[test]
    fn hash_to_u16_differs_for_nearby_hints() {
        let collisions = (0..1000u64).filter(|&v| hash_to_u16(v) == hash_to_u16(v + 1)).count();
        assert!(collisions < 5, "too many adjacent 16-bit collisions: {collisions}");
    }

    #[test]
    fn hash64_golden_values_are_stable() {
        // Simulation results must replay bit-identically across platforms
        // and future refactors; these pin the SplitMix64 finalizer.
        assert_eq!(hash64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(hash64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(hash64(u64::MAX), 0xE4D9_71771B652C20);
    }

    #[test]
    fn hash64_flips_roughly_half_the_bits_per_input_bit() {
        let mut total = 0u32;
        for bit in 0..64 {
            total += (hash64(0x1234_5678) ^ hash64(0x1234_5678 ^ (1 << bit))).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg} bits flipped on average");
    }

    #[test]
    #[should_panic(expected = "bucket count must be non-empty")]
    fn hash_to_bucket_zero_panics() {
        let _ = hash_to_bucket(1, 0);
    }

    #[test]
    #[should_panic(expected = "must fit in u16")]
    fn hash_to_bucket_oversized_panics() {
        let _ = hash_to_bucket(1, u16::MAX as usize + 2);
    }

    #[test]
    fn hash_to_bucket_accepts_full_u16_range() {
        let b = hash_to_bucket(99, u16::MAX as usize + 1);
        let _ = b; // any u16 is in range; just must not panic
    }

    #[test]
    fn hash_family_respects_range_and_is_deterministic() {
        let fam = HashFamily::new(4);
        let twin = HashFamily::new(4);
        for i in 0..4 {
            for v in 0..200u64 {
                let h = fam.hash(i, v, 53);
                assert!(h < 53);
                assert_eq!(h, twin.hash(i, v, 53));
            }
        }
    }

    #[test]
    fn hash_family_members_are_independent() {
        // Two members of the family should agree only about 1/range of the
        // time; catching accidental seed collapse.
        let fam = HashFamily::new(2);
        let agreements =
            (0..10_000u64).filter(|&v| fam.hash(0, v, 1024) == fam.hash(1, v, 1024)).count();
        assert!(agreements < 100, "family members agree {agreements}/10000 times");
    }
}
