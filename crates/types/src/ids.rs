//! Identifier newtypes for the simulated machine and for tasks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Size of one cache line in bytes (the granularity of conflict detection
/// and of the `cacheLine(ptr)` hint pattern used by the graph benchmarks).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Logical timestamp of a task. Swarm guarantees that tasks appear to run in
/// timestamp order; equal timestamps are unordered (transactional) and the
/// simulator breaks ties by creation order.
pub type Timestamp = u64;

/// Identifier of a task function registered by an application.
pub type TaskFnId = u16;

/// A byte address in the simulated shared memory.
pub type Addr = u64;

/// Globally unique identifier of a dynamic task instance.
///
/// Task ids are allocated monotonically by the simulator, so a child task
/// always has a larger id than its parent. The pair `(Timestamp, TaskId)`
/// forms the total commit order used by the GVT algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a tile (a group of cores sharing an L2 and a task unit).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TileId(pub u32);

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

impl TileId {
    /// Index of this tile as a `usize`, for indexing per-tile vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a core, expressed as a global index across all tiles.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl CoreId {
    /// Index of this core as a `usize`, for indexing per-core vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The tile this core belongs to, given the number of cores per tile.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_tile` is zero.
    pub fn tile(self, cores_per_tile: u32) -> TileId {
        assert!(cores_per_tile > 0, "cores_per_tile must be positive");
        TileId(self.0 / cores_per_tile)
    }
}

/// A cache-line address: a byte address with the low `log2(CACHE_LINE_BYTES)`
/// bits dropped. Conflict detection and the cache model operate on lines.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `addr`.
    pub fn containing(addr: Addr) -> Self {
        LineAddr(addr / CACHE_LINE_BYTES)
    }

    /// The first byte address of this line.
    pub fn base_addr(self) -> Addr {
        self.0 * CACHE_LINE_BYTES
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(addr: Addr) -> Self {
        LineAddr::containing(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_containing_groups_by_64_bytes() {
        assert_eq!(LineAddr::containing(0), LineAddr(0));
        assert_eq!(LineAddr::containing(63), LineAddr(0));
        assert_eq!(LineAddr::containing(64), LineAddr(1));
        assert_eq!(LineAddr::containing(128), LineAddr(2));
    }

    #[test]
    fn line_addr_base_addr_round_trips() {
        let line = LineAddr::containing(1000);
        assert!(line.base_addr() <= 1000);
        assert!(1000 < line.base_addr() + CACHE_LINE_BYTES);
    }

    #[test]
    fn core_to_tile_mapping() {
        assert_eq!(CoreId(0).tile(4), TileId(0));
        assert_eq!(CoreId(3).tile(4), TileId(0));
        assert_eq!(CoreId(4).tile(4), TileId(1));
        assert_eq!(CoreId(15).tile(4), TileId(3));
    }

    #[test]
    #[should_panic(expected = "cores_per_tile must be positive")]
    fn core_to_tile_zero_cores_panics() {
        let _ = CoreId(0).tile(0);
    }

    #[test]
    fn task_ids_order_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(format!("{}", TaskId(7)), "T7");
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", TileId(3)).is_empty());
        assert!(!format!("{}", CoreId(3)).is_empty());
        assert!(!format!("{}", LineAddr(3)).is_empty());
    }

    #[test]
    fn line_addr_from_addr() {
        let l: LineAddr = 130u64.into();
        assert_eq!(l, LineAddr(2));
    }
}
