//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

use crate::ids::{TaskId, Timestamp};

/// Result alias used by fallible simulator APIs.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by the simulator and the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The system configuration is internally inconsistent.
    InvalidConfig(String),
    /// An application registered or referenced an unknown task function.
    UnknownTaskFn(u16),
    /// A child task was enqueued with a timestamp lower than its parent's.
    TimestampRegression {
        /// Parent timestamp.
        parent: u64,
        /// Child timestamp (must be >= parent).
        child: u64,
    },
    /// The simulation exceeded the configured safety limit on executed tasks,
    /// which almost always indicates an application livelock.
    TaskLimitExceeded(u64),
    /// The final memory state did not match the serial reference.
    ValidationFailed(String),
    /// Tasks remain outstanding but no event can ever make progress again
    /// (e.g. a task was registered but never made dispatchable). The seed
    /// engine silently spun on periodic GVT events forever in this
    /// situation; the engine now detects the quiescent state and reports it.
    Deadlock {
        /// Number of tasks still outstanding when the system quiesced.
        remaining: u64,
        /// Minimum timestamp among the outstanding tasks — the commit
        /// frontier the system was wedged behind.
        min_ts: Timestamp,
        /// The outstanding task with the minimum `(ts, id)` order key:
        /// the first task the commit walk would have needed next.
        stuck_task: TaskId,
    },
    /// The run exceeded its configured maximum simulated-cycle budget
    /// (see `SystemConfig::max_cycles`). Checked at GVT epochs.
    CycleBudgetExceeded {
        /// The configured cycle budget.
        budget: u64,
        /// Simulated cycle at which the overrun was detected.
        cycle: u64,
        /// Number of tasks still outstanding at detection.
        remaining: u64,
        /// Global virtual time (commit frontier) at detection.
        last_gvt: Timestamp,
    },
    /// The run exceeded its configured wall-clock budget (see
    /// `SystemConfig::max_wall_ms`). Checked at GVT epochs; inherently
    /// host-speed dependent, so the exact trip cycle is not deterministic.
    WallClockBudgetExceeded {
        /// The configured wall-clock budget in milliseconds.
        budget_ms: u64,
        /// Wall-clock milliseconds actually elapsed at detection.
        elapsed_ms: u64,
        /// Simulated cycle at which the overrun was detected.
        cycle: u64,
        /// Number of tasks still outstanding at detection.
        remaining: u64,
        /// Global virtual time (commit frontier) at detection.
        last_gvt: Timestamp,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid system configuration: {msg}"),
            SimError::UnknownTaskFn(id) => write!(f, "unknown task function id {id}"),
            SimError::TimestampRegression { parent, child } => {
                write!(f, "child task timestamp {child} is lower than parent timestamp {parent}")
            }
            SimError::TaskLimitExceeded(n) => {
                write!(f, "executed more than {n} tasks; likely livelock")
            }
            SimError::ValidationFailed(msg) => {
                write!(f, "validation against serial reference failed: {msg}")
            }
            SimError::Deadlock { remaining, min_ts, stuck_task } => {
                write!(
                    f,
                    "simulation deadlocked with {remaining} tasks outstanding \
                     (first stuck: task {} at timestamp {min_ts})",
                    stuck_task.0
                )
            }
            SimError::CycleBudgetExceeded { budget, cycle, remaining, last_gvt } => {
                write!(
                    f,
                    "cycle budget of {budget} exceeded at cycle {cycle} \
                     ({remaining} tasks outstanding, gvt {last_gvt})"
                )
            }
            SimError::WallClockBudgetExceeded {
                budget_ms,
                elapsed_ms,
                cycle,
                remaining,
                last_gvt,
            } => {
                write!(
                    f,
                    "wall-clock budget of {budget_ms} ms exceeded ({elapsed_ms} ms elapsed) \
                     at cycle {cycle} ({remaining} tasks outstanding, gvt {last_gvt})"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty_lowercase() {
        let errors = [
            SimError::InvalidConfig("x".into()),
            SimError::UnknownTaskFn(3),
            SimError::TimestampRegression { parent: 5, child: 2 },
            SimError::TaskLimitExceeded(10),
            SimError::ValidationFailed("mismatch".into()),
            SimError::Deadlock { remaining: 4, min_ts: 17, stuck_task: TaskId(9) },
            SimError::CycleBudgetExceeded { budget: 100, cycle: 150, remaining: 2, last_gvt: 7 },
            SimError::WallClockBudgetExceeded {
                budget_ms: 10,
                elapsed_ms: 25,
                cycle: 9_000,
                remaining: 3,
                last_gvt: 42,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn deadlock_display_names_the_stuck_task() {
        let e = SimError::Deadlock { remaining: 4, min_ts: 17, stuck_task: TaskId(9) };
        let s = e.to_string();
        assert!(s.contains("4 tasks outstanding"), "{s}");
        assert!(s.contains("task 9"), "{s}");
        assert!(s.contains("timestamp 17"), "{s}");
    }

    #[test]
    fn budget_errors_carry_diagnostics_in_display() {
        let c =
            SimError::CycleBudgetExceeded { budget: 100, cycle: 150, remaining: 2, last_gvt: 7 }
                .to_string();
        assert!(c.contains("100") && c.contains("150") && c.contains("gvt 7"), "{c}");
        let w = SimError::WallClockBudgetExceeded {
            budget_ms: 10,
            elapsed_ms: 25,
            cycle: 9_000,
            remaining: 3,
            last_gvt: 42,
        }
        .to_string();
        assert!(w.contains("10 ms") && w.contains("25 ms") && w.contains("9000"), "{w}");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<SimError>();
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
