//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Result alias used by fallible simulator APIs.
pub type SimResult<T> = Result<T, SimError>;

/// Errors surfaced by the simulator and the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The system configuration is internally inconsistent.
    InvalidConfig(String),
    /// An application registered or referenced an unknown task function.
    UnknownTaskFn(u16),
    /// A child task was enqueued with a timestamp lower than its parent's.
    TimestampRegression {
        /// Parent timestamp.
        parent: u64,
        /// Child timestamp (must be >= parent).
        child: u64,
    },
    /// The simulation exceeded the configured safety limit on executed tasks,
    /// which almost always indicates an application livelock.
    TaskLimitExceeded(u64),
    /// The final memory state did not match the serial reference.
    ValidationFailed(String),
    /// Tasks remain outstanding but no event can ever make progress again
    /// (e.g. a task was registered but never made dispatchable). The seed
    /// engine silently spun on periodic GVT events forever in this
    /// situation; the engine now detects the quiescent state and reports it.
    Deadlock {
        /// Number of tasks still outstanding when the system quiesced.
        remaining: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid system configuration: {msg}"),
            SimError::UnknownTaskFn(id) => write!(f, "unknown task function id {id}"),
            SimError::TimestampRegression { parent, child } => {
                write!(f, "child task timestamp {child} is lower than parent timestamp {parent}")
            }
            SimError::TaskLimitExceeded(n) => {
                write!(f, "executed more than {n} tasks; likely livelock")
            }
            SimError::ValidationFailed(msg) => {
                write!(f, "validation against serial reference failed: {msg}")
            }
            SimError::Deadlock { remaining } => {
                write!(f, "simulation deadlocked with {remaining} tasks outstanding")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty_lowercase() {
        let errors = [
            SimError::InvalidConfig("x".into()),
            SimError::UnknownTaskFn(3),
            SimError::TimestampRegression { parent: 5, child: 2 },
            SimError::TaskLimitExceeded(10),
            SimError::ValidationFailed("mismatch".into()),
            SimError::Deadlock { remaining: 4 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<SimError>();
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
