//! Simulated memory system for the Swarm spatial-hints reproduction.
//!
//! This models the memory side of the baseline architecture (paper
//! Section II and the hierarchy rows of Table II). Two independent pieces
//! live here:
//!
//! * [`SimMemory`]: a word-addressed store holding all mutable shared state
//!   of an application, with undo records so the speculation layer can roll
//!   back aborted tasks (eager versioning, as in LogTM-SE / Swarm).
//! * [`CacheModel`]: a line-granular model of the paper's three-level cache
//!   hierarchy (per-core L1s, per-tile L2s, a static-NUCA shared L3) with
//!   directory-style owner/sharer tracking. The model reports *where* an
//!   access was served from; the simulator crate combines that with the mesh
//!   model to charge cycles and network flits.
//!
//! # Example
//!
//! ```
//! use swarm_mem::SimMemory;
//!
//! let mut mem = SimMemory::new();
//! assert_eq!(mem.load(0x100), 0);
//! let old = mem.store(0x100, 7);
//! assert_eq!(old, 0);
//! assert_eq!(mem.load(0x100), 7);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod layout;
pub mod lru;
pub mod memory;
pub mod table;

pub use cache::{AccessKind, AccessOutcome, CacheModel, HitLevel};
pub use layout::{AddressSpace, Region};
pub use lru::LruSet;
pub use memory::{SimMemory, UndoEntry};
pub use table::{OpenTable, Probe};
