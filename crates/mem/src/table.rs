//! The open-addressed table core shared by the hot-path structures.
//!
//! [`LruSet`](crate::LruSet)'s key index and the cache directory both need
//! the same thing: a flat, linearly probed `u64 -> V` table keyed by one
//! [`fast_mix64`] hash, with tombstone-free (backward-shift) deletion and
//! doubling growth. The probing and deletion logic is subtle enough that it
//! must exist exactly once; policy (load factors, growth triggers, what `V`
//! is) stays with the callers.
//!
//! `u64::MAX` is reserved as the "empty" key sentinel — line addresses are
//! byte addresses divided by the line size, so no real key ever reaches it.

use swarm_types::fast_mix64;

/// Reserved key marking an empty table position.
pub const EMPTY_KEY: u64 = u64::MAX;

/// A flat, linearly probed `u64 -> V` open-addressed table.
///
/// Keys and values live in parallel arrays so probing scans one contiguous
/// `u64` array without touching the values. The table never tracks its own
/// occupancy or resizes itself: callers decide when to [`grow`](Self::grow).
///
/// Consumers: [`crate::LruSet`]'s key index and the cache directory in this
/// crate, and `swarm_sim`'s speculative line-access table.
#[derive(Debug, Clone)]
pub struct OpenTable<V: Copy> {
    keys: Vec<u64>,
    vals: Vec<V>,
    mask: usize,
}

/// Where a probe ended: at the key, or at the empty slot where it would go.
pub enum Probe {
    /// The key is present at this position.
    Found(usize),
    /// The key is absent; it belongs at this (empty) position.
    Vacant(usize),
}

impl<V: Copy> OpenTable<V> {
    /// Create a table of `table_len` slots (must be a power of two), with
    /// the value array pre-filled with `fill`.
    pub fn new(table_len: usize, fill: V) -> Self {
        debug_assert!(table_len.is_power_of_two());
        OpenTable {
            keys: vec![EMPTY_KEY; table_len],
            vals: vec![fill; table_len],
            mask: table_len - 1,
        }
    }

    /// Number of slots (not occupied entries; the table does not track len).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Immutable value at `pos`.
    pub fn val_at(&self, pos: usize) -> V {
        self.vals[pos]
    }

    /// Mutable value at `pos`.
    pub fn val_at_mut(&mut self, pos: usize) -> &mut V {
        &mut self.vals[pos]
    }

    /// Probe for `key`: one hash, then a linear scan of the key array.
    #[inline]
    pub fn probe(&self, key: u64) -> Probe {
        let mut pos = fast_mix64(key) as usize & self.mask;
        loop {
            let k = self.keys[pos];
            if k == key {
                return Probe::Found(pos);
            }
            if k == EMPTY_KEY {
                return Probe::Vacant(pos);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Fill the vacant position `pos` (as returned by [`probe`](Self::probe))
    /// with `key` and `val`.
    #[inline]
    pub fn occupy(&mut self, pos: usize, key: u64, val: V) {
        debug_assert_ne!(key, EMPTY_KEY, "u64::MAX is reserved as the empty-slot sentinel");
        debug_assert_eq!(self.keys[pos], EMPTY_KEY);
        self.keys[pos] = key;
        self.vals[pos] = val;
    }

    /// Remove the entry at `pos`, backward-shifting any displaced successors
    /// so no tombstones are needed.
    pub fn remove_at(&mut self, pos: usize) {
        let mut hole = pos;
        self.keys[hole] = EMPTY_KEY;
        let mut cur = hole;
        loop {
            cur = (cur + 1) & self.mask;
            let k = self.keys[cur];
            if k == EMPTY_KEY {
                return;
            }
            // The entry may move into the hole iff the hole lies on its probe
            // path: its displacement from its ideal position must be at least
            // the distance it would be shifted back.
            let ideal = fast_mix64(k) as usize & self.mask;
            let displacement = cur.wrapping_sub(ideal) & self.mask;
            let shift = cur.wrapping_sub(hole) & self.mask;
            if displacement >= shift {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[cur];
                self.keys[cur] = EMPTY_KEY;
                hole = cur;
            }
        }
    }

    /// Double the table and re-insert every entry (amortized over growth).
    #[cold]
    pub fn grow(&mut self, fill: V) {
        let new_len = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_len]);
        let old_vals = std::mem::replace(&mut self.vals, vec![fill; new_len]);
        self.mask = new_len - 1;
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == EMPTY_KEY {
                continue;
            }
            let mut pos = fast_mix64(key) as usize & self.mask;
            while self.keys[pos] != EMPTY_KEY {
                pos = (pos + 1) & self.mask;
            }
            self.keys[pos] = key;
            self.vals[pos] = val;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Random insert/remove churn against a `HashMap`, including lookups of
    /// absent keys, exercising backward-shift deletion and growth.
    #[test]
    fn matches_hashmap_under_random_churn() {
        let mut table: OpenTable<u64> = OpenTable::new(8, 0);
        let mut occupancy = 0usize;
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut state = 0xBAD_5EEDu64;
        for step in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 61; // heavy aliasing: long probe chains
            match state >> 62 {
                0 | 1 => {
                    if (occupancy + 1) * 2 > table.slots() {
                        table.grow(0);
                    }
                    match table.probe(key) {
                        Probe::Found(pos) => {
                            assert_eq!(Some(&table.val_at(pos)), reference.get(&key));
                            *table.val_at_mut(pos) = state;
                        }
                        Probe::Vacant(pos) => {
                            assert!(!reference.contains_key(&key), "step {step}");
                            table.occupy(pos, key, state);
                            occupancy += 1;
                        }
                    }
                    reference.insert(key, state);
                }
                2 => {
                    let removed = match table.probe(key) {
                        Probe::Found(pos) => {
                            table.remove_at(pos);
                            occupancy -= 1;
                            true
                        }
                        Probe::Vacant(_) => false,
                    };
                    assert_eq!(removed, reference.remove(&key).is_some(), "step {step}");
                }
                _ => {
                    let found = matches!(table.probe(key), Probe::Found(_));
                    assert_eq!(found, reference.contains_key(&key), "step {step}");
                }
            }
        }
        for (&key, &val) in &reference {
            match table.probe(key) {
                Probe::Found(pos) => assert_eq!(table.val_at(pos), val),
                Probe::Vacant(_) => panic!("key {key} lost"),
            }
        }
    }
}
