//! Line-granular model of the tiled cache hierarchy.
//!
//! The modelled machine (Table II of the paper) has per-core L1s, a per-tile
//! shared L2, and a fully-shared static-NUCA L3 with one slice (bank) per
//! tile. Directory state is tracked per line at tile granularity: which tiles
//! hold a copy, and which tile is the (dirty) owner.
//!
//! The model answers one question per access: *where was the line found, and
//! which tiles had to be invalidated?* The simulator combines the answer with
//! the mesh model to charge cycles and network flits, so this crate stays
//! independent of the network topology.
//!
//! This is the hottest code in the simulator (every speculative load/store
//! funnels through [`CacheModel::access`]), so the directory is an
//! open-addressed table keyed by a single [`swarm_types::fast_mix64`] hash,
//! sharer masks are walked with `trailing_zeros`, and invalidation lists are
//! returned inline ([`TileList`]) — a steady-state access performs no heap
//! allocation.

use swarm_types::{CacheConfig, CoreId, LineAddr, TileId};

use crate::lru::LruSet;
use crate::table::{OpenTable, Probe};

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (requires exclusive ownership; invalidates other copies).
    Write,
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the requesting core's L1.
    L1,
    /// Served by the requesting tile's L2.
    L2,
    /// Forwarded from another tile's L2 (cache-to-cache transfer through the
    /// home directory).
    RemoteL2 {
        /// Tile whose L2 supplied the data.
        owner: TileId,
    },
    /// Served by the L3 slice at the line's home tile.
    L3 {
        /// Static-NUCA home tile of the line.
        home: TileId,
    },
    /// Served by main memory (through the home tile's memory controller path).
    Memory {
        /// Static-NUCA home tile of the line.
        home: TileId,
    },
}

/// Number of invalidated tiles an [`AccessOutcome`] can report without heap
/// allocation. Writes rarely invalidate more than a couple of sharers; longer
/// lists (wide read-sharing, or alias groups on >64-tile meshes) spill.
const INLINE_TILES: usize = 6;

/// A small list of [`TileId`]s stored inline up to `INLINE_TILES` entries.
///
/// This exists so [`CacheModel::access`] can report invalidations without
/// allocating on every write. Dereferences to `[TileId]` for iteration and
/// comparison.
#[derive(Debug, Clone)]
pub struct TileList(TileListRepr);

#[derive(Debug, Clone)]
enum TileListRepr {
    Inline { len: u8, tiles: [TileId; INLINE_TILES] },
    Heap(Vec<TileId>),
}

impl TileList {
    /// Create an empty list (no allocation).
    pub fn new() -> Self {
        TileList(TileListRepr::Inline { len: 0, tiles: [TileId(0); INLINE_TILES] })
    }

    /// Append a tile, spilling to the heap past `INLINE_TILES` entries.
    pub fn push(&mut self, tile: TileId) {
        match &mut self.0 {
            TileListRepr::Inline { len, tiles } => {
                if (*len as usize) < INLINE_TILES {
                    tiles[*len as usize] = tile;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(INLINE_TILES * 2);
                    vec.extend_from_slice(&tiles[..]);
                    vec.push(tile);
                    self.0 = TileListRepr::Heap(vec);
                }
            }
            TileListRepr::Heap(vec) => vec.push(tile),
        }
    }

    /// The tiles as a slice.
    pub fn as_slice(&self) -> &[TileId] {
        match &self.0 {
            TileListRepr::Inline { len, tiles } => &tiles[..*len as usize],
            TileListRepr::Heap(vec) => vec,
        }
    }
}

impl Default for TileList {
    fn default() -> Self {
        TileList::new()
    }
}

impl std::ops::Deref for TileList {
    type Target = [TileId];

    fn deref(&self) -> &[TileId] {
        self.as_slice()
    }
}

impl PartialEq for TileList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TileList {}

impl<'a> IntoIterator for &'a TileList {
    type Item = &'a TileId;
    type IntoIter = std::slice::Iter<'a, TileId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<TileId> for TileList {
    fn from_iter<I: IntoIterator<Item = TileId>>(iter: I) -> Self {
        let mut list = TileList::new();
        for tile in iter {
            list.push(tile);
        }
        list
    }
}

/// Result of one access against the cache model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Where the data came from.
    pub level: HitLevel,
    /// Cache-array latency in cycles (network latency not included).
    pub base_latency: u64,
    /// Tiles whose copies had to be invalidated (writes only).
    pub invalidated: TileList,
    /// Whether the access left the requesting tile (used for traffic).
    pub remote: bool,
}

/// Per-line directory state.
///
/// # Coarse sharer tracking beyond 64 tiles
///
/// `sharers` has one bit per tile for meshes of up to 64 tiles (the paper's
/// largest machine). On larger meshes, tile `t` maps to bit `t % 64`, so a
/// bit stands for the whole *alias group* `{b, b + 64, b + 128, ...}`: the
/// directory only knows that *some* tile of the group holds a copy. All
/// operations treat a set bit conservatively — writes invalidate every tile
/// of the group, and cache-to-cache forwarding picks the lowest-indexed
/// group member — which keeps coherence decisions correct (no stale copy
/// survives) at the cost of extra invalidation traffic, exactly like a
/// coarse-vector directory.
#[derive(Debug, Clone, Copy, Default)]
struct LineDir {
    /// Tiles holding a copy (bit per alias group of tiles; see above).
    sharers: u64,
    /// Tile holding the line in modified state, if any (always exact).
    owner: Option<TileId>,
    /// Whether the line is present in the L3.
    in_l3: bool,
}

/// Open-addressed directory: line address -> [`LineDir`], on the shared
/// [`OpenTable`] core (load factor <= 0.5). Entries are 24 bytes and stored
/// flat, so a steady-state lookup is one hash, one probe and no pointer
/// chasing — this replaces the seed's `HashMap<LineAddr, LineDir>`, which
/// re-hashed every line with SipHash twice per access.
#[derive(Debug, Clone)]
struct DirTable {
    table: OpenTable<LineDir>,
    len: usize,
}

impl DirTable {
    fn new() -> Self {
        DirTable { table: OpenTable::new(1024, LineDir::default()), len: 0 }
    }

    /// Entry position for `key`, default-inserting it if absent; returns the
    /// position and the value the entry held *before* any insertion (the
    /// snapshot an access reasons about). One probe serves both the snapshot
    /// read and the directory update; the position stays valid as long as no
    /// other entry is inserted or removed.
    #[inline]
    fn entry_snapshot(&mut self, key: u64) -> (usize, LineDir) {
        let pos = match self.table.probe(key) {
            Probe::Found(pos) => return (pos, self.table.val_at(pos)),
            Probe::Vacant(pos) => pos,
        };
        let pos = if (self.len + 1) * 2 > self.table.slots() {
            self.table.grow(LineDir::default());
            match self.table.probe(key) {
                Probe::Vacant(pos) => pos,
                Probe::Found(_) => unreachable!("key cannot appear during growth"),
            }
        } else {
            pos
        };
        self.table.occupy(pos, key, LineDir::default());
        self.len += 1;
        (pos, LineDir::default())
    }

    #[inline]
    fn val_at_mut(&mut self, pos: usize) -> &mut LineDir {
        self.table.val_at_mut(pos)
    }

    fn remove(&mut self, key: u64) {
        if let Probe::Found(pos) = self.table.probe(key) {
            self.table.remove_at(pos);
            self.len -= 1;
        }
    }
}

/// The cache hierarchy model.
///
/// # Example
///
/// ```
/// use swarm_mem::{AccessKind, CacheModel, HitLevel};
/// use swarm_types::{CacheConfig, CoreId, LineAddr};
///
/// let mut caches = CacheModel::new(CacheConfig::default(), 4, 4);
/// let line = LineAddr(10);
/// let first = caches.access(CoreId(0), line, AccessKind::Read);
/// assert!(matches!(first.level, HitLevel::Memory { .. }));
/// let second = caches.access(CoreId(0), line, AccessKind::Read);
/// assert_eq!(second.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheModel {
    cfg: CacheConfig,
    cores_per_tile: u32,
    /// `log2(cores_per_tile)` when it is a power of two (it always is on the
    /// paper's machines): turns the per-access core->tile divide into a shift.
    tile_shift: Option<u32>,
    num_tiles: usize,
    l1: Vec<LruSet>,
    l2: Vec<LruSet>,
    l3: Vec<LruSet>,
    dir: DirTable,
    accesses: u64,
    l1_hits: u64,
    l2_hits: u64,
    remote_l2_hits: u64,
    l3_hits: u64,
    mem_accesses: u64,
}

impl CacheModel {
    /// Create a cache model for `num_tiles` tiles of `cores_per_tile` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` or `cores_per_tile` is zero.
    pub fn new(cfg: CacheConfig, num_tiles: usize, cores_per_tile: u32) -> Self {
        assert!(num_tiles > 0, "num_tiles must be positive");
        assert!(cores_per_tile > 0, "cores_per_tile must be positive");
        let num_cores = num_tiles * cores_per_tile as usize;
        CacheModel {
            l1: (0..num_cores).map(|_| LruSet::new(cfg.l1_lines.max(1))).collect(),
            l2: (0..num_tiles).map(|_| LruSet::new(cfg.l2_lines.max(1))).collect(),
            l3: (0..num_tiles).map(|_| LruSet::new(cfg.l3_lines_per_tile.max(1))).collect(),
            dir: DirTable::new(),
            cfg,
            tile_shift: cores_per_tile.is_power_of_two().then(|| cores_per_tile.trailing_zeros()),
            cores_per_tile,
            num_tiles,
            accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
            remote_l2_hits: 0,
            l3_hits: 0,
            mem_accesses: 0,
        }
    }

    /// Static-NUCA home tile of a line.
    pub fn home_tile(&self, line: LineAddr) -> TileId {
        TileId(swarm_types::hash_to_range(line.0, self.num_tiles) as u32)
    }

    fn tile_of(&self, core: CoreId) -> TileId {
        match self.tile_shift {
            Some(shift) => TileId(core.0 >> shift),
            None => core.tile(self.cores_per_tile),
        }
    }

    fn sharer_bit(tile: TileId) -> u64 {
        1u64 << (tile.index() as u64 % 64)
    }

    /// First tile other than `exclude` with its alias-group bit set in
    /// `mask`, walking set bits with `trailing_zeros` (lowest tile first; on
    /// <= 64-tile meshes alias groups are singletons, so this is exact).
    fn dir_first_other_sharer(&self, mask: u64, exclude: TileId) -> Option<TileId> {
        let mut bits = mask;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let mut t = bit;
            while t < self.num_tiles {
                if t != exclude.index() {
                    return Some(TileId(t as u32));
                }
                t += 64;
            }
        }
        None
    }

    /// Perform one access from `core` to `line` and report where it was
    /// served from and which tiles were invalidated.
    pub fn access(&mut self, core: CoreId, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        self.accesses += 1;
        let tile = self.tile_of(core);
        let key = line.0;

        // Probe-and-fill in one pass: the line always ends the access resident
        // in the local L1 and L2, and nothing below touches those two sets
        // (the invalidation walk skips the local tile), so inserting the line
        // on a miss here — rather than after the directory update — leaves
        // exactly the same recency order and evictions.
        let l1_hit = self.l1[core.index()].touch_or_insert(key);
        // The seed short-circuited the L2 touch on an L1 hit; keep that
        // order (the L2 recency is then only refreshed by the fill below).
        let l2_touch_hit = !l1_hit && self.l2[tile.index()].touch_or_insert(key);
        let l2_hit = l1_hit || l2_touch_hit;

        // One directory probe yields both the pre-access snapshot and the
        // entry position for the update at the end of the access.
        let (dir_pos, dir_snapshot) = self.dir.entry_snapshot(key);
        // The home tile is derived from the paper's line hash (hash64, not
        // fast_mix64: simulated-architecture decisions must stay
        // bit-identical) and computed exactly once per access.
        let home = TileId(swarm_types::hash_to_range(key, self.num_tiles) as u32);

        // Determine where the data is found.
        let (level, base_latency, remote) = if l1_hit {
            self.l1_hits += 1;
            (HitLevel::L1, self.cfg.l1_latency, false)
        } else if l2_hit {
            self.l2_hits += 1;
            (HitLevel::L2, self.cfg.l1_latency + self.cfg.l2_latency, false)
        } else {
            // Miss in the local tile: consult the (home) directory.
            let remote_holder = dir_snapshot
                .owner
                .filter(|o| *o != tile)
                .or_else(|| self.dir_first_other_sharer(dir_snapshot.sharers, tile));
            if let Some(owner) = remote_holder {
                self.remote_l2_hits += 1;
                (
                    HitLevel::RemoteL2 { owner },
                    self.cfg.l1_latency + self.cfg.l2_latency * 2 + self.cfg.l3_latency,
                    true,
                )
            } else if dir_snapshot.in_l3 && self.l3[home.index()].contains(key) {
                self.l3_hits += 1;
                (
                    HitLevel::L3 { home },
                    self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.l3_latency,
                    true,
                )
            } else {
                self.mem_accesses += 1;
                (
                    HitLevel::Memory { home },
                    self.cfg.l1_latency
                        + self.cfg.l2_latency
                        + self.cfg.l3_latency
                        + self.cfg.mem_latency,
                    true,
                )
            }
        };

        // Writes invalidate every other tile's copy. Walk the set bits of the
        // sharer mask directly; each bit covers its whole alias group (see
        // [`LineDir`]), so tiles >= 64 are invalidated too.
        let mut invalidated = TileList::new();
        if kind == AccessKind::Write {
            let cores_per_tile = self.cores_per_tile as usize;
            let mut bits = dir_snapshot.sharers;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut t = bit;
                while t < self.num_tiles {
                    if t != tile.index() {
                        self.l2[t].remove(key);
                        let first_core = t * cores_per_tile;
                        for c in first_core..first_core + cores_per_tile {
                            self.l1[c].remove(key);
                        }
                        invalidated.push(TileId(t as u32));
                    }
                    t += 64;
                }
            }
        }

        // Update directory and fill caches along the way. `dir_pos` is still
        // valid: nothing was inserted into or removed from the directory
        // since the snapshot probe.
        let dir = self.dir.val_at_mut(dir_pos);
        match kind {
            AccessKind::Read => {
                dir.sharers |= Self::sharer_bit(tile);
                if dir.owner != Some(tile) {
                    // A remote read demotes the owner to sharer.
                    dir.owner = None;
                }
            }
            AccessKind::Write => {
                dir.sharers = Self::sharer_bit(tile);
                dir.owner = Some(tile);
            }
        }
        dir.in_l3 = true;
        self.l3[home.index()].insert(key);
        // The local L1 and L2 were already probed-and-filled above; the only
        // leftover fill is the L2 refresh on an L1 hit, which the combined
        // probe skips (it never reaches the L2 in that case).
        if l1_hit {
            self.l2[tile.index()].insert(key);
        }

        AccessOutcome { level, base_latency, invalidated, remote }
    }

    /// Drop a line from every cache and the directory. Used when the
    /// simulator wants to model explicit flushes in tests.
    pub fn flush_line(&mut self, line: LineAddr) {
        let key = line.0;
        for l1 in &mut self.l1 {
            l1.remove(key);
        }
        for l2 in &mut self.l2 {
            l2.remove(key);
        }
        for l3 in &mut self.l3 {
            l3.remove(key);
        }
        self.dir.remove(key);
    }

    /// Total number of accesses observed.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// (l1, l2, remote L2, l3, memory) hit counters.
    pub fn hit_counters(&self) -> (u64, u64, u64, u64, u64) {
        (self.l1_hits, self.l2_hits, self.remote_l2_hits, self.l3_hits, self.mem_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(CacheConfig::default(), 4, 4)
    }

    #[test]
    fn first_access_misses_to_memory_then_hits_l1() {
        let mut m = model();
        let line = LineAddr(77);
        let a = m.access(CoreId(0), line, AccessKind::Read);
        assert!(matches!(a.level, HitLevel::Memory { .. }));
        assert!(a.remote);
        let b = m.access(CoreId(0), line, AccessKind::Read);
        assert_eq!(b.level, HitLevel::L1);
        assert!(!b.remote);
        assert_eq!(b.base_latency, CacheConfig::default().l1_latency);
    }

    #[test]
    fn same_tile_other_core_hits_l2() {
        let mut m = model();
        let line = LineAddr(5);
        m.access(CoreId(0), line, AccessKind::Read);
        let a = m.access(CoreId(1), line, AccessKind::Read);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn other_tile_gets_remote_l2_forward() {
        let mut m = model();
        let line = LineAddr(5);
        m.access(CoreId(0), line, AccessKind::Read); // tile 0
        let a = m.access(CoreId(4), line, AccessKind::Read); // tile 1
        assert_eq!(a.level, HitLevel::RemoteL2 { owner: TileId(0) });
        assert!(a.remote);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut m = model();
        let line = LineAddr(9);
        m.access(CoreId(0), line, AccessKind::Read); // tile 0 shares
        m.access(CoreId(4), line, AccessKind::Read); // tile 1 shares
        let w = m.access(CoreId(8), line, AccessKind::Write); // tile 2 writes
        let mut inv = w.invalidated.to_vec();
        inv.sort();
        assert_eq!(inv, vec![TileId(0), TileId(1)]);
        // After the invalidation, tile 0 re-reads remotely from tile 2.
        let r = m.access(CoreId(0), line, AccessKind::Read);
        assert_eq!(r.level, HitLevel::RemoteL2 { owner: TileId(2) });
    }

    #[test]
    fn write_then_local_read_hits_l1() {
        let mut m = model();
        let line = LineAddr(13);
        m.access(CoreId(2), line, AccessKind::Write);
        let r = m.access(CoreId(2), line, AccessKind::Read);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn l1_capacity_eviction_falls_back_to_l2() {
        let cfg = CacheConfig { l1_lines: 2, ..Default::default() };
        let mut m = CacheModel::new(cfg, 1, 1);
        m.access(CoreId(0), LineAddr(1), AccessKind::Read);
        m.access(CoreId(0), LineAddr(2), AccessKind::Read);
        m.access(CoreId(0), LineAddr(3), AccessKind::Read); // evicts line 1 from L1
        let a = m.access(CoreId(0), LineAddr(1), AccessKind::Read);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn flush_line_forces_memory_access() {
        let mut m = model();
        let line = LineAddr(21);
        m.access(CoreId(0), line, AccessKind::Read);
        m.flush_line(line);
        let a = m.access(CoreId(0), line, AccessKind::Read);
        assert!(matches!(a.level, HitLevel::Memory { .. }));
    }

    #[test]
    fn home_tile_is_deterministic_and_in_range() {
        let m = model();
        for l in 0..100 {
            let h = m.home_tile(LineAddr(l));
            assert!(h.index() < 4);
            assert_eq!(h, m.home_tile(LineAddr(l)));
        }
    }

    #[test]
    fn hit_counters_sum_to_access_count() {
        let mut m = model();
        for i in 0..50u64 {
            m.access(CoreId((i % 16) as u32), LineAddr(i % 7), AccessKind::Read);
        }
        let (a, b, c, d, e) = m.hit_counters();
        assert_eq!(a + b + c + d + e, m.access_count());
    }

    #[test]
    fn tile_list_inline_and_spilled_compare_equal() {
        let mut inline = TileList::new();
        assert!(inline.is_empty());
        inline.push(TileId(3));
        assert_eq!(inline.as_slice(), &[TileId(3)]);
        // Push past the inline capacity to force a heap spill.
        let many: Vec<TileId> = (0..INLINE_TILES as u32 + 4).map(TileId).collect();
        let spilled: TileList = many.iter().copied().collect();
        assert_eq!(spilled.as_slice(), many.as_slice());
        assert_eq!(spilled, many.iter().copied().collect::<TileList>());
        assert_eq!(spilled.len(), INLINE_TILES + 4);
    }

    /// Regression test for the >64-tile directory bug: on an 8x16 mesh
    /// (128 tiles), tile 70 aliases tile 6 in the sharer mask (70 % 64 == 6).
    /// The seed scanned only tiles 0..64 when collecting sharers, so tile 70
    /// was never invalidated and never found as a forwarder.
    #[test]
    fn tiles_beyond_64_are_invalidated_and_forward() {
        let mut m = CacheModel::new(CacheConfig::default(), 128, 1);
        let line = LineAddr(1000);

        // Tile 70 reads the line; its alias-group bit (6) is set.
        m.access(CoreId(70), line, AccessKind::Read);

        // A reader on another tile must find a forwarder in the alias group.
        let r = m.access(CoreId(0), line, AccessKind::Read);
        match r.level {
            HitLevel::RemoteL2 { owner } => {
                assert!(
                    owner.index() % 64 == 6,
                    "forwarder {owner} is not in tile 70's alias group"
                )
            }
            other => panic!("expected a remote forward, got {other:?}"),
        }

        // A writer on tile 1 must invalidate the whole alias group, tile 70
        // included (tile 0 read above, so group 0 is invalidated too).
        let w = m.access(CoreId(1), line, AccessKind::Write);
        assert!(
            w.invalidated.contains(&TileId(70)),
            "tile 70 not invalidated: {:?}",
            w.invalidated.as_slice()
        );
        assert!(w.invalidated.contains(&TileId(6)), "alias group member 6 must be invalidated");
        assert!(w.invalidated.contains(&TileId(0)));

        // Tile 70's copy is gone: its next read must leave the tile.
        let r = m.access(CoreId(70), line, AccessKind::Read);
        assert!(r.remote, "tile 70 still had a local copy after invalidation");
        assert_eq!(r.level, HitLevel::RemoteL2 { owner: TileId(1) });
    }

    /// On <= 64-tile meshes alias groups are singletons, so coarse tracking
    /// degenerates to the exact per-tile behavior.
    #[test]
    fn alias_groups_are_exact_below_64_tiles() {
        let mut m = CacheModel::new(CacheConfig::default(), 64, 1);
        let line = LineAddr(4242);
        for t in [0u32, 5, 63] {
            m.access(CoreId(t), line, AccessKind::Read);
        }
        let w = m.access(CoreId(7), line, AccessKind::Write);
        let mut inv = w.invalidated.to_vec();
        inv.sort();
        assert_eq!(inv, vec![TileId(0), TileId(5), TileId(63)]);
    }
}
