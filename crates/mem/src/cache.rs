//! Line-granular model of the tiled cache hierarchy.
//!
//! The modelled machine (Table II of the paper) has per-core L1s, a per-tile
//! shared L2, and a fully-shared static-NUCA L3 with one slice (bank) per
//! tile. Directory state is tracked per line at tile granularity: which tiles
//! hold a copy, and which tile is the (dirty) owner.
//!
//! The model answers one question per access: *where was the line found, and
//! which tiles had to be invalidated?* The simulator combines the answer with
//! the mesh model to charge cycles and network flits, so this crate stays
//! independent of the network topology.

use std::collections::HashMap;

use swarm_types::{CacheConfig, CoreId, LineAddr, TileId};

use crate::lru::LruSet;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (requires exclusive ownership; invalidates other copies).
    Write,
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the requesting core's L1.
    L1,
    /// Served by the requesting tile's L2.
    L2,
    /// Forwarded from another tile's L2 (cache-to-cache transfer through the
    /// home directory).
    RemoteL2 {
        /// Tile whose L2 supplied the data.
        owner: TileId,
    },
    /// Served by the L3 slice at the line's home tile.
    L3 {
        /// Static-NUCA home tile of the line.
        home: TileId,
    },
    /// Served by main memory (through the home tile's memory controller path).
    Memory {
        /// Static-NUCA home tile of the line.
        home: TileId,
    },
}

/// Result of one access against the cache model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Where the data came from.
    pub level: HitLevel,
    /// Cache-array latency in cycles (network latency not included).
    pub base_latency: u64,
    /// Tiles whose copies had to be invalidated (writes only).
    pub invalidated: Vec<TileId>,
    /// Whether the access left the requesting tile (used for traffic).
    pub remote: bool,
}

#[derive(Debug, Clone, Default)]
struct LineDir {
    /// Tiles holding a copy (bit per tile; the model supports <= 64 tiles,
    /// larger meshes fall back to coarse tracking of the low 64 tiles).
    sharers: u64,
    /// Tile holding the line in modified state, if any.
    owner: Option<TileId>,
    /// Whether the line is present in the L3.
    in_l3: bool,
}

/// The cache hierarchy model.
///
/// # Example
///
/// ```
/// use swarm_mem::{AccessKind, CacheModel, HitLevel};
/// use swarm_types::{CacheConfig, CoreId, LineAddr};
///
/// let mut caches = CacheModel::new(CacheConfig::default(), 4, 4);
/// let line = LineAddr(10);
/// let first = caches.access(CoreId(0), line, AccessKind::Read);
/// assert!(matches!(first.level, HitLevel::Memory { .. }));
/// let second = caches.access(CoreId(0), line, AccessKind::Read);
/// assert_eq!(second.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheModel {
    cfg: CacheConfig,
    cores_per_tile: u32,
    num_tiles: usize,
    l1: Vec<LruSet>,
    l2: Vec<LruSet>,
    l3: Vec<LruSet>,
    dir: HashMap<LineAddr, LineDir>,
    accesses: u64,
    l1_hits: u64,
    l2_hits: u64,
    remote_l2_hits: u64,
    l3_hits: u64,
    mem_accesses: u64,
}

impl CacheModel {
    /// Create a cache model for `num_tiles` tiles of `cores_per_tile` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` or `cores_per_tile` is zero.
    pub fn new(cfg: CacheConfig, num_tiles: usize, cores_per_tile: u32) -> Self {
        assert!(num_tiles > 0, "num_tiles must be positive");
        assert!(cores_per_tile > 0, "cores_per_tile must be positive");
        let num_cores = num_tiles * cores_per_tile as usize;
        CacheModel {
            l1: (0..num_cores).map(|_| LruSet::new(cfg.l1_lines.max(1))).collect(),
            l2: (0..num_tiles).map(|_| LruSet::new(cfg.l2_lines.max(1))).collect(),
            l3: (0..num_tiles).map(|_| LruSet::new(cfg.l3_lines_per_tile.max(1))).collect(),
            dir: HashMap::new(),
            cfg,
            cores_per_tile,
            num_tiles,
            accesses: 0,
            l1_hits: 0,
            l2_hits: 0,
            remote_l2_hits: 0,
            l3_hits: 0,
            mem_accesses: 0,
        }
    }

    /// Static-NUCA home tile of a line.
    pub fn home_tile(&self, line: LineAddr) -> TileId {
        TileId(swarm_types::hash_to_range(line.0, self.num_tiles) as u32)
    }

    fn tile_of(&self, core: CoreId) -> TileId {
        core.tile(self.cores_per_tile)
    }

    fn sharer_bit(tile: TileId) -> u64 {
        1u64 << (tile.index() as u64 % 64)
    }

    fn sharer_tiles(&self, mask: u64, exclude: TileId) -> Vec<TileId> {
        (0..self.num_tiles.min(64))
            .filter(|&t| t != exclude.index() && (mask >> t) & 1 == 1)
            .map(|t| TileId(t as u32))
            .collect()
    }

    /// Perform one access from `core` to `line` and report where it was
    /// served from and which tiles were invalidated.
    pub fn access(&mut self, core: CoreId, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        self.accesses += 1;
        let tile = self.tile_of(core);
        let key = line.0;

        let l1_hit = self.l1[core.index()].touch(key);
        let l2_hit = l1_hit || self.l2[tile.index()].touch(key);

        let dir_snapshot = self.dir.get(&line).cloned().unwrap_or_default();
        let home = TileId(swarm_types::hash_to_range(line.0, self.num_tiles) as u32);

        // Determine where the data is found.
        let (level, base_latency, remote) = if l1_hit {
            self.l1_hits += 1;
            (HitLevel::L1, self.cfg.l1_latency, false)
        } else if l2_hit {
            self.l2_hits += 1;
            (HitLevel::L2, self.cfg.l1_latency + self.cfg.l2_latency, false)
        } else {
            // Miss in the local tile: consult the (home) directory.
            let remote_holder = dir_snapshot
                .owner
                .filter(|o| *o != tile)
                .or_else(|| self.dir_first_other_sharer(dir_snapshot.sharers, tile));
            if let Some(owner) = remote_holder {
                self.remote_l2_hits += 1;
                (
                    HitLevel::RemoteL2 { owner },
                    self.cfg.l1_latency + self.cfg.l2_latency * 2 + self.cfg.l3_latency,
                    true,
                )
            } else if dir_snapshot.in_l3 && self.l3[home.index()].contains(key) {
                self.l3_hits += 1;
                (
                    HitLevel::L3 { home },
                    self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.l3_latency,
                    true,
                )
            } else {
                self.mem_accesses += 1;
                (
                    HitLevel::Memory { home },
                    self.cfg.l1_latency
                        + self.cfg.l2_latency
                        + self.cfg.l3_latency
                        + self.cfg.mem_latency,
                    true,
                )
            }
        };

        // Writes invalidate every other tile's copy.
        let mut invalidated = Vec::new();
        if kind == AccessKind::Write {
            let others = self.sharer_tiles(dir_snapshot.sharers, tile);
            for other in &others {
                self.l2[other.index()].remove(key);
                let first_core = other.index() * self.cores_per_tile as usize;
                for c in first_core..first_core + self.cores_per_tile as usize {
                    self.l1[c].remove(key);
                }
            }
            invalidated = others;
        }

        // Update directory and fill caches along the way.
        let dir = self.dir.entry(line).or_default();
        match kind {
            AccessKind::Read => {
                dir.sharers |= Self::sharer_bit(tile);
                if dir.owner != Some(tile) {
                    // A remote read demotes the owner to sharer.
                    dir.owner = None;
                }
            }
            AccessKind::Write => {
                dir.sharers = Self::sharer_bit(tile);
                dir.owner = Some(tile);
            }
        }
        dir.in_l3 = true;
        self.l3[home.index()].insert(key);
        self.l2[tile.index()].insert(key);
        self.l1[core.index()].insert(key);

        AccessOutcome { level, base_latency, invalidated, remote }
    }

    fn dir_first_other_sharer(&self, mask: u64, exclude: TileId) -> Option<TileId> {
        (0..self.num_tiles.min(64))
            .find(|&t| t != exclude.index() && (mask >> t) & 1 == 1)
            .map(|t| TileId(t as u32))
    }

    /// Drop a line from every cache and the directory. Used when the
    /// simulator wants to model explicit flushes in tests.
    pub fn flush_line(&mut self, line: LineAddr) {
        let key = line.0;
        for l1 in &mut self.l1 {
            l1.remove(key);
        }
        for l2 in &mut self.l2 {
            l2.remove(key);
        }
        for l3 in &mut self.l3 {
            l3.remove(key);
        }
        self.dir.remove(&line);
    }

    /// Total number of accesses observed.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// (l1, l2, remote L2, l3, memory) hit counters.
    pub fn hit_counters(&self) -> (u64, u64, u64, u64, u64) {
        (self.l1_hits, self.l2_hits, self.remote_l2_hits, self.l3_hits, self.mem_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(CacheConfig::default(), 4, 4)
    }

    #[test]
    fn first_access_misses_to_memory_then_hits_l1() {
        let mut m = model();
        let line = LineAddr(77);
        let a = m.access(CoreId(0), line, AccessKind::Read);
        assert!(matches!(a.level, HitLevel::Memory { .. }));
        assert!(a.remote);
        let b = m.access(CoreId(0), line, AccessKind::Read);
        assert_eq!(b.level, HitLevel::L1);
        assert!(!b.remote);
        assert_eq!(b.base_latency, CacheConfig::default().l1_latency);
    }

    #[test]
    fn same_tile_other_core_hits_l2() {
        let mut m = model();
        let line = LineAddr(5);
        m.access(CoreId(0), line, AccessKind::Read);
        let a = m.access(CoreId(1), line, AccessKind::Read);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn other_tile_gets_remote_l2_forward() {
        let mut m = model();
        let line = LineAddr(5);
        m.access(CoreId(0), line, AccessKind::Read); // tile 0
        let a = m.access(CoreId(4), line, AccessKind::Read); // tile 1
        assert_eq!(a.level, HitLevel::RemoteL2 { owner: TileId(0) });
        assert!(a.remote);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut m = model();
        let line = LineAddr(9);
        m.access(CoreId(0), line, AccessKind::Read); // tile 0 shares
        m.access(CoreId(4), line, AccessKind::Read); // tile 1 shares
        let w = m.access(CoreId(8), line, AccessKind::Write); // tile 2 writes
        let mut inv = w.invalidated.clone();
        inv.sort();
        assert_eq!(inv, vec![TileId(0), TileId(1)]);
        // After the invalidation, tile 0 re-reads remotely from tile 2.
        let r = m.access(CoreId(0), line, AccessKind::Read);
        assert_eq!(r.level, HitLevel::RemoteL2 { owner: TileId(2) });
    }

    #[test]
    fn write_then_local_read_hits_l1() {
        let mut m = model();
        let line = LineAddr(13);
        m.access(CoreId(2), line, AccessKind::Write);
        let r = m.access(CoreId(2), line, AccessKind::Read);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn l1_capacity_eviction_falls_back_to_l2() {
        let cfg = CacheConfig { l1_lines: 2, ..Default::default() };
        let mut m = CacheModel::new(cfg, 1, 1);
        m.access(CoreId(0), LineAddr(1), AccessKind::Read);
        m.access(CoreId(0), LineAddr(2), AccessKind::Read);
        m.access(CoreId(0), LineAddr(3), AccessKind::Read); // evicts line 1 from L1
        let a = m.access(CoreId(0), LineAddr(1), AccessKind::Read);
        assert_eq!(a.level, HitLevel::L2);
    }

    #[test]
    fn flush_line_forces_memory_access() {
        let mut m = model();
        let line = LineAddr(21);
        m.access(CoreId(0), line, AccessKind::Read);
        m.flush_line(line);
        let a = m.access(CoreId(0), line, AccessKind::Read);
        assert!(matches!(a.level, HitLevel::Memory { .. }));
    }

    #[test]
    fn home_tile_is_deterministic_and_in_range() {
        let m = model();
        for l in 0..100 {
            let h = m.home_tile(LineAddr(l));
            assert!(h.index() < 4);
            assert_eq!(h, m.home_tile(LineAddr(l)));
        }
    }

    #[test]
    fn hit_counters_sum_to_access_count() {
        let mut m = model();
        for i in 0..50u64 {
            m.access(CoreId((i % 16) as u32), LineAddr(i % 7), AccessKind::Read);
        }
        let (a, b, c, d, e) = m.hit_counters();
        assert_eq!(a + b + c + d + e, m.access_count());
    }
}
