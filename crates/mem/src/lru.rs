//! A small LRU set used to model finite cache capacities.

use std::collections::HashMap;

/// A fixed-capacity set of `u64` keys with least-recently-used eviction.
///
/// The cache model uses one `LruSet` per L1, per L2 and per L3 slice to
/// decide whether a line is present at each level. The implementation is a
/// doubly-linked list threaded through a `HashMap`, so every operation is
/// O(1) and independent of capacity.
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    // key -> (prev, next); u64::MAX marks "none".
    links: HashMap<u64, (u64, u64)>,
    head: u64, // most recently used
    tail: u64, // least recently used
}

const NONE: u64 = u64::MAX;

impl LruSet {
    /// Create an LRU set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        LruSet { capacity, links: HashMap::new(), head: NONE, tail: NONE }
    }

    /// Number of keys currently held.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Maximum number of keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is present (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        self.links.contains_key(&key)
    }

    fn unlink(&mut self, key: u64) {
        let (prev, next) = self.links[&key];
        if prev != NONE {
            self.links.get_mut(&prev).expect("prev must exist").1 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.links.get_mut(&next).expect("next must exist").0 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, key: u64) {
        let old_head = self.head;
        self.links.insert(key, (NONE, old_head));
        if old_head != NONE {
            self.links.get_mut(&old_head).expect("head must exist").0 = key;
        }
        self.head = key;
        if self.tail == NONE {
            self.tail = key;
        }
    }

    /// Mark `key` as most recently used if present; returns whether it was.
    pub fn touch(&mut self, key: u64) -> bool {
        if !self.links.contains_key(&key) {
            return false;
        }
        if self.head == key {
            return true;
        }
        self.unlink(key);
        self.push_front(key);
        true
    }

    /// Insert `key` as most recently used. Returns the evicted key, if the
    /// set was full and a (different) key had to be removed.
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        if self.touch(key) {
            return None;
        }
        let mut evicted = None;
        if self.links.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NONE);
            self.unlink(victim);
            self.links.remove(&victim);
            evicted = Some(victim);
        }
        self.push_front(key);
        evicted
    }

    /// Remove `key` if present; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if !self.links.contains_key(&key) {
            return false;
        }
        self.unlink(key);
        self.links.remove(&key);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut lru = LruSet::new(2);
        assert!(lru.is_empty());
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert!(lru.contains(1));
        assert!(lru.contains(2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        // Touch 1 so that 2 becomes the LRU victim.
        assert!(lru.touch(1));
        assert_eq!(lru.insert(3), Some(2));
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert!(lru.contains(3));
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(2), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_frees_space() {
        let mut lru = LruSet::new(1);
        lru.insert(5);
        assert!(lru.remove(5));
        assert!(!lru.remove(5));
        assert_eq!(lru.insert(6), None);
        assert!(lru.contains(6));
    }

    #[test]
    fn capacity_one_always_holds_last_key() {
        let mut lru = LruSet::new(1);
        for k in 0..100 {
            lru.insert(k);
            assert!(lru.contains(k));
            assert_eq!(lru.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }

    #[test]
    fn touch_missing_key_returns_false() {
        let mut lru = LruSet::new(4);
        assert!(!lru.touch(42));
    }

    #[test]
    fn stress_never_exceeds_capacity() {
        let mut lru = LruSet::new(8);
        for k in 0..1000u64 {
            lru.insert(k % 37);
            assert!(lru.len() <= 8);
        }
    }
}
