//! A small LRU set used to model finite cache capacities.

use std::collections::HashMap;

/// A fixed-capacity set of `u64` keys with least-recently-used eviction.
///
/// The cache model uses one `LruSet` per L1, per L2 and per L3 slice to
/// decide whether a line is present at each level. The implementation is a
/// doubly-linked list threaded through a `HashMap`, so every operation is
/// O(1) and independent of capacity.
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    // key -> (prev, next); u64::MAX marks "none".
    links: HashMap<u64, (u64, u64)>,
    head: u64, // most recently used
    tail: u64, // least recently used
}

const NONE: u64 = u64::MAX;

impl LruSet {
    /// Create an LRU set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        LruSet { capacity, links: HashMap::new(), head: NONE, tail: NONE }
    }

    /// Number of keys currently held.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Maximum number of keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is present (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        self.links.contains_key(&key)
    }

    fn unlink(&mut self, key: u64) {
        let (prev, next) = self.links[&key];
        if prev != NONE {
            self.links.get_mut(&prev).expect("prev must exist").1 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.links.get_mut(&next).expect("next must exist").0 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, key: u64) {
        let old_head = self.head;
        self.links.insert(key, (NONE, old_head));
        if old_head != NONE {
            self.links.get_mut(&old_head).expect("head must exist").0 = key;
        }
        self.head = key;
        if self.tail == NONE {
            self.tail = key;
        }
    }

    /// Mark `key` as most recently used if present; returns whether it was.
    pub fn touch(&mut self, key: u64) -> bool {
        if !self.links.contains_key(&key) {
            return false;
        }
        if self.head == key {
            return true;
        }
        self.unlink(key);
        self.push_front(key);
        true
    }

    /// Insert `key` as most recently used. Returns the evicted key, if the
    /// set was full and a (different) key had to be removed.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`, which is reserved as the internal link
    /// sentinel. (Keys model cache-line addresses, which never reach it.)
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        assert_ne!(key, NONE, "u64::MAX is reserved as the LruSet sentinel");
        if self.touch(key) {
            return None;
        }
        let mut evicted = None;
        if self.links.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NONE);
            self.unlink(victim);
            self.links.remove(&victim);
            evicted = Some(victim);
        }
        self.push_front(key);
        evicted
    }

    /// Remove `key` if present; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if !self.links.contains_key(&key) {
            return false;
        }
        self.unlink(key);
        self.links.remove(&key);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut lru = LruSet::new(2);
        assert!(lru.is_empty());
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert!(lru.contains(1));
        assert!(lru.contains(2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        // Touch 1 so that 2 becomes the LRU victim.
        assert!(lru.touch(1));
        assert_eq!(lru.insert(3), Some(2));
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert!(lru.contains(3));
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(2), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_frees_space() {
        let mut lru = LruSet::new(1);
        lru.insert(5);
        assert!(lru.remove(5));
        assert!(!lru.remove(5));
        assert_eq!(lru.insert(6), None);
        assert!(lru.contains(6));
    }

    #[test]
    fn capacity_one_always_holds_last_key() {
        let mut lru = LruSet::new(1);
        for k in 0..100 {
            lru.insert(k);
            assert!(lru.contains(k));
            assert_eq!(lru.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }

    #[test]
    fn keys_adjacent_to_the_sentinel_work() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.insert(u64::MAX - 1), None);
        assert_eq!(lru.insert(u64::MAX - 2), None);
        assert_eq!(lru.insert(0), Some(u64::MAX - 1));
        assert!(lru.contains(u64::MAX - 2));
        assert!(lru.remove(u64::MAX - 2));
    }

    #[test]
    #[should_panic(expected = "reserved as the LruSet sentinel")]
    fn sentinel_key_is_rejected() {
        let mut lru = LruSet::new(2);
        lru.insert(u64::MAX);
    }

    #[test]
    fn touch_missing_key_returns_false() {
        let mut lru = LruSet::new(4);
        assert!(!lru.touch(42));
    }

    #[test]
    fn stress_never_exceeds_capacity() {
        let mut lru = LruSet::new(8);
        for k in 0..1000u64 {
            lru.insert(k % 37);
            assert!(lru.len() <= 8);
        }
    }

    #[test]
    fn evictions_come_out_in_recency_order() {
        let mut lru = LruSet::new(4);
        for k in [10, 11, 12, 13] {
            assert_eq!(lru.insert(k), None);
        }
        // Recency (most to least): 13 12 11 10. Promote 11, then overflow.
        assert!(lru.touch(11));
        assert_eq!(lru.insert(14), Some(10));
        assert_eq!(lru.insert(15), Some(12));
        assert_eq!(lru.insert(16), Some(13));
        assert_eq!(lru.insert(17), Some(11));
    }

    #[test]
    fn remove_head_middle_and_tail_keep_links_consistent() {
        for victim in [1u64, 2, 3] {
            let mut lru = LruSet::new(3);
            lru.insert(1); // tail
            lru.insert(2); // middle
            lru.insert(3); // head
            assert!(lru.remove(victim));
            assert_eq!(lru.len(), 2);
            // The survivors must still evict in recency order (1 is the
            // least recently used, then 2, then 3).
            let mut survivors = [1, 2, 3].into_iter().filter(|&k| k != victim);
            assert_eq!(lru.insert(100), None); // refills the freed slot
            assert_eq!(lru.insert(101), Some(survivors.next().unwrap()));
            assert_eq!(lru.insert(102), Some(survivors.next().unwrap()));
        }
    }

    /// Cross-check against a naive `Vec`-based LRU over a deterministic
    /// pseudo-random workload of inserts, touches, and removes.
    #[test]
    fn matches_reference_model_under_random_workload() {
        struct RefLru {
            capacity: usize,
            keys: Vec<u64>, // front = most recently used
        }
        impl RefLru {
            fn insert(&mut self, key: u64) -> Option<u64> {
                if let Some(pos) = self.keys.iter().position(|&k| k == key) {
                    self.keys.remove(pos);
                    self.keys.insert(0, key);
                    return None;
                }
                let evicted = if self.keys.len() >= self.capacity { self.keys.pop() } else { None };
                self.keys.insert(0, key);
                evicted
            }
            fn touch(&mut self, key: u64) -> bool {
                match self.keys.iter().position(|&k| k == key) {
                    Some(pos) => {
                        self.keys.remove(pos);
                        self.keys.insert(0, key);
                        true
                    }
                    None => false,
                }
            }
            fn remove(&mut self, key: u64) -> bool {
                match self.keys.iter().position(|&k| k == key) {
                    Some(pos) => {
                        self.keys.remove(pos);
                        true
                    }
                    None => false,
                }
            }
        }

        let mut lru = LruSet::new(16);
        let mut reference = RefLru { capacity: 16, keys: Vec::new() };
        let mut state = 0x3DF4_A7E1u64; // xorshift64
        for step in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 48; // enough aliasing to exercise every path
            match state >> 61 {
                0..=4 => {
                    assert_eq!(lru.insert(key), reference.insert(key), "insert at step {step}")
                }
                5 | 6 => assert_eq!(lru.touch(key), reference.touch(key), "touch at step {step}"),
                _ => assert_eq!(lru.remove(key), reference.remove(key), "remove at step {step}"),
            }
            assert_eq!(lru.len(), reference.keys.len(), "len diverged at step {step}");
            assert!(lru.len() <= 16);
            for &k in &reference.keys {
                assert!(lru.contains(k), "key {k} missing at step {step}");
            }
        }
    }
}
