//! A small LRU set used to model finite cache capacities.

use crate::table::{OpenTable, Probe};

/// Sentinel key value; `u64::MAX` is rejected by [`LruSet::insert`] because
/// it is the open-addressed index's empty-slot marker.
const NONE: u64 = u64::MAX;

/// Sentinel slab slot ("no node").
const NIL: u32 = u32::MAX;

/// One slab node of the intrusive recency list.
#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: u32,
    next: u32,
}

/// A fixed-capacity set of `u64` keys with least-recently-used eviction.
///
/// The cache model uses one `LruSet` per L1, per L2 and per L3 slice to
/// decide whether a line is present at each level, so `touch`/`insert` are
/// the hottest operations in the whole simulator. The implementation is a
/// slab-backed intrusive list: nodes live in a flat `Vec` and link to each
/// other by index, and an open-addressed `OpenTable` index maps keys to slab
/// slots with a single cheap hash. Every operation is O(1), performs one probe
/// sequence, and — once the slab has warmed up to capacity — never
/// allocates.
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    /// Slab of list nodes; never holds more than `capacity` live nodes.
    nodes: Vec<Node>,
    /// Slab slots freed by `remove`, reused before the slab grows.
    free: Vec<u32>,
    /// Open-addressed index: key -> slab slot.
    index: OpenTable<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    len: usize,
}

impl LruSet {
    /// Create an LRU set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        // The index is sized by *occupancy*, not capacity, and doubles as
        // the set fills (like a `HashMap`): a mostly-empty cache with a huge
        // capacity must not pay for (or cache-miss across) a huge table.
        // Growth stops at ~2x capacity, so the load factor stays <= 0.5.
        let table_len = (capacity * 2).next_power_of_two().clamp(4, 16);
        LruSet {
            capacity,
            nodes: Vec::new(),
            free: Vec::new(),
            index: OpenTable::new(table_len, NIL),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of keys currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is present (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        matches!(self.index.probe(key), Probe::Found(_))
    }

    /// Splice `slot` out of the recency list (index untouched).
    #[inline]
    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Make `slot` the most-recently-used list node (index untouched).
    #[inline]
    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        self.nodes[slot as usize].prev = NIL;
        self.nodes[slot as usize].next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Promote an indexed slot to most recently used.
    #[inline]
    fn promote(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Mark `key` as most recently used if present; returns whether it was.
    pub fn touch(&mut self, key: u64) -> bool {
        match self.index.probe(key) {
            Probe::Found(pos) => {
                let slot = self.index.val_at(pos);
                self.promote(slot);
                true
            }
            Probe::Vacant(_) => false,
        }
    }

    /// Insert `key` as most recently used. Returns the evicted key, if the
    /// set was full and a (different) key had to be removed.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`, which is reserved as the internal index
    /// sentinel. (Keys model cache-line addresses, which never reach it.)
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        assert_ne!(key, NONE, "u64::MAX is reserved as the LruSet sentinel");
        // One probe resolves both cases: it either finds `key` (promote) or
        // ends at the empty position where `key` belongs.
        match self.index.probe(key) {
            Probe::Found(pos) => {
                let slot = self.index.val_at(pos);
                self.promote(slot);
                None
            }
            Probe::Vacant(pos) => self.insert_at(pos, key),
        }
    }

    /// Promote `key` if present, insert it as most recently used otherwise;
    /// returns whether it was present. A single probe serves both outcomes,
    /// unlike a `touch` miss followed by a separate `insert`, which probes
    /// the index twice — this is the cache model's hot path.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (the index sentinel), like `insert`.
    pub fn touch_or_insert(&mut self, key: u64) -> bool {
        assert_ne!(key, NONE, "u64::MAX is reserved as the LruSet sentinel");
        match self.index.probe(key) {
            Probe::Found(pos) => {
                let slot = self.index.val_at(pos);
                self.promote(slot);
                true
            }
            Probe::Vacant(pos) => {
                self.insert_at(pos, key);
                false
            }
        }
    }

    /// Insert `key`, known absent, at vacant index position `pos`; returns
    /// the evicted key if the set was full.
    fn insert_at(&mut self, mut pos: usize, key: u64) -> Option<u64> {
        // Keep the load factor <= 0.5. The check only runs when a key is
        // actually inserted, so promote-hits never grow; eviction caps the
        // post-insert occupancy at `capacity`, so the table never grows past
        // ~2x capacity (a transient `capacity + 1` entries is harmless).
        if (self.len + 1).min(self.capacity) * 2 > self.index.slots() {
            self.index.grow(NIL);
            pos = match self.index.probe(key) {
                Probe::Vacant(pos) => pos,
                Probe::Found(_) => unreachable!("key cannot appear during growth"),
            };
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize].key = key;
                slot
            }
            None => {
                let slot = self.nodes.len() as u32;
                self.nodes.push(Node { key, prev: NIL, next: NIL });
                slot
            }
        };
        self.index.occupy(pos, key, slot);
        self.push_front(slot);
        self.len += 1;
        if self.len > self.capacity {
            // Evict the least recently used key (never the one just
            // inserted: it is at the head and the capacity is >= 1, so with
            // len >= 2 the tail is a different node).
            let victim_slot = self.tail;
            debug_assert_ne!(victim_slot, NIL);
            debug_assert_ne!(victim_slot, slot);
            let victim_key = self.nodes[victim_slot as usize].key;
            self.unlink(victim_slot);
            match self.index.probe(victim_key) {
                Probe::Found(victim_pos) => self.index.remove_at(victim_pos),
                Probe::Vacant(_) => unreachable!("tail key must be indexed"),
            }
            self.free.push(victim_slot);
            self.len -= 1;
            return Some(victim_key);
        }
        None
    }

    /// Remove `key` if present; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.index.probe(key) {
            Probe::Found(pos) => {
                let slot = self.index.val_at(pos);
                self.unlink(slot);
                self.index.remove_at(pos);
                self.free.push(slot);
                self.len -= 1;
                true
            }
            Probe::Vacant(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut lru = LruSet::new(2);
        assert!(lru.is_empty());
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert!(lru.contains(1));
        assert!(lru.contains(2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        // Touch 1 so that 2 becomes the LRU victim.
        assert!(lru.touch(1));
        assert_eq!(lru.insert(3), Some(2));
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert!(lru.contains(3));
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut lru = LruSet::new(2);
        lru.insert(1);
        lru.insert(2);
        assert_eq!(lru.insert(2), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_frees_space() {
        let mut lru = LruSet::new(1);
        lru.insert(5);
        assert!(lru.remove(5));
        assert!(!lru.remove(5));
        assert_eq!(lru.insert(6), None);
        assert!(lru.contains(6));
    }

    #[test]
    fn capacity_one_always_holds_last_key() {
        let mut lru = LruSet::new(1);
        for k in 0..100 {
            lru.insert(k);
            assert!(lru.contains(k));
            assert_eq!(lru.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }

    #[test]
    fn keys_adjacent_to_the_sentinel_work() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.insert(u64::MAX - 1), None);
        assert_eq!(lru.insert(u64::MAX - 2), None);
        assert_eq!(lru.insert(0), Some(u64::MAX - 1));
        assert!(lru.contains(u64::MAX - 2));
        assert!(lru.remove(u64::MAX - 2));
    }

    #[test]
    #[should_panic(expected = "reserved as the LruSet sentinel")]
    fn sentinel_key_is_rejected() {
        let mut lru = LruSet::new(2);
        lru.insert(u64::MAX);
    }

    #[test]
    fn touch_missing_key_returns_false() {
        let mut lru = LruSet::new(4);
        assert!(!lru.touch(42));
    }

    #[test]
    fn stress_never_exceeds_capacity() {
        let mut lru = LruSet::new(8);
        for k in 0..1000u64 {
            lru.insert(k % 37);
            assert!(lru.len() <= 8);
        }
    }

    #[test]
    fn evictions_come_out_in_recency_order() {
        let mut lru = LruSet::new(4);
        for k in [10, 11, 12, 13] {
            assert_eq!(lru.insert(k), None);
        }
        // Recency (most to least): 13 12 11 10. Promote 11, then overflow.
        assert!(lru.touch(11));
        assert_eq!(lru.insert(14), Some(10));
        assert_eq!(lru.insert(15), Some(12));
        assert_eq!(lru.insert(16), Some(13));
        assert_eq!(lru.insert(17), Some(11));
    }

    #[test]
    fn remove_head_middle_and_tail_keep_links_consistent() {
        for victim in [1u64, 2, 3] {
            let mut lru = LruSet::new(3);
            lru.insert(1); // tail
            lru.insert(2); // middle
            lru.insert(3); // head
            assert!(lru.remove(victim));
            assert_eq!(lru.len(), 2);
            // The survivors must still evict in recency order (1 is the
            // least recently used, then 2, then 3).
            let mut survivors = [1, 2, 3].into_iter().filter(|&k| k != victim);
            assert_eq!(lru.insert(100), None); // refills the freed slot
            assert_eq!(lru.insert(101), Some(survivors.next().unwrap()));
            assert_eq!(lru.insert(102), Some(survivors.next().unwrap()));
        }
    }

    /// Cross-check against a naive `Vec`-based LRU over a deterministic
    /// pseudo-random workload of inserts, touches, and removes.
    #[test]
    fn matches_reference_model_under_random_workload() {
        struct RefLru {
            capacity: usize,
            keys: Vec<u64>, // front = most recently used
        }
        impl RefLru {
            fn insert(&mut self, key: u64) -> Option<u64> {
                if let Some(pos) = self.keys.iter().position(|&k| k == key) {
                    self.keys.remove(pos);
                    self.keys.insert(0, key);
                    return None;
                }
                let evicted = if self.keys.len() >= self.capacity { self.keys.pop() } else { None };
                self.keys.insert(0, key);
                evicted
            }
            fn touch(&mut self, key: u64) -> bool {
                match self.keys.iter().position(|&k| k == key) {
                    Some(pos) => {
                        self.keys.remove(pos);
                        self.keys.insert(0, key);
                        true
                    }
                    None => false,
                }
            }
            fn remove(&mut self, key: u64) -> bool {
                match self.keys.iter().position(|&k| k == key) {
                    Some(pos) => {
                        self.keys.remove(pos);
                        true
                    }
                    None => false,
                }
            }
        }

        let mut lru = LruSet::new(16);
        let mut reference = RefLru { capacity: 16, keys: Vec::new() };
        let mut state = 0x3DF4_A7E1u64; // xorshift64
        for step in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 48; // enough aliasing to exercise every path
            match state >> 61 {
                0..=4 => {
                    assert_eq!(lru.insert(key), reference.insert(key), "insert at step {step}")
                }
                5 | 6 => assert_eq!(lru.touch(key), reference.touch(key), "touch at step {step}"),
                _ => assert_eq!(lru.remove(key), reference.remove(key), "remove at step {step}"),
            }
            assert_eq!(lru.len(), reference.keys.len(), "len diverged at step {step}");
            assert!(lru.len() <= 16);
            for &k in &reference.keys {
                assert!(lru.contains(k), "key {k} missing at step {step}");
            }
        }
    }
}
