//! The simulated word-addressed shared memory and its undo records.

use std::collections::HashMap;

use swarm_types::Addr;

/// One undo-log entry: the value a word held before a speculative store.
///
/// Entries carry a global sequence number so that, when a set of tasks
/// aborts, their combined undo logs can be replayed newest-first, restoring
/// memory exactly (the dependence-tracking in the simulator guarantees that
/// every later writer of a line aborts whenever an earlier writer does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoEntry {
    /// Address of the overwritten word.
    pub addr: Addr,
    /// Value the word held before the store.
    pub old_value: u64,
    /// Global store sequence number (monotonically increasing).
    pub seq: u64,
}

/// Word-addressed simulated memory.
///
/// All mutable application state lives here so that speculative writes can be
/// undo-logged and rolled back generically. Addresses are sparse; untouched
/// words read as zero, mirroring zero-initialised allocations.
#[derive(Debug, Clone, Default)]
pub struct SimMemory {
    words: HashMap<Addr, u64>,
    store_seq: u64,
}

impl SimMemory {
    /// Create an empty memory (all words read as zero).
    pub fn new() -> Self {
        SimMemory::default()
    }

    /// Read the word at `addr`.
    pub fn load(&self, addr: Addr) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Write `value` to `addr`, returning the previous value.
    pub fn store(&mut self, addr: Addr, value: u64) -> u64 {
        self.store_seq += 1;
        self.words.insert(addr, value).unwrap_or_default()
    }

    /// Write `value` to `addr` and produce an [`UndoEntry`] recording the
    /// previous value, tagged with a fresh global sequence number.
    pub fn store_logged(&mut self, addr: Addr, value: u64) -> UndoEntry {
        let old_value = self.load(addr);
        self.store_seq += 1;
        let seq = self.store_seq;
        self.words.insert(addr, value);
        UndoEntry { addr, old_value, seq }
    }

    /// Undo a single entry (restore the recorded old value).
    pub fn rollback_entry(&mut self, entry: &UndoEntry) {
        self.words.insert(entry.addr, entry.old_value);
    }

    /// Undo a batch of entries from (possibly) several tasks. Entries are
    /// applied newest-first by sequence number regardless of input order.
    pub fn rollback_all(&mut self, entries: &mut Vec<UndoEntry>) {
        entries.sort_by_key(|e| std::cmp::Reverse(e.seq));
        for e in entries.iter() {
            self.rollback_entry(e);
        }
        entries.clear();
    }

    /// Number of distinct words ever written.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }

    /// Total number of stores performed (including rolled-back ones).
    pub fn store_count(&self) -> u64 {
        self.store_seq
    }

    /// Iterate over all (address, value) pairs with non-default values.
    pub fn iter(&self) -> impl Iterator<Item = (&Addr, &u64)> {
        self.words.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_read_zero() {
        let mem = SimMemory::new();
        assert_eq!(mem.load(0), 0);
        assert_eq!(mem.load(u64::MAX), 0);
        assert_eq!(mem.footprint_words(), 0);
    }

    #[test]
    fn store_returns_previous_value() {
        let mut mem = SimMemory::new();
        assert_eq!(mem.store(8, 1), 0);
        assert_eq!(mem.store(8, 2), 1);
        assert_eq!(mem.load(8), 2);
    }

    #[test]
    fn store_logged_and_rollback_restore_value() {
        let mut mem = SimMemory::new();
        mem.store(16, 10);
        let undo = mem.store_logged(16, 99);
        assert_eq!(undo.old_value, 10);
        assert_eq!(mem.load(16), 99);
        mem.rollback_entry(&undo);
        assert_eq!(mem.load(16), 10);
    }

    #[test]
    fn rollback_all_restores_in_reverse_sequence_order() {
        let mut mem = SimMemory::new();
        mem.store(0, 1);
        // Two speculative writers to the same word, in order.
        let u1 = mem.store_logged(0, 2); // old = 1
        let u2 = mem.store_logged(0, 3); // old = 2
        assert_eq!(mem.load(0), 3);
        // Present the entries in the "wrong" order; rollback_all must sort.
        let mut entries = vec![u1, u2];
        mem.rollback_all(&mut entries);
        assert_eq!(mem.load(0), 1);
        assert!(entries.is_empty());
    }

    #[test]
    fn store_count_tracks_all_stores() {
        let mut mem = SimMemory::new();
        mem.store(0, 1);
        mem.store_logged(0, 2);
        assert_eq!(mem.store_count(), 2);
    }

    #[test]
    fn iter_reports_written_words() {
        let mut mem = SimMemory::new();
        mem.store(64, 5);
        mem.store(128, 6);
        let mut pairs: Vec<(u64, u64)> = mem.iter().map(|(a, v)| (*a, *v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(64, 5), (128, 6)]);
    }
}
