//! The simulated word-addressed shared memory and its undo records.

use swarm_types::{Addr, FastHashMap};

/// One undo-log entry: the value a word held before a speculative store.
///
/// Entries carry a global sequence number so that, when a set of tasks
/// aborts, their combined undo logs can be replayed newest-first, restoring
/// memory exactly (the dependence-tracking in the simulator guarantees that
/// every later writer of a line aborts whenever an earlier writer does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoEntry {
    /// Address of the overwritten word.
    pub addr: Addr,
    /// Value the word held before the store.
    pub old_value: u64,
    /// Global store sequence number (monotonically increasing).
    pub seq: u64,
}

/// Bytes of address space covered by one page (4 KiB).
const PAGE_BYTES_SHIFT: u32 = 12;
/// 64-bit word slots per page.
const PAGE_WORDS: usize = 1 << (PAGE_BYTES_SHIFT - 3);
/// Byte-offset mask within a page.
const PAGE_OFFSET_MASK: u64 = (1 << PAGE_BYTES_SHIFT) - 1;
/// Page ids below this limit live in the flat page vector; [`AddressSpace`]
/// hands out dense low addresses, so in practice everything does. Covers
/// 8 GiB of address space at a worst-case table cost of 16 MiB.
///
/// [`AddressSpace`]: crate::AddressSpace
const DIRECT_PAGES: u64 = 1 << 21;

/// One 4 KiB page of simulated memory plus its written-word bitmap (the
/// bitmap only feeds [`SimMemory::footprint_words`] and [`SimMemory::iter`];
/// loads never consult it, because unwritten slots hold zero).
#[derive(Debug, Clone)]
struct Page {
    words: [u64; PAGE_WORDS],
    written: [u64; PAGE_WORDS / 64],
}

impl Page {
    fn new() -> Box<Page> {
        Box::new(Page { words: [0; PAGE_WORDS], written: [0; PAGE_WORDS / 64] })
    }

    fn for_each_written(&self, base_addr: Addr, mut f: impl FnMut(Addr, u64)) {
        for (i, &mask) in self.written.iter().enumerate() {
            let mut bits = mask;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let slot = i * 64 + bit;
                f(base_addr + (slot as u64) * 8, self.words[slot]);
            }
        }
    }
}

/// Word-addressed simulated memory.
///
/// All mutable application state lives here so that speculative writes can be
/// undo-logged and rolled back generically. Addresses are sparse; untouched
/// words read as zero, mirroring zero-initialised allocations.
///
/// Storage is paged: [`crate::AddressSpace`] hands out dense, word-aligned
/// addresses, so `addr >> 12` indexes a flat page table and a load/store is a
/// shift, a bounds check and an array index — no hashing at all on the hot
/// path. Word-aligned addresses beyond `DIRECT_PAGES` fall back to a hashed
/// page map, and non-word-aligned addresses (which the bundled apps never
/// produce, but the seed `HashMap` accepted) to a hashed side table, so the
/// sparse-key semantics of the seed are preserved exactly.
#[derive(Debug, Clone, Default)]
pub struct SimMemory {
    /// Flat page table for page ids below [`DIRECT_PAGES`].
    pages: Vec<Option<Box<Page>>>,
    /// Overflow pages (page ids >= [`DIRECT_PAGES`]).
    far_pages: FastHashMap<u64, Box<Page>>,
    /// Words at non-word-aligned addresses.
    unaligned: FastHashMap<Addr, u64>,
    /// Number of distinct words ever written.
    footprint: usize,
    store_seq: u64,
}

impl SimMemory {
    /// Create an empty memory (all words read as zero).
    pub fn new() -> Self {
        SimMemory::default()
    }

    #[inline]
    fn page(&self, page_id: u64) -> Option<&Page> {
        if page_id < DIRECT_PAGES {
            self.pages.get(page_id as usize)?.as_deref()
        } else {
            self.far_pages.get(&page_id).map(|p| &**p)
        }
    }

    /// Write `value` into the slot for the word-aligned address `addr`,
    /// returning the previous value and maintaining the footprint bitmap.
    #[inline]
    fn write_slot(&mut self, addr: Addr, value: u64) -> u64 {
        debug_assert_eq!(addr & 7, 0);
        let page_id = addr >> PAGE_BYTES_SHIFT;
        let slot = ((addr & PAGE_OFFSET_MASK) >> 3) as usize;
        // Split borrows: the footprint counter is updated while the page is
        // borrowed, so go through the fields directly.
        let footprint = &mut self.footprint;
        let page = if page_id < DIRECT_PAGES {
            let idx = page_id as usize;
            if idx >= self.pages.len() {
                self.pages.resize_with(idx + 1, || None);
            }
            self.pages[idx].get_or_insert_with(Page::new)
        } else {
            self.far_pages.entry(page_id).or_insert_with(Page::new)
        };
        let bit = 1u64 << (slot % 64);
        if page.written[slot / 64] & bit == 0 {
            page.written[slot / 64] |= bit;
            *footprint += 1;
        }
        std::mem::replace(&mut page.words[slot], value)
    }

    /// Read the word at `addr`.
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        if addr & 7 == 0 {
            match self.page(addr >> PAGE_BYTES_SHIFT) {
                Some(page) => page.words[((addr & PAGE_OFFSET_MASK) >> 3) as usize],
                None => 0,
            }
        } else {
            self.unaligned.get(&addr).copied().unwrap_or(0)
        }
    }

    /// Write `value` to `addr`, returning the previous value.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: u64) -> u64 {
        self.store_seq += 1;
        self.store_unsequenced(addr, value)
    }

    fn store_unsequenced(&mut self, addr: Addr, value: u64) -> u64 {
        if addr & 7 == 0 {
            self.write_slot(addr, value)
        } else {
            match self.unaligned.insert(addr, value) {
                Some(old) => old,
                None => {
                    self.footprint += 1;
                    0
                }
            }
        }
    }

    /// Write `value` to `addr` and produce an [`UndoEntry`] recording the
    /// previous value, tagged with a fresh global sequence number.
    pub fn store_logged(&mut self, addr: Addr, value: u64) -> UndoEntry {
        self.store_seq += 1;
        let seq = self.store_seq;
        let old_value = self.store_unsequenced(addr, value);
        UndoEntry { addr, old_value, seq }
    }

    /// Undo a single entry (restore the recorded old value).
    pub fn rollback_entry(&mut self, entry: &UndoEntry) {
        self.store_unsequenced(entry.addr, entry.old_value);
    }

    /// Undo a batch of entries from (possibly) several tasks. Entries are
    /// applied newest-first by sequence number regardless of input order.
    pub fn rollback_all(&mut self, entries: &mut Vec<UndoEntry>) {
        // Unstable sort: sequence numbers are unique, so stability buys
        // nothing, and the stable sort allocates a temp buffer on every
        // multi-task abort.
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
        for e in entries.iter() {
            self.rollback_entry(e);
        }
        entries.clear();
    }

    /// Number of distinct words ever written.
    pub fn footprint_words(&self) -> usize {
        self.footprint
    }

    /// Total number of stores performed (including rolled-back ones).
    pub fn store_count(&self) -> u64 {
        self.store_seq
    }

    /// Iterate over all (address, value) pairs ever written, in ascending
    /// address order (word-aligned pages first, then any unaligned words).
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        let mut pairs: Vec<(Addr, u64)> = Vec::with_capacity(self.footprint);
        for (idx, page) in self.pages.iter().enumerate() {
            if let Some(page) = page {
                page.for_each_written((idx as u64) << PAGE_BYTES_SHIFT, |a, v| pairs.push((a, v)));
            }
        }
        let mut far: Vec<u64> = self.far_pages.keys().copied().collect();
        far.sort_unstable();
        for page_id in far {
            self.far_pages[&page_id]
                .for_each_written(page_id << PAGE_BYTES_SHIFT, |a, v| pairs.push((a, v)));
        }
        let mut unaligned: Vec<(Addr, u64)> =
            self.unaligned.iter().map(|(&a, &v)| (a, v)).collect();
        unaligned.sort_unstable();
        pairs.extend(unaligned);
        pairs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_read_zero() {
        let mem = SimMemory::new();
        assert_eq!(mem.load(0), 0);
        assert_eq!(mem.load(u64::MAX), 0);
        assert_eq!(mem.footprint_words(), 0);
    }

    #[test]
    fn store_returns_previous_value() {
        let mut mem = SimMemory::new();
        assert_eq!(mem.store(8, 1), 0);
        assert_eq!(mem.store(8, 2), 1);
        assert_eq!(mem.load(8), 2);
    }

    #[test]
    fn store_logged_and_rollback_restore_value() {
        let mut mem = SimMemory::new();
        mem.store(16, 10);
        let undo = mem.store_logged(16, 99);
        assert_eq!(undo.old_value, 10);
        assert_eq!(mem.load(16), 99);
        mem.rollback_entry(&undo);
        assert_eq!(mem.load(16), 10);
    }

    #[test]
    fn rollback_all_restores_in_reverse_sequence_order() {
        let mut mem = SimMemory::new();
        mem.store(0, 1);
        // Two speculative writers to the same word, in order.
        let u1 = mem.store_logged(0, 2); // old = 1
        let u2 = mem.store_logged(0, 3); // old = 2
        assert_eq!(mem.load(0), 3);
        // Present the entries in the "wrong" order; rollback_all must sort.
        let mut entries = vec![u1, u2];
        mem.rollback_all(&mut entries);
        assert_eq!(mem.load(0), 1);
        assert!(entries.is_empty());
    }

    #[test]
    fn store_count_tracks_all_stores() {
        let mut mem = SimMemory::new();
        mem.store(0, 1);
        mem.store_logged(0, 2);
        assert_eq!(mem.store_count(), 2);
    }

    #[test]
    fn iter_reports_written_words() {
        let mut mem = SimMemory::new();
        mem.store(64, 5);
        mem.store(128, 6);
        let mut pairs: Vec<(u64, u64)> = mem.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(64, 5), (128, 6)]);
    }

    #[test]
    fn far_and_unaligned_addresses_behave_like_the_seed_hashmap() {
        let mut mem = SimMemory::new();
        // A page id far beyond the direct table.
        let far = (DIRECT_PAGES + 17) << PAGE_BYTES_SHIFT;
        assert_eq!(mem.store(far, 7), 0);
        assert_eq!(mem.load(far), 7);
        // Unaligned addresses are distinct words, not aliases of their
        // containing slot.
        assert_eq!(mem.store(12, 3), 0);
        assert_eq!(mem.load(12), 3);
        assert_eq!(mem.load(8), 0, "unaligned store must not alias the aligned word");
        assert_eq!(mem.footprint_words(), 2);
        // Rollback works across all three storage classes.
        let u_far = mem.store_logged(far, 8);
        let u_un = mem.store_logged(12, 4);
        mem.rollback_all(&mut vec![u_far, u_un]);
        assert_eq!(mem.load(far), 7);
        assert_eq!(mem.load(12), 3);
        // iter covers far and unaligned words.
        let pairs: Vec<(u64, u64)> = mem.iter().collect();
        assert_eq!(pairs, vec![(far, 7), (12, 3)]);
    }

    #[test]
    fn footprint_counts_distinct_words_once() {
        let mut mem = SimMemory::new();
        for _ in 0..5 {
            mem.store(8, 1);
            mem.store(16, 2);
        }
        assert_eq!(mem.footprint_words(), 2);
        assert_eq!(mem.store_count(), 10);
    }

    #[test]
    fn words_spanning_page_boundaries_are_independent() {
        let mut mem = SimMemory::new();
        let last = (1 << PAGE_BYTES_SHIFT) - 8;
        mem.store(last, 1);
        mem.store(last + 8, 2); // first word of the next page
        assert_eq!(mem.load(last), 1);
        assert_eq!(mem.load(last + 8), 2);
    }
}
