//! Address-space layout helper for applications.
//!
//! Applications store their mutable shared state in [`crate::SimMemory`] and
//! need stable, non-overlapping addresses for it. [`AddressSpace`] is a tiny
//! bump allocator handing out cache-line-aligned regions, so different data
//! structures of one application (and their hints) never alias.

use swarm_types::{Addr, CACHE_LINE_BYTES};

/// Size of one simulated word in bytes.
pub const WORD_BYTES: u64 = 8;

/// A bump allocator for simulated addresses.
///
/// # Example
///
/// ```
/// use swarm_mem::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let dist = space.alloc_array("dist", 100);
/// let colors = space.alloc_array("colors", 100);
/// assert_ne!(dist.addr_of(0), colors.addr_of(0));
/// assert_eq!(dist.addr_of(1) - dist.addr_of(0), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    next: Addr,
    regions: Vec<(String, Region)>,
}

/// A named, contiguous array of 64-bit words in simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: Addr,
    len_words: u64,
    /// Number of words between consecutive logical elements (stride 1 packs
    /// elements densely; stride 8 gives each element its own cache line).
    stride_words: u64,
}

impl Region {
    /// Base byte address of the region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of addressable elements.
    pub fn len(&self) -> u64 {
        self.len_words.checked_div(self.stride_words).unwrap_or(0)
    }

    /// Whether the region has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn addr_of(&self, i: u64) -> Addr {
        assert!(i < self.len(), "index {i} out of bounds for region of {} elements", self.len());
        self.base + i * self.stride_words * WORD_BYTES
    }

    /// Byte address of word `w` within element `i` (for multi-word elements).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `w >= stride`.
    pub fn addr_of_field(&self, i: u64, w: u64) -> Addr {
        assert!(w < self.stride_words, "field {w} out of bounds for stride {}", self.stride_words);
        self.addr_of(i) + w * WORD_BYTES
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.len_words * WORD_BYTES
    }
}

impl AddressSpace {
    /// Create an empty address space starting at a non-zero base (so that
    /// address 0 is never handed out and can be used as a sentinel).
    pub fn new() -> Self {
        AddressSpace { next: CACHE_LINE_BYTES, regions: Vec::new() }
    }

    /// Allocate an array of `len` single-word elements packed densely.
    pub fn alloc_array(&mut self, name: &str, len: u64) -> Region {
        self.alloc_strided(name, len, 1)
    }

    /// Allocate an array of `len` elements, each `stride_words` words wide.
    /// Use a stride of 8 to give each element a private cache line (the
    /// layout `des` and `nocsim` rely on when hinting by object id).
    ///
    /// # Panics
    ///
    /// Panics if `stride_words` is zero.
    pub fn alloc_strided(&mut self, name: &str, len: u64, stride_words: u64) -> Region {
        assert!(stride_words > 0, "stride must be positive");
        let len_words = len * stride_words;
        let region = Region { base: self.next, len_words, stride_words };
        // Keep regions line-aligned so hints derived from lines never alias
        // across regions.
        let bytes = len_words * WORD_BYTES;
        let padded = bytes.div_ceil(CACHE_LINE_BYTES) * CACHE_LINE_BYTES;
        self.next += padded.max(CACHE_LINE_BYTES);
        self.regions.push((name.to_string(), region));
        region
    }

    /// Total bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.next
    }

    /// Look up a region by name (mostly for debugging and tests).
    pub fn region(&self, name: &str) -> Option<Region> {
        self.regions.iter().find(|(n, _)| n == name).map(|(_, r)| *r)
    }

    /// Iterate over all allocated regions and their names.
    pub fn regions(&self) -> impl Iterator<Item = (&str, &Region)> {
        self.regions.iter().map(|(n, r)| (n.as_str(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::LineAddr;

    #[test]
    fn regions_do_not_overlap() {
        let mut space = AddressSpace::new();
        let a = space.alloc_array("a", 10);
        let b = space.alloc_array("b", 10);
        for i in 0..10 {
            assert!(!b.contains(a.addr_of(i)));
            assert!(!a.contains(b.addr_of(i)));
        }
    }

    #[test]
    fn regions_are_line_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc_array("a", 3);
        let b = space.alloc_array("b", 3);
        assert_eq!(a.base() % CACHE_LINE_BYTES, 0);
        assert_eq!(b.base() % CACHE_LINE_BYTES, 0);
        assert_ne!(LineAddr::containing(a.addr_of(2)), LineAddr::containing(b.addr_of(0)));
    }

    #[test]
    fn strided_elements_get_private_lines() {
        let mut space = AddressSpace::new();
        let r = space.alloc_strided("gates", 4, 8);
        for i in 0..3 {
            assert_ne!(
                LineAddr::containing(r.addr_of(i)),
                LineAddr::containing(r.addr_of(i + 1)),
                "elements {i} and {} share a line",
                i + 1
            );
        }
    }

    #[test]
    fn addr_of_field_addresses_within_element() {
        let mut space = AddressSpace::new();
        let r = space.alloc_strided("routers", 2, 4);
        assert_eq!(r.addr_of_field(0, 0), r.addr_of(0));
        assert_eq!(r.addr_of_field(0, 3), r.addr_of(0) + 24);
        assert_eq!(r.addr_of_field(1, 0), r.addr_of(0) + 32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn addr_of_out_of_bounds_panics() {
        let mut space = AddressSpace::new();
        let r = space.alloc_array("a", 2);
        let _ = r.addr_of(2);
    }

    #[test]
    fn region_lookup_by_name() {
        let mut space = AddressSpace::new();
        let a = space.alloc_array("dist", 5);
        assert_eq!(space.region("dist"), Some(a));
        assert_eq!(space.region("missing"), None);
        assert_eq!(space.regions().count(), 1);
    }

    #[test]
    fn address_zero_is_never_allocated() {
        let mut space = AddressSpace::new();
        let a = space.alloc_array("a", 1);
        assert!(a.addr_of(0) > 0);
    }

    #[test]
    fn empty_region_reports_empty() {
        let mut space = AddressSpace::new();
        let r = space.alloc_array("empty", 0);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
