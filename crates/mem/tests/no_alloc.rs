//! Locks the "zero heap allocation on the steady-state hot path" guarantee:
//! once the structures are warm, cache read hits, LRU touches/inserts and
//! SimMemory loads/stores must not touch the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use swarm_mem::{AccessKind, CacheModel, LruSet, SimMemory};
use swarm_types::{CacheConfig, CoreId, LineAddr};

struct CountingAllocator;

// Per-thread counter so that the libtest harness (and other tests running on
// their own threads) cannot bump the count mid-measurement. The const
// initializer keeps the first per-thread access allocation-free, and
// `Cell<u64>` has no destructor to register.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged; the counter is a
// plain thread-local cell with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn measured(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn steady_state_cache_read_hits_allocate_nothing() {
    let mut caches = CacheModel::new(CacheConfig::default(), 4, 4);
    let lines: Vec<LineAddr> = (0..32).map(LineAddr).collect();
    // Warm up: fill L1s and create the directory entries.
    for _ in 0..2 {
        for &line in &lines {
            caches.access(CoreId(0), line, AccessKind::Read);
        }
    }
    let allocs = measured(|| {
        for _ in 0..1_000 {
            for &line in &lines {
                let outcome = caches.access(CoreId(0), line, AccessKind::Read);
                assert!(outcome.invalidated.is_empty());
            }
        }
    });
    assert_eq!(allocs, 0, "steady-state read hits must not allocate");
}

#[test]
fn steady_state_single_sharer_writes_allocate_nothing() {
    let mut caches = CacheModel::new(CacheConfig::default(), 4, 4);
    let lines: Vec<LineAddr> = (0..32).map(LineAddr).collect();
    for &line in &lines {
        caches.access(CoreId(0), line, AccessKind::Write);
    }
    let allocs = measured(|| {
        for _ in 0..1_000 {
            for &line in &lines {
                caches.access(CoreId(0), line, AccessKind::Write);
            }
        }
    });
    assert_eq!(allocs, 0, "repeat writes by the owner must not allocate");
}

#[test]
fn warm_lru_churn_allocates_nothing() {
    let mut lru = LruSet::new(64);
    for key in 0..256u64 {
        lru.insert(key);
    }
    let allocs = measured(|| {
        for round in 0..1_000u64 {
            for key in 0..256 {
                // Insert with eviction, touch, and remove/reinsert churn.
                lru.insert(key);
                lru.touch((key + round) % 256);
            }
        }
    });
    assert_eq!(allocs, 0, "a warmed-up LruSet must never allocate");
}

#[test]
fn warm_memory_load_store_allocates_nothing() {
    let mut mem = SimMemory::new();
    for i in 0..512u64 {
        mem.store(i * 8, i);
    }
    let allocs = measured(|| {
        for round in 0..1_000u64 {
            for i in 0..512 {
                let value = mem.load(i * 8);
                mem.store(i * 8, value.wrapping_add(round));
            }
        }
    });
    assert_eq!(allocs, 0, "stores to warmed pages must not allocate");
}
