//! `stream`: dynamic single-source shortest paths over an edge-update
//! stream — the streaming/incremental scenario family.
//!
//! The workload starts from a *converged* SSSP solution on a directed road
//! grid (distances preloaded into simulated memory) and then applies a
//! stream of edge-weight **decreases** in timestamp order. Each update task
//! rewrites the edge's weight word and, if the decrease opens a shorter
//! path, spawns relaxation tasks that propagate the improvement wavefront
//! (asynchronous Bellman–Ford over the current weights).
//!
//! Decrease-only updates make the program *confluent*: whatever order the
//! speculative engine serializes the update/relax tasks in, the quiesced
//! distances equal Dijkstra over the **final** graph — which is exactly
//! what [`StreamSssp::validate`] checks, against an independently computed
//! reference. Unlike the batch `sssp` benchmark, timestamps here carry
//! *stream order*, not tentative distances, so the hint/conflict structure
//! is different: updates and relaxations of far-apart stream positions
//! touch overlapping vertex lines, and the engine has to speculate across
//! update boundaries to find parallelism.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

use crate::graph::{Graph, UNREACHED};

/// Timestamp distance between consecutive stream updates; relaxation
/// wavefronts spawn at `parent + 1` per hop, so a stride > 1 lets several
/// updates' wavefronts interleave speculatively.
const UPDATE_STRIDE: u64 = 4;

/// Task function ids.
const APPLY: u16 = 0;
const RELAX: u16 = 1;

/// A seeded dynamic-SSSP workload: a directed grid graph plus a stream of
/// edge-weight decreases.
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    /// Directed edges `(src, dst, initial_weight)`; the graph structure is
    /// fixed, only weights change.
    edges: Vec<(u32, u32, u32)>,
    /// The update stream: `(edge_index, new_weight)`, applied in order.
    /// Weights only decrease, which keeps the program confluent.
    updates: Vec<(usize, u32)>,
    num_vertices: usize,
    source: u32,
}

impl StreamWorkload {
    /// A `width` × `height` grid with heavy initial weights and `updates`
    /// random weight decreases, all drawn from `seed`.
    pub fn generate(width: usize, height: usize, updates: usize, seed: u64) -> Self {
        assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
        assert!(updates >= 1, "need at least one stream update");
        let mut rng = SmallRng::seed_from_u64(seed);
        let idx = |x: usize, y: usize| (y * width + x) as u32;
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let v = idx(x, y);
                // Initial weights are heavy (4..12) so decreases have room
                // to reroute shortest paths repeatedly.
                if x + 1 < width {
                    let w = 4 + rng.gen_range(0..8u32);
                    edges.push((v, idx(x + 1, y), w));
                    edges.push((idx(x + 1, y), v, w));
                }
                if y + 1 < height {
                    let w = 4 + rng.gen_range(0..8u32);
                    edges.push((v, idx(x, y + 1), w));
                    edges.push((idx(x, y + 1), v, w));
                }
            }
        }
        // Draw the decrease stream against the evolving weights so every
        // update is a strict decrease (weight-1 edges are left alone).
        let mut current: Vec<u32> = edges.iter().map(|&(_, _, w)| w).collect();
        let mut stream = Vec::with_capacity(updates);
        while stream.len() < updates {
            let e = rng.gen_range(0..edges.len());
            if current[e] > 1 {
                let new_w = rng.gen_range(1..current[e]);
                current[e] = new_w;
                stream.push((e, new_w));
            }
        }
        StreamWorkload { edges, updates: stream, num_vertices: width * height, source: 0 }
    }

    /// The graph with the update stream fully applied.
    fn final_graph(&self) -> Graph {
        let mut edges = self.edges.clone();
        for &(e, w) in &self.updates {
            edges[e].2 = w;
        }
        let coords = vec![(0i64, 0i64); self.num_vertices];
        Graph::from_edges(self.num_vertices, &edges, coords)
    }

    /// The graph before any update.
    fn base_graph(&self) -> Graph {
        let coords = vec![(0i64, 0i64); self.num_vertices];
        Graph::from_edges(self.num_vertices, &self.edges, coords)
    }
}

/// The dynamic-SSSP application over a [`StreamWorkload`].
pub struct StreamSssp {
    workload: StreamWorkload,
    /// Converged distances before the stream starts (preloaded).
    initial_dist: Vec<u64>,
    /// Distances after the full stream quiesces (the serial reference).
    reference: Vec<u64>,
    /// Out-edges per vertex: `(edge_index, dst)`.
    out_edges: Vec<Vec<(usize, u32)>>,
    dist: Region,
    weight: Region,
}

impl StreamSssp {
    pub fn new(workload: StreamWorkload) -> Self {
        let mut space = AddressSpace::new();
        let dist = space.alloc_array("dist", workload.num_vertices as u64);
        let weight = space.alloc_array("weight", workload.edges.len() as u64);
        let initial_dist = workload.base_graph().dijkstra(workload.source);
        let reference = workload.final_graph().dijkstra(workload.source);
        let mut out_edges = vec![Vec::new(); workload.num_vertices];
        for (e, &(src, dst, _)) in workload.edges.iter().enumerate() {
            out_edges[src as usize].push((e, dst));
        }
        StreamSssp { workload, initial_dist, reference, out_edges, dist, weight }
    }

    fn dist_addr(&self, v: u32) -> u64 {
        self.dist.addr_of(v as u64)
    }

    fn weight_addr(&self, e: usize) -> u64 {
        self.weight.addr_of(e as u64)
    }

    fn hint_for(&self, v: u32) -> Hint {
        Hint::cache_line(self.dist_addr(v))
    }

    /// Relax every out-edge of `v` against the current weights, spawning a
    /// follow-up wavefront task per improved neighbor.
    fn relax(&self, v: u32, ts: u64, ctx: &mut TaskCtx<'_>) {
        let dv = ctx.read(self.dist_addr(v));
        if dv == UNREACHED {
            return;
        }
        for &(e, n) in &self.out_edges[v as usize] {
            let w = ctx.read(self.weight_addr(e));
            let projected = dv + w;
            if projected < ctx.read(self.dist_addr(n)) {
                ctx.write(self.dist_addr(n), projected);
                ctx.enqueue(RELAX, ts + 1, self.hint_for(n), vec![n as u64]);
            }
        }
    }
}

impl SwarmApp for StreamSssp {
    fn name(&self) -> &str {
        "stream"
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        for (v, &d) in self.initial_dist.iter().enumerate() {
            mem.store(self.dist_addr(v as u32), d);
        }
        for (e, &(_, _, w)) in self.workload.edges.iter().enumerate() {
            mem.store(self.weight_addr(e), w as u64);
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.workload
            .updates
            .iter()
            .enumerate()
            .map(|(k, &(e, w))| {
                let (_, dst, _) = self.workload.edges[e];
                let ts = (k as u64 + 1) * UPDATE_STRIDE;
                InitialTask::new(APPLY, ts, self.hint_for(dst), vec![e as u64, w as u64])
            })
            .collect()
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        match fid {
            APPLY => {
                let e = args[0] as usize;
                let new_w = args[1];
                let (src, dst, _) = self.workload.edges[e];
                ctx.write(self.weight_addr(e), new_w);
                let du = ctx.read(self.dist_addr(src));
                if du != UNREACHED && du + new_w < ctx.read(self.dist_addr(dst)) {
                    ctx.write(self.dist_addr(dst), du + new_w);
                    ctx.enqueue(RELAX, ts + 1, self.hint_for(dst), vec![dst as u64]);
                }
            }
            RELAX => self.relax(args[0] as u32, ts, ctx),
            _ => unreachable!("unknown task function {fid}"),
        }
    }

    fn num_task_fns(&self) -> usize {
        2
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for v in 0..self.workload.num_vertices as u32 {
            let got = mem.load(self.dist_addr(v));
            let want = self.reference[v as usize];
            if got != want {
                return Err(format!(
                    "stream: distance of vertex {v} is {got}, final-graph Dijkstra says {want}"
                ));
            }
        }
        // Later updates may overwrite the same edge; the last write per edge
        // must stick.
        let mut final_weights = std::collections::BTreeMap::new();
        for &(e, w) in &self.workload.updates {
            final_weights.insert(e, w as u64);
        }
        for (&e, &want) in &final_weights {
            let got = mem.load(self.weight_addr(e));
            if got != want {
                return Err(format!("stream: weight of edge {e} is {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(w: StreamWorkload, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(StreamSssp::new(w))
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("stream must validate against final-graph Dijkstra")
    }

    #[test]
    fn decreases_converge_to_final_graph_single_core() {
        run(StreamWorkload::generate(8, 8, 40, 11), Scheduler::Random, 1);
    }

    #[test]
    fn decreases_converge_under_every_scheduler() {
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(StreamWorkload::generate(10, 8, 50, 12), s, 16);
        }
    }

    #[test]
    fn updates_actually_change_distances() {
        // The stream must not be a no-op: at least one vertex's distance
        // improves, otherwise the family exercises nothing.
        let w = StreamWorkload::generate(10, 10, 60, 13);
        let app = StreamSssp::new(w);
        assert!(
            app.initial_dist.iter().zip(&app.reference).any(|(a, b)| a != b),
            "update stream left every distance unchanged"
        );
    }

    #[test]
    fn stream_is_decrease_only() {
        let w = StreamWorkload::generate(6, 6, 30, 14);
        let mut current: Vec<u32> = w.edges.iter().map(|&(_, _, wt)| wt).collect();
        for &(e, nw) in &w.updates {
            assert!(nw < current[e], "update on edge {e} does not decrease its weight");
            current[e] = nw;
        }
    }
}
