//! `hostile`: deliberately adversarial generators — the third synthetic
//! scenario family.
//!
//! Each [`HostileKind`] targets one mechanism the friendly workloads never
//! stress:
//!
//! * [`HintAlias`](HostileKind::HintAlias) — every task carries the *same*
//!   hint while touching disjoint data. Spatial hints collapse the whole
//!   program onto one tile and same-hint serialization runs it one task at
//!   a time; work stealing spreads it trivially. This is the worst case for
//!   Hints/LBHints the paper's Section III trade-off implies, and
//!   `tests/scheduling.rs` pins the degradation.
//! * [`PriorityInversion`](HostileKind::PriorityInversion) — an early
//!   low-timestamp writer chain creeps through a shared line while a flood
//!   of late-timestamp readers speculates ahead; every chain step aborts
//!   the whole speculative flood, so cores burn nearly all their cycles on
//!   doomed late work (the scheduling pathology, expressed as data
//!   dependence).
//! * [`SpillStorm`](HostileKind::SpillStorm) — a wide band of tasks plus
//!   high fan-out children overflow the per-tile task queues, forcing the
//!   task unit to spill/refill and — on queue-starved configurations —
//!   execute tasks out of commit order. Since every task updates one shared
//!   counter, each inversion is *observable* as an abort, including the one
//!   legal single-core abort source (see `tests/fuzz.rs` and the
//!   conformance kit's single-core invariant).
//!
//! All three stay within the `SwarmApp` contract: seeded generators,
//! serial references, and a `validate()` that must hold under any
//! serializable execution.

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{hashing, Hint, TaskFnId, Timestamp};

/// Which adversarial scenario to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostileKind {
    /// All tasks share one hint value over disjoint data.
    HintAlias,
    /// Early writer chain repeatedly aborts a late speculative flood.
    PriorityInversion,
    /// Task-queue overflow via a wide band with high fan-out.
    SpillStorm,
}

/// A seeded hostile workload description.
#[derive(Debug, Clone, Copy)]
pub struct HostileWorkload {
    pub kind: HostileKind,
    /// Primary size knob: aliased tasks / chain length / wave width.
    pub tasks: usize,
    /// Cycles of compute each task burns.
    pub compute: u64,
    /// Secondary size knob: flood width (PriorityInversion) or fan-out per
    /// wave task (SpillStorm); ignored by HintAlias.
    pub degree: usize,
    /// Payload seed.
    pub seed: u64,
}

impl HostileWorkload {
    /// The canonical aliasing adversary: `tasks` independent tasks, one
    /// shared hint.
    pub fn hint_alias(tasks: usize, compute: u64, seed: u64) -> Self {
        assert!(tasks >= 1);
        HostileWorkload { kind: HostileKind::HintAlias, tasks, compute, degree: 0, seed }
    }

    /// A `chain`-long early writer chain against a `flood`-wide late
    /// speculative read storm.
    pub fn priority_inversion(chain: usize, flood: usize, compute: u64, seed: u64) -> Self {
        assert!(chain >= 1 && flood >= 1);
        HostileWorkload {
            kind: HostileKind::PriorityInversion,
            tasks: chain,
            compute,
            degree: flood,
            seed,
        }
    }

    /// A `wave`-wide initial band whose tasks each spawn `fanout` children,
    /// all updating one shared counter.
    pub fn spill_storm(wave: usize, fanout: usize, compute: u64, seed: u64) -> Self {
        assert!(wave >= 1 && fanout >= 1);
        HostileWorkload {
            kind: HostileKind::SpillStorm,
            tasks: wave,
            compute,
            degree: fanout,
            seed,
        }
    }
}

/// Task function ids (shared across kinds; each kind uses a subset).
const PRIMARY: u16 = 0;
const SECONDARY: u16 = 1;

/// The timestamp band where late work (flood / children) lives; far above
/// any early-band timestamp so the serial order is unambiguous.
const LATE_BAND: u64 = 10_000;

/// The hint every aliased task shares.
const ALIAS_HINT: u64 = 0xA11A5;

/// The hostile application over a [`HostileWorkload`].
pub struct Hostile {
    w: HostileWorkload,
    /// Per-task output slots (disjoint cache lines).
    slots: Region,
    /// The shared counter line every conflicting kind hammers.
    shared: Region,
}

impl Hostile {
    pub fn new(w: HostileWorkload) -> Self {
        let mut space = AddressSpace::new();
        let slot_count = match w.kind {
            HostileKind::HintAlias => w.tasks,
            HostileKind::PriorityInversion => w.degree,
            HostileKind::SpillStorm => w.tasks * w.degree,
        };
        // One slot per line so slot writes never conflict with each other.
        let slots = space.alloc_strided("slots", slot_count.max(1) as u64, 8);
        let shared = space.alloc_array("shared", 1);
        Hostile { w, slots, shared }
    }

    fn slot_addr(&self, i: usize) -> u64 {
        self.slots.addr_of(i as u64)
    }

    fn shared_addr(&self) -> u64 {
        self.shared.addr_of(0)
    }

    fn payload(&self, i: usize) -> u64 {
        hashing::hash64(self.w.seed ^ i as u64) & 0xFFFF
    }
}

impl SwarmApp for Hostile {
    fn name(&self) -> &str {
        "hostile"
    }

    fn init_memory(&self, _mem: &mut SimMemory) {}

    fn initial_tasks(&self) -> Vec<InitialTask> {
        match self.w.kind {
            HostileKind::HintAlias => (0..self.w.tasks)
                .map(|i| {
                    // Distinct timestamps, disjoint data — and one hint.
                    InitialTask::new(PRIMARY, i as u64, Hint::value(ALIAS_HINT), vec![i as u64])
                })
                .collect(),
            HostileKind::PriorityInversion => {
                let mut tasks = vec![InitialTask::new(PRIMARY, 1, Hint::value(7), vec![0])];
                tasks.extend((0..self.w.degree).map(|i| {
                    InitialTask::new(
                        SECONDARY,
                        LATE_BAND + i as u64,
                        Hint::value(1000 + i as u64),
                        vec![i as u64],
                    )
                }));
                tasks
            }
            HostileKind::SpillStorm => (0..self.w.tasks)
                .map(|i| {
                    InitialTask::new(PRIMARY, 100 + i as u64, Hint::value(i as u64), vec![i as u64])
                })
                .collect(),
        }
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let i = args[0] as usize;
        match (self.w.kind, fid) {
            (HostileKind::HintAlias, _) => {
                ctx.compute(self.w.compute);
                ctx.write(self.slot_addr(i), self.payload(i));
            }
            (HostileKind::PriorityInversion, PRIMARY) => {
                // The early chain: one shared-line write per step.
                ctx.update(self.shared_addr(), |v| v + 1);
                ctx.compute(self.w.compute);
                if i + 1 < self.w.tasks {
                    ctx.enqueue(PRIMARY, ts + 1, Hint::value(7), vec![i as u64 + 1]);
                }
            }
            (HostileKind::PriorityInversion, _) => {
                // The late flood: reads the line the chain is writing, so
                // every chain step aborts every in-flight flood task.
                let seen = ctx.read(self.shared_addr());
                ctx.compute(self.w.compute);
                ctx.write(self.slot_addr(i), seen + self.payload(i));
            }
            (HostileKind::SpillStorm, PRIMARY) => {
                ctx.update(self.shared_addr(), |v| v + 1);
                ctx.compute(self.w.compute);
                for j in 0..self.w.degree {
                    let c = i * self.w.degree + j;
                    ctx.enqueue(
                        SECONDARY,
                        LATE_BAND + c as u64,
                        Hint::value(1000 + c as u64),
                        vec![c as u64],
                    );
                }
            }
            (HostileKind::SpillStorm, _) => {
                ctx.update(self.shared_addr(), |v| v + 1);
                ctx.compute(self.w.compute);
                ctx.write(self.slot_addr(i), self.payload(i));
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        2
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        match self.w.kind {
            HostileKind::HintAlias => {
                for i in 0..self.w.tasks {
                    let got = mem.load(self.slot_addr(i));
                    if got != self.payload(i) {
                        return Err(format!("hostile/alias: slot {i} is {got}"));
                    }
                }
            }
            HostileKind::PriorityInversion => {
                let chain = self.w.tasks as u64;
                let got = mem.load(self.shared_addr());
                if got != chain {
                    return Err(format!("hostile/inversion: chain count is {got}, want {chain}"));
                }
                // Serially, every flood task runs after the whole chain.
                for i in 0..self.w.degree {
                    let got = mem.load(self.slot_addr(i));
                    let want = chain + self.payload(i);
                    if got != want {
                        return Err(format!(
                            "hostile/inversion: flood slot {i} is {got}, want {want} — a \
                             speculative read of the chain counter leaked"
                        ));
                    }
                }
            }
            HostileKind::SpillStorm => {
                let want = (self.w.tasks + self.w.tasks * self.w.degree) as u64;
                let got = mem.load(self.shared_addr());
                if got != want {
                    return Err(format!(
                        "hostile/spill: shared counter is {got}, want {want} — an update was \
                         lost across a spill/refill"
                    ));
                }
                for c in 0..self.w.tasks * self.w.degree {
                    let got = mem.load(self.slot_addr(c));
                    if got != self.payload(c) {
                        return Err(format!("hostile/spill: child slot {c} is {got}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;
    use swarm_types::SystemConfig;

    fn run_cfg(w: HostileWorkload, scheduler: Scheduler, cfg: SystemConfig) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .config(cfg)
            .app(Hostile::new(w))
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("hostile workloads must still validate")
    }

    fn run(w: HostileWorkload, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        run_cfg(w, scheduler, SystemConfig::with_cores(cores))
    }

    #[test]
    fn every_kind_validates_under_every_scheduler() {
        let kinds = [
            HostileWorkload::hint_alias(48, 80, 1),
            HostileWorkload::priority_inversion(24, 32, 40, 2),
            HostileWorkload::spill_storm(40, 3, 30, 3),
        ];
        for w in kinds {
            for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints]
            {
                run(w, s, 16);
                run(w, s, 1);
            }
        }
    }

    #[test]
    fn hint_alias_serializes_onto_one_tile_under_hints() {
        let stats = run(HostileWorkload::hint_alias(64, 100, 4), Scheduler::Hints, 16);
        let busy_tiles = stats.committed_cycles_per_tile.iter().filter(|&&c| c > 0).count();
        assert_eq!(busy_tiles, 1, "aliased hints must collapse onto a single tile");
    }

    #[test]
    fn priority_inversion_floods_abort_repeatedly() {
        let stats = run(HostileWorkload::priority_inversion(24, 32, 40, 5), Scheduler::Random, 16);
        assert!(
            stats.tasks_aborted as usize >= 32,
            "the late flood should be aborted over and over, got {} aborts",
            stats.tasks_aborted
        );
    }

    #[test]
    fn spill_storm_overflows_single_core_queues() {
        let stats = run(HostileWorkload::spill_storm(90, 3, 30, 6), Scheduler::Hints, 1);
        assert!(stats.tasks_spilled > 0, "a 90-wide band must overflow a 64-entry task queue");
    }
}
