//! `synth`: parameterized synthetic scenario families.
//!
//! Everything in the Table I suite is *friendly*: generators are well mixed,
//! hints are well distributed, and queues stay comfortable. The three
//! families here are built to probe the regimes the friendly workloads never
//! reach, while keeping the suite's contract — every app has a seeded
//! generator, a serial reference, and a `validate()` the engine checks on
//! every run:
//!
//! * [`stream`] — a streaming/incremental app: dynamic single-source
//!   shortest paths over an edge-update stream, starting from a converged
//!   solution and re-relaxing as weight decreases arrive in timestamp
//!   order.
//! * [`pipeline`] — a mixed-phase pipeline: embarrassingly parallel
//!   produce/transform phases feeding a few hot reduction accumulators, so
//!   one program alternates between hint-friendly and contention-heavy
//!   phases.
//! * [`hostile`] — deliberately adversarial generators
//!   ([`hostile::HostileKind`]): all-tasks-one-hint aliasing that starves
//!   every tile but one, a pathological priority inversion whose late
//!   speculative flood is repeatedly aborted by an early writer chain, and
//!   a spill storm that overflows per-tile task queues to force
//!   out-of-commit-order execution.
//!
//! The families are registered as [`BenchmarkId`](crate::BenchmarkId)s
//! (`stream`, `pipeline`, `hostile` — see
//! [`BenchmarkId::SYNTH`](crate::BenchmarkId::SYNTH)), so `swarm table2
//! --apps stream,pipeline,hostile`-style sweeps and the conformance suite
//! pick them up like any paper workload.

pub mod hostile;
pub mod pipeline;
pub mod stream;

pub use hostile::{Hostile, HostileKind, HostileWorkload};
pub use pipeline::{Pipeline, PipelineWorkload};
pub use stream::{StreamSssp, StreamWorkload};
