//! `pipeline`: a mixed-phase pipeline — the second synthetic scenario
//! family.
//!
//! `items` work items flow through `stages` timestamp-banded phases: a
//! *produce* stage writes each item's private buffer word, middle
//! *transform* stages rewrite it (one task per item per stage, perfectly
//! parallel, item-line hints), and the final *reduce* stage folds every
//! item into one of a handful of shared accumulators (accumulator-line
//! hints). The program therefore alternates between a regime where hints
//! spread work perfectly and one where a few hot lines dominate — within a
//! single app, which no Table I workload does.
//!
//! The task graph is a fixed forest with globally distinct timestamps
//! (stage band × item), so the committed task count is
//! schedule-independent and the conformance kit pins it. Reductions use
//! commutative adds via `TaskCtx::update`, so the final memory is the same
//! under every serialization; [`Pipeline::validate`] checks buffers and
//! accumulators against a directly computed serial reference.

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{hashing, Hint, TaskFnId, Timestamp};

/// A seeded mixed-phase pipeline workload.
#[derive(Debug, Clone, Copy)]
pub struct PipelineWorkload {
    /// Work items flowing through the pipeline.
    pub items: usize,
    /// Total stages, including produce and reduce (minimum 2).
    pub stages: usize,
    /// Shared reduction accumulators (the hot lines of the final phase).
    pub accumulators: usize,
    /// Generator seed for the item payloads.
    pub seed: u64,
}

impl PipelineWorkload {
    pub fn generate(items: usize, stages: usize, accumulators: usize, seed: u64) -> Self {
        assert!(items >= 1, "pipeline needs at least one item");
        assert!(stages >= 2, "pipeline needs a produce and a reduce stage");
        assert!(accumulators >= 1, "pipeline needs at least one accumulator");
        PipelineWorkload { items, stages, accumulators, seed }
    }
}

/// The pipeline application over a [`PipelineWorkload`].
pub struct Pipeline {
    w: PipelineWorkload,
    buf: Region,
    acc: Region,
    /// Expected final buffer words (after the last transform stage).
    buf_reference: Vec<u64>,
    /// Expected final accumulator values.
    acc_reference: Vec<u64>,
}

/// One transform step: cheap, invertible-free mixing that keeps values
/// bounded so repeated stages cannot overflow.
fn transform(v: u64, stage: usize) -> u64 {
    (v.rotate_left(7) ^ (stage as u64).wrapping_mul(0x9E37)) & 0xFFFF_FFFF
}

impl Pipeline {
    pub fn new(w: PipelineWorkload) -> Self {
        let mut space = AddressSpace::new();
        // One word per item; accumulators on separate cache lines so the
        // reduce phase contends on hint locality, not false sharing.
        let buf = space.alloc_array("buf", w.items as u64);
        let acc = space.alloc_strided("acc", w.accumulators as u64, 8);
        // Serial reference: run the pipeline in plain Rust.
        let mut buf_reference = Vec::with_capacity(w.items);
        let mut acc_reference = vec![0u64; w.accumulators];
        for i in 0..w.items {
            let mut v = hashing::hash64(w.seed ^ i as u64) & 0xFFFF;
            for s in 1..w.stages - 1 {
                v = transform(v, s);
            }
            acc_reference[i % w.accumulators] = acc_reference[i % w.accumulators].wrapping_add(v);
            buf_reference.push(v);
        }
        Pipeline { w, buf, acc, buf_reference, acc_reference }
    }

    fn buf_addr(&self, i: usize) -> u64 {
        self.buf.addr_of(i as u64)
    }

    fn acc_addr(&self, i: usize) -> u64 {
        self.acc.addr_of((i % self.w.accumulators) as u64)
    }

    /// Timestamps are banded per stage so phases are globally ordered but
    /// items within a phase run in parallel.
    fn ts_of(&self, stage: usize, item: usize) -> u64 {
        (stage * self.w.items + item) as u64
    }
}

impl SwarmApp for Pipeline {
    fn name(&self) -> &str {
        "pipeline"
    }

    fn init_memory(&self, _mem: &mut SimMemory) {}

    fn initial_tasks(&self) -> Vec<InitialTask> {
        (0..self.w.items)
            .map(|i| {
                InitialTask::new(
                    0,
                    self.ts_of(0, i),
                    Hint::cache_line(self.buf_addr(i)),
                    vec![i as u64],
                )
            })
            .collect()
    }

    fn run_task(&self, fid: TaskFnId, _ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let stage = fid as usize;
        let i = args[0] as usize;
        let last = self.w.stages - 1;
        if stage == 0 {
            // Produce: materialize the item's payload.
            ctx.write(self.buf_addr(i), hashing::hash64(self.w.seed ^ i as u64) & 0xFFFF);
        } else if stage < last {
            // Transform: rewrite the item's private word.
            let v = ctx.read(self.buf_addr(i));
            ctx.compute(20);
            ctx.write(self.buf_addr(i), transform(v, stage));
        } else {
            // Reduce: fold into a hot shared accumulator (commutative add).
            let v = ctx.read(self.buf_addr(i));
            ctx.compute(10);
            ctx.update(self.acc_addr(i), |acc| acc.wrapping_add(v));
        }
        if stage < last {
            let next = stage + 1;
            let hint = if next == last {
                Hint::cache_line(self.acc_addr(i))
            } else {
                Hint::cache_line(self.buf_addr(i))
            };
            ctx.enqueue(next as u16, self.ts_of(next, i), hint, vec![i as u64]);
        }
    }

    fn num_task_fns(&self) -> usize {
        self.w.stages
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for (i, &want) in self.buf_reference.iter().enumerate() {
            let got = mem.load(self.buf_addr(i));
            if got != want {
                return Err(format!("pipeline: buffer {i} is {got}, expected {want}"));
            }
        }
        for (a, &want) in self.acc_reference.iter().enumerate() {
            let got = mem.load(self.acc.addr_of(a as u64));
            if got != want {
                return Err(format!("pipeline: accumulator {a} is {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(w: PipelineWorkload, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(Pipeline::new(w))
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("pipeline must validate against its serial reference")
    }

    #[test]
    fn pipeline_matches_reference_single_core() {
        run(PipelineWorkload::generate(40, 3, 4, 5), Scheduler::Random, 1);
    }

    #[test]
    fn pipeline_matches_reference_under_every_scheduler() {
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(PipelineWorkload::generate(60, 4, 3, 6), s, 16);
        }
    }

    #[test]
    fn committed_tasks_equal_items_times_stages() {
        let stats = run(PipelineWorkload::generate(30, 4, 2, 7), Scheduler::Hints, 16);
        assert_eq!(stats.tasks_committed, 30 * 4);
    }

    #[test]
    fn two_stage_degenerate_pipeline_works() {
        // stages == 2 means produce feeds reduce directly.
        let stats = run(PipelineWorkload::generate(16, 2, 1, 8), Scheduler::Stealing, 4);
        assert_eq!(stats.tasks_committed, 16 * 2);
    }
}
