//! `des`: discrete event simulation of a digital circuit (Listing 1).
//!
//! Ordered benchmark: a task simulates one signal toggle arriving at a gate
//! input at a given simulated time (the task's timestamp). If the gate's
//! output changes, the task enqueues toggles for every connected input after
//! that gate's propagation delay. Each task reads and writes only its own
//! gate's state, so the gate id is a perfect spatial hint (Table I).
//!
//! The paper simulates `csaArray32` (an array of carry-select adders); we
//! generate a layered random circuit of the same flavour: a grid of 2-input
//! gates with random types, local wiring to the previous layer, and external
//! input waveforms driving the first layer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

/// Gate types supported by the circuit generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Exclusive OR.
    Xor,
    /// Negated AND.
    Nand,
    /// Negated OR.
    Nor,
}

impl GateKind {
    fn eval(self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & 1, b & 1);
        match self {
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Xor => a ^ b,
            GateKind::Nand => 1 - (a & b),
            GateKind::Nor => 1 - (a | b),
        }
    }

    fn from_index(i: u64) -> Self {
        match i % 5 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Xor,
            3 => GateKind::Nand,
            _ => GateKind::Nor,
        }
    }
}

/// One 2-input gate of the generated netlist.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Gate function.
    pub kind: GateKind,
    /// Propagation delay in simulated time units.
    pub delay: u64,
    /// Destination (gate, input index) pairs driven by this gate's output.
    pub fanout: Vec<(u32, u8)>,
}

/// A generated circuit: gates in layers plus external input waveforms.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// All gates.
    pub gates: Vec<Gate>,
    /// External stimuli: (time, destination gate, input index, value).
    pub waveforms: Vec<(u64, u32, u8, u64)>,
}

impl Circuit {
    /// Generate a layered random circuit with `layers` layers of `width`
    /// gates each, driven by `toggles` external toggles per primary input.
    pub fn layered(width: usize, layers: usize, toggles: usize, seed: u64) -> Self {
        assert!(width >= 2 && layers >= 2, "circuit must have at least 2x2 gates");
        let mut rng = SmallRng::seed_from_u64(seed);
        let num_gates = width * layers;
        let mut gates: Vec<Gate> = (0..num_gates)
            .map(|g| Gate {
                kind: GateKind::from_index(rng.gen_range(0..5)),
                delay: 1 + (g as u64 % 7),
                fanout: Vec::new(),
            })
            .collect();
        // Wire each gate in layer l (l >= 1) to two gates of layer l-1.
        for layer in 1..layers {
            for x in 0..width {
                let gate = (layer * width + x) as u32;
                for input in 0..2u8 {
                    let src_x = (x + rng.gen_range(0..3) + width - 1) % width;
                    let src = ((layer - 1) * width + src_x) as u32;
                    gates[src as usize].fanout.push((gate, input));
                }
            }
        }
        // External waveforms drive the first layer's inputs. The two inputs
        // of a gate toggle on opposite parities so the primary stimuli never
        // collide at a gate.
        let mut waveforms = Vec::new();
        for x in 0..width {
            let gate = x as u32;
            for input in 0..2u8 {
                let mut value = rng.gen_range(0..2u64);
                let mut time = input as u64;
                for _ in 0..toggles {
                    time += 2 * rng.gen_range(1..6u64);
                    value ^= 1;
                    waveforms.push((time, gate, input, value));
                }
            }
        }
        Circuit { gates, waveforms }
    }

    /// Emission slots per gate used in the timestamp encoding: up to this
    /// many output toggles of one gate can share a nominal arrival time
    /// before timestamps would collide.
    pub const EMIT_SLOTS: u64 = 1024;

    /// The factor by which event timestamps are scaled so that every event
    /// can carry the identity of its emitter in its low digits.
    ///
    /// Two events can arrive at a gate at the same *simulated time* (e.g.
    /// glitches reaching both inputs through paths of equal delay); their
    /// relative order then determines the gate's toggle count and the
    /// glitches it forwards. Encoding `(emitting gate, emission index)` into
    /// the timestamp makes every event's timestamp unique, so the commit
    /// order is fully determined by the program itself — identical for the
    /// serial reference and for any speculative schedule on any number of
    /// cores. (This is the standard deterministic tie-breaking trick of
    /// parallel discrete-event simulation.)
    pub fn ts_scale(&self) -> u64 {
        self.gates.len() as u64 * (Self::EMIT_SLOTS + 2)
    }

    /// Timestamp of an external waveform toggle on `(gate, input)` at `time`.
    pub fn waveform_ts(&self, time: u64, gate: u32, input: u8) -> u64 {
        time * self.ts_scale()
            + self.gates.len() as u64 * Self::EMIT_SLOTS
            + gate as u64 * 2
            + input as u64
    }

    /// Timestamp of the `emission`-th output toggle of `src_gate` arriving
    /// at `time`.
    pub fn event_ts(&self, time: u64, src_gate: u32, emission: u64) -> u64 {
        time * self.ts_scale() + src_gate as u64 * Self::EMIT_SLOTS + (emission % Self::EMIT_SLOTS)
    }

    /// The simulated time encoded in a timestamp.
    pub fn ts_time(&self, ts: u64) -> u64 {
        ts / self.ts_scale()
    }

    /// Serial event-driven reference simulation; returns the final output
    /// value and toggle count of every gate. Events are processed in exactly
    /// the encoded-timestamp order the speculative execution commits in.
    pub fn simulate_serial(&self) -> Vec<(u64, u64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.gates.len();
        let mut inputs = vec![[0u64; 2]; n];
        let mut outputs = vec![0u64; n];
        let mut toggles = vec![0u64; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32, u8, u64)>> = BinaryHeap::new();
        for &(t, g, i, v) in &self.waveforms {
            heap.push(Reverse((self.waveform_ts(t, g, i), g, i, v)));
        }
        while let Some(Reverse((ts, g, i, v))) = heap.pop() {
            let gi = g as usize;
            inputs[gi][i as usize] = v;
            let new_out = self.gates[gi].kind.eval(inputs[gi][0], inputs[gi][1]);
            if new_out != outputs[gi] {
                outputs[gi] = new_out;
                let emission = toggles[gi];
                toggles[gi] += 1;
                let arrival = self.ts_time(ts) + self.gates[gi].delay;
                for &(dst, di) in &self.gates[gi].fanout {
                    heap.push(Reverse((self.event_ts(arrival, g, emission), dst, di, new_out)));
                }
            }
        }
        outputs.into_iter().zip(toggles).collect()
    }
}

/// Word offsets within each gate's private cache line.
const IN0: u64 = 0;
const IN1: u64 = 1;
const OUT: u64 = 2;
const TOGGLES: u64 = 3;

/// The des benchmark.
pub struct Des {
    circuit: Circuit,
    state: Region,
    reference: Vec<(u64, u64)>,
}

impl Des {
    /// Build the benchmark around a generated circuit.
    pub fn new(circuit: Circuit) -> Self {
        let mut space = AddressSpace::new();
        let state = space.alloc_strided("gates", circuit.gates.len() as u64, 8);
        let reference = circuit.simulate_serial();
        Des { circuit, state, reference }
    }

    fn addr(&self, gate: u32, field: u64) -> u64 {
        self.state.addr_of_field(gate as u64, field)
    }

    fn hint_for(&self, gate: u32) -> Hint {
        // The gate id; equivalent to the gate's cache line since each gate
        // occupies exactly one line.
        Hint::object(0, gate as u64)
    }
}

impl SwarmApp for Des {
    fn name(&self) -> &str {
        "des"
    }

    fn init_memory(&self, _mem: &mut SimMemory) {
        // All gate inputs and outputs start at zero, which is the default.
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.circuit
            .waveforms
            .iter()
            .map(|&(t, g, i, v)| {
                let ts = self.circuit.waveform_ts(t, g, i);
                InitialTask::new(0, ts, self.hint_for(g), vec![g as u64, i as u64, v])
            })
            .collect()
    }

    fn run_task(&self, _fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let gate = args[0] as u32;
        let input = args[1].min(1);
        let value = args[2] & 1;
        let gi = gate as usize;

        ctx.write(self.addr(gate, IN0 + input), value);
        let in0 = ctx.read(self.addr(gate, IN0));
        let in1 = ctx.read(self.addr(gate, IN1));
        let new_out = self.circuit.gates[gi].kind.eval(in0, in1);
        let old_out = ctx.read(self.addr(gate, OUT));
        ctx.compute(10);
        if new_out != old_out {
            ctx.write(self.addr(gate, OUT), new_out);
            let toggles = ctx.read(self.addr(gate, TOGGLES));
            ctx.write(self.addr(gate, TOGGLES), toggles + 1);
            let arrival = self.circuit.ts_time(ts) + self.circuit.gates[gi].delay;
            let child_ts = self.circuit.event_ts(arrival, gate, toggles);
            for &(dst, di) in &self.circuit.gates[gi].fanout {
                ctx.enqueue(0, child_ts, self.hint_for(dst), vec![dst as u64, di as u64, new_out]);
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        1
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for (g, &(out, toggles)) in self.reference.iter().enumerate() {
            let got_out = mem.load(self.addr(g as u32, OUT));
            let got_toggles = mem.load(self.addr(g as u32, TOGGLES));
            if got_out != out {
                return Err(format!("gate {g} output: got {got_out}, expected {out}"));
            }
            if got_toggles != toggles {
                return Err(format!("gate {g} toggles: got {got_toggles}, expected {toggles}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(app: Des, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("des must match the serial event-driven simulation")
    }

    #[test]
    fn gate_kinds_evaluate_correctly() {
        assert_eq!(GateKind::And.eval(1, 1), 1);
        assert_eq!(GateKind::And.eval(1, 0), 0);
        assert_eq!(GateKind::Or.eval(0, 0), 0);
        assert_eq!(GateKind::Xor.eval(1, 1), 0);
        assert_eq!(GateKind::Nand.eval(1, 1), 0);
        assert_eq!(GateKind::Nor.eval(0, 0), 1);
    }

    #[test]
    fn serial_reference_propagates_events() {
        let c = Circuit::layered(4, 3, 3, 1);
        let result = c.simulate_serial();
        assert_eq!(result.len(), 12);
        // At least the first layer must have toggled.
        assert!(result.iter().take(4).any(|&(_, t)| t > 0));
    }

    #[test]
    fn speculative_des_matches_serial_single_core() {
        let c = Circuit::layered(6, 4, 4, 2);
        run(Des::new(c), Scheduler::Random, 1);
    }

    #[test]
    fn speculative_des_matches_serial_all_schedulers() {
        let c = Circuit::layered(6, 4, 4, 3);
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Des::new(c.clone()), s, 16);
        }
    }

    #[test]
    fn hints_reduce_aborts_on_des() {
        let c = Circuit::layered(8, 6, 6, 4);
        let random = run(Des::new(c.clone()), Scheduler::Random, 16);
        let hints = run(Des::new(c), Scheduler::Hints, 16);
        assert!(
            hints.tasks_aborted <= random.tasks_aborted,
            "hints aborted {} vs random {}",
            hints.tasks_aborted,
            random.tasks_aborted
        );
    }
}
