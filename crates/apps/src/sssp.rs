//! `sssp`: single-source shortest paths with Dijkstra-style ordered tasks
//! (from Galois in the paper; Listings 2 and 3).
//!
//! A task's timestamp is the tentative distance of the path it represents,
//! so committed order equals distance order. The coarse-grain version
//! (Listing 2) relaxes all of a vertex's neighbors, writing their distances;
//! the fine-grain version (Listing 3) writes only its own vertex's distance
//! and spawns one child per neighbor.

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

use crate::graph::{Graph, UNREACHED};

/// Single-source shortest paths benchmark (coarse- or fine-grain).
pub struct Sssp {
    graph: Graph,
    source: u32,
    dist: Region,
    reference: Vec<u64>,
    fine_grain: bool,
}

impl Sssp {
    /// Build the coarse-grain version (Listing 2).
    pub fn coarse(graph: Graph, source: u32) -> Self {
        Self::build(graph, source, false)
    }

    /// Build the fine-grain version (Listing 3).
    pub fn fine(graph: Graph, source: u32) -> Self {
        Self::build(graph, source, true)
    }

    fn build(graph: Graph, source: u32, fine_grain: bool) -> Self {
        assert!((source as usize) < graph.num_vertices(), "source out of range");
        let mut space = AddressSpace::new();
        let dist = space.alloc_array("dist", graph.num_vertices() as u64);
        let reference = graph.dijkstra(source);
        Sssp { graph, source, dist, reference, fine_grain }
    }

    fn dist_addr(&self, v: u32) -> u64 {
        self.dist.addr_of(v as u64)
    }

    fn hint_for(&self, v: u32) -> Hint {
        Hint::cache_line(self.dist_addr(v))
    }
}

impl SwarmApp for Sssp {
    fn name(&self) -> &str {
        if self.fine_grain {
            "sssp-fg"
        } else {
            "sssp"
        }
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        for v in 0..self.graph.num_vertices() as u32 {
            mem.store(self.dist_addr(v), UNREACHED);
        }
        if !self.fine_grain {
            mem.store(self.dist_addr(self.source), 0);
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        vec![InitialTask::new(0, 0, self.hint_for(self.source), vec![self.source as u64])]
    }

    fn run_task(&self, _fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let v = args[0] as u32;
        if self.fine_grain {
            // Listing 3: claim my own distance, spawn one child per neighbor.
            if ctx.read(self.dist_addr(v)) == UNREACHED {
                ctx.write(self.dist_addr(v), ts);
                for (n, w) in self.graph.neighbors(v) {
                    ctx.enqueue(0, ts + w as u64, self.hint_for(n), vec![n as u64]);
                }
            }
        } else {
            // Listing 2: if this is still the best known path to v, relax all
            // neighbors (writes to other vertices' distances).
            if ctx.read(self.dist_addr(v)) == ts {
                for (n, w) in self.graph.neighbors(v) {
                    let projected = ts + w as u64;
                    if projected < ctx.read(self.dist_addr(n)) {
                        ctx.write(self.dist_addr(n), projected);
                        ctx.enqueue(0, projected, self.hint_for(n), vec![n as u64]);
                    }
                }
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        1
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for v in 0..self.graph.num_vertices() as u32 {
            let got = mem.load(self.dist_addr(v));
            let want = self.reference[v as usize];
            if got != want {
                return Err(format!("sssp distance of vertex {v}: got {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(app: Sssp, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("sssp must validate against Dijkstra")
    }

    #[test]
    fn coarse_grain_matches_dijkstra_single_core() {
        let g = Graph::road_grid(12, 12, 21);
        run(Sssp::coarse(g, 0), Scheduler::Random, 1);
    }

    #[test]
    fn coarse_grain_matches_dijkstra_all_schedulers() {
        let g = Graph::road_grid(12, 12, 22);
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Sssp::coarse(g.clone(), 5), s, 16);
        }
    }

    #[test]
    fn fine_grain_matches_dijkstra() {
        let g = Graph::road_grid(10, 10, 23);
        run(Sssp::fine(g, 0), Scheduler::Hints, 16);
    }

    #[test]
    fn fine_grain_under_hints_reduces_aborts_vs_random() {
        // The central claim of Section V: fine-grain tasks make hints more
        // effective at eliminating conflicts. Compare abort counts.
        let g = Graph::road_grid(16, 16, 24);
        let hints = run(Sssp::fine(g.clone(), 0), Scheduler::Hints, 16);
        let random = run(Sssp::fine(g, 0), Scheduler::Random, 16);
        assert!(
            hints.tasks_aborted <= random.tasks_aborted,
            "hints ({}) should not abort more than random ({})",
            hints.tasks_aborted,
            random.tasks_aborted
        );
    }

    #[test]
    fn weighted_social_graph_is_handled() {
        let g = Graph::social(120, 3, 50, 25);
        run(Sssp::coarse(g, 3), Scheduler::Hints, 4);
    }
}
