//! `maxflow`: push-relabel maximum flow on a generated layered flow network
//! (a workload beyond the paper's Table I).
//!
//! Ordered benchmark. The algorithm is a round-synchronous push-relabel:
//! every round, one *discharge* task per non-terminal vertex pushes its
//! excess along admissible residual edges and relabels when stuck. Within a
//! round every vertex gets a distinct timestamp (round base + vertex id), so
//! the committed execution is a fixed total order and the final memory state
//! equals a serial sweep — which is exactly what the workload's reference
//! replays. The hint is the cache line of the vertex's excess word (the
//! Table I "cache line of vertex" pattern), but unlike the graph-analytics
//! seed apps the write set reaches *two* hops of state per push (own
//! excess/residual plus the neighbor's), so hints capture a smaller share of
//! the read-write accesses and the directory sees heavier cross-tile
//! invalidation traffic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

const FID_ROUND: TaskFnId = 0;
const FID_DISCHARGE: TaskFnId = 1;

/// Sentinel for "no relabel candidate found".
const NO_HEIGHT: u64 = u64::MAX;

/// The mutable state of a push-relabel execution: per-edge residual
/// capacities and per-vertex excess and height.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowState {
    /// Residual capacity per directed edge (paired: edge `2i+1` is the
    /// reverse of edge `2i`).
    pub residual: Vec<u64>,
    /// Excess flow per vertex.
    pub excess: Vec<u64>,
    /// Push-relabel height (label) per vertex.
    pub height: Vec<u64>,
}

/// A generated flow network plus the number of discharge rounds needed for
/// the round-synchronous push-relabel to quiesce on it.
#[derive(Debug, Clone)]
pub struct FlowWorkload {
    num_vertices: usize,
    /// Head vertex of each directed residual edge.
    edge_to: Vec<u32>,
    /// Initial residual capacity of each directed edge (reverse edges start
    /// at zero).
    edge_cap: Vec<u64>,
    /// Edge ids leaving each vertex (forward and reverse residual edges).
    adj: Vec<Vec<u32>>,
    rounds: usize,
}

impl FlowWorkload {
    /// Generate a layered network: source -> `depth` layers of `width`
    /// vertices -> sink, with random forward edges and capacities. Layered
    /// DAGs are the classic hard case for preflow algorithms: excess floods
    /// the first layers and must be relabelled back when downstream
    /// capacity runs out.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn layered(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "need at least one layer of one vertex");
        let n = width * depth + 2;
        let source = 0u32;
        let sink = (n - 1) as u32;
        let vertex = |layer: usize, i: usize| (1 + layer * width + i) as u32;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for i in 0..width {
            edges.push((source, vertex(0, i), rng.gen_range(4..=20u64)));
        }
        for layer in 0..depth - 1 {
            for i in 0..width {
                let fanout = rng.gen_range(2..=3usize).min(width);
                let first = rng.gen_range(0..width);
                for k in 0..fanout {
                    let j = (first + k) % width;
                    edges.push((vertex(layer, i), vertex(layer + 1, j), rng.gen_range(1..=12u64)));
                }
            }
        }
        for i in 0..width {
            edges.push((vertex(depth - 1, i), sink, rng.gen_range(4..=20u64)));
        }
        // A few skip edges across layers keep the height landscape uneven.
        if depth >= 2 {
            for _ in 0..width.max(2) / 2 {
                let from_layer = rng.gen_range(0..depth - 1);
                let to_layer = rng.gen_range(from_layer + 1..depth);
                let a = vertex(from_layer, rng.gen_range(0..width));
                let b = vertex(to_layer, rng.gen_range(0..width));
                edges.push((a, b, rng.gen_range(1..=6u64)));
            }
        }

        let mut edge_to = Vec::with_capacity(edges.len() * 2);
        let mut edge_cap = Vec::with_capacity(edges.len() * 2);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(from, to, cap) in &edges {
            let e = edge_to.len() as u32;
            edge_to.push(to);
            edge_cap.push(cap);
            edge_to.push(from);
            edge_cap.push(0);
            adj[from as usize].push(e);
            adj[to as usize].push(e + 1);
        }

        let mut workload = FlowWorkload { num_vertices: n, edge_to, edge_cap, adj, rounds: 0 };
        // Round count: sweep until a full round changes nothing (that round
        // included, so the simulated run provably reaches quiescence too).
        let mut state = workload.initial_state();
        let mut rounds = 1;
        while workload.sweep(&mut state) {
            rounds += 1;
            assert!(rounds < 100_000, "push-relabel failed to quiesce");
        }
        workload.rounds = rounds;
        workload
    }

    /// Number of vertices (including source and sink).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed residual edges (2x the generated edges).
    pub fn num_edges(&self) -> usize {
        self.edge_to.len()
    }

    /// The source vertex (0).
    pub fn source(&self) -> u32 {
        0
    }

    /// The sink vertex (the last one).
    pub fn sink(&self) -> u32 {
        (self.num_vertices - 1) as u32
    }

    /// Discharge rounds the simulated execution performs.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The state after the initialisation step: source at height `n`, every
    /// source edge saturated into its head's excess.
    pub fn initial_state(&self) -> FlowState {
        let n = self.num_vertices;
        let mut state =
            FlowState { residual: self.edge_cap.clone(), excess: vec![0; n], height: vec![0; n] };
        state.height[0] = n as u64;
        for &e in &self.adj[0] {
            let cap = state.residual[e as usize];
            if cap > 0 {
                let w = self.edge_to[e as usize] as usize;
                state.residual[e as usize] = 0;
                state.residual[(e ^ 1) as usize] += cap;
                state.excess[w] += cap;
            }
        }
        state
    }

    /// Discharge vertex `v` once against `state`; returns whether anything
    /// changed. This is the *serial semantics* the simulated tasks mirror
    /// word for word.
    fn discharge(&self, state: &mut FlowState, v: usize) -> bool {
        let mut remaining = state.excess[v];
        if remaining == 0 {
            return false;
        }
        let h = state.height[v];
        let mut min_height = NO_HEIGHT;
        let mut changed = false;
        for &e in &self.adj[v] {
            if remaining == 0 {
                break;
            }
            let e = e as usize;
            let r = state.residual[e];
            if r == 0 {
                continue;
            }
            let w = self.edge_to[e] as usize;
            let hw = state.height[w];
            if h == hw + 1 {
                let delta = remaining.min(r);
                state.residual[e] = r - delta;
                state.residual[e ^ 1] += delta;
                state.excess[w] += delta;
                remaining -= delta;
                changed = true;
            } else if hw < min_height {
                min_height = hw;
            }
        }
        state.excess[v] = remaining;
        if remaining > 0 && min_height != NO_HEIGHT && h < min_height + 1 {
            state.height[v] = min_height + 1;
            changed = true;
        }
        changed
    }

    /// One full round: discharge every non-terminal vertex in id order.
    fn sweep(&self, state: &mut FlowState) -> bool {
        let mut changed = false;
        for v in 1..self.num_vertices - 1 {
            changed |= self.discharge(state, v);
        }
        changed
    }

    /// Serial reference: the state after exactly [`Self::rounds`] sweeps.
    pub fn reference(&self) -> FlowState {
        let mut state = self.initial_state();
        for _ in 0..self.rounds {
            self.sweep(&mut state);
        }
        state
    }

    /// Independent max-flow value via BFS augmenting paths (Edmonds-Karp),
    /// used by the tests to certify that the push-relabel quiesced at the
    /// true maximum.
    pub fn max_flow_reference(&self) -> u64 {
        let mut residual = self.edge_cap.clone();
        let (source, sink) = (self.source() as usize, self.sink() as usize);
        let mut flow = 0u64;
        loop {
            // BFS for a shortest augmenting path.
            let mut parent_edge: Vec<Option<u32>> = vec![None; self.num_vertices];
            let mut queue = std::collections::VecDeque::from([source]);
            'bfs: while let Some(v) = queue.pop_front() {
                for &e in &self.adj[v] {
                    let w = self.edge_to[e as usize] as usize;
                    if residual[e as usize] > 0 && parent_edge[w].is_none() && w != source {
                        parent_edge[w] = Some(e);
                        if w == sink {
                            break 'bfs;
                        }
                        queue.push_back(w);
                    }
                }
            }
            let Some(_) = parent_edge[sink] else { return flow };
            let mut bottleneck = u64::MAX;
            let mut v = sink;
            while v != source {
                let e = parent_edge[v].expect("path edge") as usize;
                bottleneck = bottleneck.min(residual[e]);
                v = self.edge_to[e ^ 1] as usize;
            }
            let mut v = sink;
            while v != source {
                let e = parent_edge[v].expect("path edge") as usize;
                residual[e] -= bottleneck;
                residual[e ^ 1] += bottleneck;
                v = self.edge_to[e ^ 1] as usize;
            }
            flow += bottleneck;
        }
    }
}

/// The maxflow benchmark.
pub struct Maxflow {
    workload: FlowWorkload,
    residual: Region,
    excess: Region,
    height: Region,
    reference: FlowState,
}

impl Maxflow {
    /// Build the benchmark around a generated network.
    pub fn new(workload: FlowWorkload) -> Self {
        let mut space = AddressSpace::new();
        let residual = space.alloc_array("residual", workload.num_edges() as u64);
        let excess = space.alloc_array("excess", workload.num_vertices() as u64);
        let height = space.alloc_array("height", workload.num_vertices() as u64);
        let reference = workload.reference();
        Maxflow { workload, residual, excess, height, reference }
    }

    fn vertex_hint(&self, v: u64) -> Hint {
        Hint::cache_line(self.excess.addr_of(v))
    }

    /// Timestamp slots per round: one driver plus one per vertex.
    fn round_span(&self) -> u64 {
        self.workload.num_vertices() as u64 + 2
    }
}

impl SwarmApp for Maxflow {
    fn name(&self) -> &str {
        "maxflow"
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        let init = self.workload.initial_state();
        for (e, &r) in init.residual.iter().enumerate() {
            mem.store(self.residual.addr_of(e as u64), r);
        }
        for v in 0..self.workload.num_vertices() as u64 {
            mem.store(self.excess.addr_of(v), init.excess[v as usize]);
            mem.store(self.height.addr_of(v), init.height[v as usize]);
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        vec![InitialTask::new(FID_ROUND, 0, Hint::None, vec![0])]
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        match fid {
            FID_ROUND => {
                // args = [round]: spawn one discharge per non-terminal
                // vertex at a distinct timestamp, then the next round.
                let round = args[0];
                let base = round * self.round_span();
                for v in 1..(self.workload.num_vertices() - 1) as u64 {
                    ctx.enqueue(FID_DISCHARGE, base + 1 + v, self.vertex_hint(v), vec![v]);
                }
                if round + 1 < self.workload.rounds() as u64 {
                    ctx.enqueue(
                        FID_ROUND,
                        (round + 1) * self.round_span(),
                        Hint::None,
                        vec![round + 1],
                    );
                }
            }
            FID_DISCHARGE => {
                // args = [v]. Mirrors FlowWorkload::discharge word for word.
                let v = args[0];
                let mut remaining = ctx.read(self.excess.addr_of(v));
                if remaining == 0 {
                    ctx.compute(4);
                    return;
                }
                let h = ctx.read(self.height.addr_of(v));
                let mut min_height = NO_HEIGHT;
                for &e in &self.workload.adj[v as usize] {
                    if remaining == 0 {
                        break;
                    }
                    ctx.compute(4);
                    let r = ctx.read(self.residual.addr_of(e as u64));
                    if r == 0 {
                        continue;
                    }
                    let w = self.workload.edge_to[e as usize] as u64;
                    let hw = ctx.read(self.height.addr_of(w));
                    if h == hw + 1 {
                        let delta = remaining.min(r);
                        ctx.write(self.residual.addr_of(e as u64), r - delta);
                        let rev = (e ^ 1) as u64;
                        let rr = ctx.read(self.residual.addr_of(rev));
                        ctx.write(self.residual.addr_of(rev), rr + delta);
                        let ew = ctx.read(self.excess.addr_of(w));
                        ctx.write(self.excess.addr_of(w), ew + delta);
                        remaining -= delta;
                    } else if hw < min_height {
                        min_height = hw;
                    }
                }
                ctx.write(self.excess.addr_of(v), remaining);
                if remaining > 0 && min_height != NO_HEIGHT && h < min_height + 1 {
                    ctx.write(self.height.addr_of(v), min_height + 1);
                }
                let _ = ts;
            }
            other => panic!("unknown maxflow task function {other}"),
        }
    }

    fn num_task_fns(&self) -> usize {
        2
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for (e, &want) in self.reference.residual.iter().enumerate() {
            let got = mem.load(self.residual.addr_of(e as u64));
            if got != want {
                return Err(format!("residual of edge {e}: got {got}, expected {want}"));
            }
        }
        for v in 0..self.workload.num_vertices() {
            let got = mem.load(self.excess.addr_of(v as u64));
            let want = self.reference.excess[v];
            if got != want {
                return Err(format!("excess of vertex {v}: got {got}, expected {want}"));
            }
            let got = mem.load(self.height.addr_of(v as u64));
            let want = self.reference.height[v];
            if got != want {
                return Err(format!("height of vertex {v}: got {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(workload: FlowWorkload, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(Maxflow::new(workload))
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("maxflow must match the serial push-relabel")
    }

    #[test]
    fn push_relabel_reaches_the_edmonds_karp_maximum() {
        for seed in 0..8 {
            let w = FlowWorkload::layered(4, 3, seed);
            let state = w.reference();
            let flow = state.excess[w.sink() as usize];
            assert_eq!(flow, w.max_flow_reference(), "seed {seed} did not reach max flow");
            assert!(flow > 0, "seed {seed} produced a degenerate zero-flow network");
            // At quiescence only source and sink may hold excess.
            for v in 1..w.num_vertices() - 1 {
                assert_eq!(state.excess[v], 0, "vertex {v} still active at seed {seed}");
            }
        }
    }

    #[test]
    fn matches_serial_on_one_core() {
        run(FlowWorkload::layered(4, 3, 2), Scheduler::Random, 1);
    }

    #[test]
    fn matches_serial_under_all_schedulers() {
        let w = FlowWorkload::layered(4, 4, 3);
        for s in Scheduler::ALL {
            run(w.clone(), s, 16);
        }
    }

    #[test]
    fn committed_work_scales_with_rounds() {
        let w = FlowWorkload::layered(4, 3, 4);
        let expected = w.rounds() as u64 * (w.num_vertices() as u64 - 2) + w.rounds() as u64;
        let stats = run(w, Scheduler::Hints, 16);
        assert_eq!(stats.tasks_committed, expected);
    }
}
