//! `genome`: gene sequencing (from STAMP).
//!
//! Unordered benchmark, structured in three phases separated by phase
//! timestamps (tasks within a phase share a timestamp and commit in any
//! order, like transactions):
//!
//! 1. **Deduplicate** the segment pool by inserting segment fingerprints
//!    into a hash table (hint: the cache line of the target bucket).
//! 2. **Index** unique segments by their prefix into a second hash table.
//! 3. **Match** each unique segment's suffix against indexed prefixes and
//!    claim the follower segment, building overlap links. Matching tasks do
//!    not know which buckets they will probe when created, so they carry
//!    `NOHINT`; the link-recording child they spawn inherits the parent's
//!    placement through `SAMEHINT` (the NOHINT/SAMEHINT pattern the paper
//!    describes for genome in Table I).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

const FID_DEDUP: TaskFnId = 0;
const FID_INDEX: TaskFnId = 1;
const FID_MATCH: TaskFnId = 2;
const FID_LINK: TaskFnId = 3;

/// Slots probed per hash bucket (open addressing within a bucket's line).
const BUCKET_SLOTS: u64 = 8;

const TS_DEDUP: Timestamp = 0;
const TS_INDEX: Timestamp = 1;
const TS_MATCH: Timestamp = 2;

/// The generated sequencing workload.
#[derive(Debug, Clone)]
pub struct GenomeWorkload {
    /// Length of each segment in bases.
    pub segment_length: usize,
    /// Overlap between consecutive segments (bases).
    pub overlap: usize,
    /// Segments cut from the master genome (with duplicates).
    pub segments: Vec<Vec<u8>>,
    /// Number of hash buckets in each table.
    pub buckets: u64,
}

impl GenomeWorkload {
    /// Cut `num_segments` segments of length `segment_length` from a random
    /// master genome, such that consecutive segments overlap by `overlap`
    /// bases; a fraction of segments are duplicated.
    pub fn generate(
        genome_length: usize,
        segment_length: usize,
        overlap: usize,
        num_segments: usize,
        seed: u64,
    ) -> Self {
        assert!(overlap < segment_length, "overlap must be smaller than a segment");
        assert!(genome_length >= segment_length, "genome must hold at least one segment");
        let mut rng = SmallRng::seed_from_u64(seed);
        let master: Vec<u8> = (0..genome_length).map(|_| rng.gen_range(0..4u8)).collect();
        let step = segment_length - overlap;
        let mut segments = Vec::with_capacity(num_segments);
        for i in 0..num_segments {
            let start = (i * step) % (genome_length - segment_length + 1);
            segments.push(master[start..start + segment_length].to_vec());
        }
        // Duplicate ~25% of segments to exercise deduplication.
        let dupes = num_segments / 4;
        for _ in 0..dupes {
            let pick = rng.gen_range(0..num_segments);
            let seg = segments[pick].clone();
            segments.push(seg);
        }
        let buckets = (num_segments as u64 * 2).next_power_of_two();
        GenomeWorkload { segment_length, overlap, segments, buckets }
    }

    /// Fingerprint of a full segment.
    pub fn fingerprint(seg: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in seg {
            h ^= b as u64 + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h | 1 // never zero, zero means "empty slot"
    }

    /// Fingerprint of a segment's leading `overlap` bases.
    pub fn prefix_fingerprint(&self, seg: &[u8]) -> u64 {
        Self::fingerprint(&seg[..self.overlap])
    }

    /// Fingerprint of a segment's trailing `overlap` bases.
    pub fn suffix_fingerprint(&self, seg: &[u8]) -> u64 {
        Self::fingerprint(&seg[seg.len() - self.overlap..])
    }

    /// Number of distinct segments (the serial phase-1 answer).
    pub fn unique_segments(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for seg in &self.segments {
            set.insert(Self::fingerprint(seg));
        }
        set.len()
    }
}

/// The genome benchmark.
pub struct Genome {
    workload: GenomeWorkload,
    /// Phase-1 hash table: fingerprints of unique segments.
    dedup_table: Region,
    /// Phase-2 hash table: (prefix fingerprint, segment id + 1) pairs.
    prefix_table: Region,
    /// Per-segment link word: the id + 1 of the segment that follows it.
    links: Region,
}

impl Genome {
    /// Build the benchmark around a generated workload.
    pub fn new(workload: GenomeWorkload) -> Self {
        let mut space = AddressSpace::new();
        let dedup_table = space.alloc_array("dedup", workload.buckets * BUCKET_SLOTS);
        let prefix_table = space.alloc_array("prefix", workload.buckets * BUCKET_SLOTS * 2);
        let links = space.alloc_array("links", workload.segments.len() as u64);
        Genome { workload, dedup_table, prefix_table, links }
    }

    fn dedup_bucket_addr(&self, fingerprint: u64, slot: u64) -> u64 {
        let bucket = fingerprint % self.workload.buckets;
        self.dedup_table.addr_of(bucket * BUCKET_SLOTS + slot)
    }

    fn prefix_slot_addr(&self, fingerprint: u64, slot: u64, field: u64) -> u64 {
        let bucket = fingerprint % self.workload.buckets;
        self.prefix_table.addr_of((bucket * BUCKET_SLOTS + slot) * 2 + field)
    }

    fn bucket_hint(&self, region: &Region, fingerprint: u64, slots_per_bucket: u64) -> Hint {
        let bucket = fingerprint % self.workload.buckets;
        Hint::cache_line(region.addr_of(bucket * slots_per_bucket))
    }
}

impl SwarmApp for Genome {
    fn name(&self) -> &str {
        "genome"
    }

    fn init_memory(&self, _mem: &mut SimMemory) {}

    fn initial_tasks(&self) -> Vec<InitialTask> {
        let mut tasks = Vec::new();
        for (i, seg) in self.workload.segments.iter().enumerate() {
            let fp = GenomeWorkload::fingerprint(seg);
            // Phase 1: deduplicate.
            tasks.push(InitialTask::new(
                FID_DEDUP,
                TS_DEDUP,
                self.bucket_hint(&self.dedup_table, fp, BUCKET_SLOTS),
                vec![i as u64],
            ));
            // Phase 3: match. The bucket probed depends on this segment's
            // suffix, which the creating code does not inspect: NOHINT.
            tasks.push(InitialTask::new(FID_MATCH, TS_MATCH, Hint::None, vec![i as u64]));
        }
        tasks
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let seg_id = args[0] as usize;
        let seg = &self.workload.segments[seg_id];
        match fid {
            FID_DEDUP => {
                // Insert the segment fingerprint if not already present.
                let fp = GenomeWorkload::fingerprint(seg);
                ctx.compute(20);
                for slot in 0..BUCKET_SLOTS {
                    let addr = self.dedup_bucket_addr(fp, slot);
                    let value = ctx.read(addr);
                    if value == fp {
                        return; // duplicate
                    }
                    if value == 0 {
                        ctx.write(addr, fp);
                        // Phase 2: index this unique segment by its prefix.
                        let pfp = self.workload.prefix_fingerprint(seg);
                        ctx.enqueue(
                            FID_INDEX,
                            TS_INDEX.max(ts),
                            self.bucket_hint(&self.prefix_table, pfp, BUCKET_SLOTS * 2),
                            vec![seg_id as u64],
                        );
                        return;
                    }
                }
                // Bucket overflow: drop the segment (kept rare by sizing the
                // table at 2x the segment count).
            }
            FID_INDEX => {
                let pfp = self.workload.prefix_fingerprint(seg);
                ctx.compute(20);
                for slot in 0..BUCKET_SLOTS {
                    let key_addr = self.prefix_slot_addr(pfp, slot, 0);
                    let key = ctx.read(key_addr);
                    if key == 0 {
                        ctx.write(key_addr, pfp);
                        ctx.write(self.prefix_slot_addr(pfp, slot, 1), seg_id as u64 + 1);
                        return;
                    }
                    if key == pfp {
                        return; // an equivalent prefix is already indexed
                    }
                }
            }
            FID_MATCH => {
                // Find a segment whose prefix matches this segment's suffix
                // and record the overlap link.
                let sfp = self.workload.suffix_fingerprint(seg);
                ctx.compute(30);
                for slot in 0..BUCKET_SLOTS {
                    let key = ctx.read(self.prefix_slot_addr(sfp, slot, 0));
                    if key == 0 {
                        return;
                    }
                    if key == sfp {
                        let follower = ctx.read(self.prefix_slot_addr(sfp, slot, 1));
                        if follower != 0 && follower != seg_id as u64 + 1 {
                            // Record the link from a SAMEHINT child so it
                            // runs wherever this (NOHINT) task was placed.
                            ctx.enqueue(FID_LINK, ts, Hint::Same, vec![seg_id as u64, follower]);
                        }
                        return;
                    }
                }
            }
            FID_LINK => {
                let follower = args[1];
                ctx.write(self.links.addr_of(seg_id as u64), follower);
            }
            other => panic!("unknown genome task function {other}"),
        }
    }

    fn num_task_fns(&self) -> usize {
        4
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        // Phase 1: the number of distinct fingerprints stored in the dedup
        // table must match the serial dedup (inserts are idempotent so this
        // is order-independent).
        let expected_unique = self.workload.unique_segments() as u64;
        let mut counted = 0u64;
        for slot in 0..self.workload.buckets * BUCKET_SLOTS {
            if mem.load(self.dedup_table.addr_of(slot)) != 0 {
                counted += 1;
            }
        }
        if counted != expected_unique {
            return Err(format!("unique segments: got {counted}, expected {expected_unique}"));
        }
        // Phase 3: every recorded link must be a genuine overlap.
        for (i, seg) in self.workload.segments.iter().enumerate() {
            let link = mem.load(self.links.addr_of(i as u64));
            if link != 0 {
                let follower = &self.workload.segments[(link - 1) as usize];
                if self.workload.suffix_fingerprint(seg)
                    != self.workload.prefix_fingerprint(follower)
                {
                    return Err(format!("segment {i} linked to a non-overlapping follower"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn workload(seed: u64) -> GenomeWorkload {
        GenomeWorkload::generate(512, 16, 6, 120, seed)
    }

    fn run(app: Genome, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("genome must deduplicate and link correctly")
    }

    #[test]
    fn workload_has_duplicates_and_overlaps() {
        let w = workload(1);
        assert!(w.segments.len() > 120);
        assert!(w.unique_segments() < w.segments.len());
        // Consecutive cuts genuinely overlap.
        assert_eq!(w.suffix_fingerprint(&w.segments[0]), w.prefix_fingerprint(&w.segments[1]));
    }

    #[test]
    fn fingerprints_are_nonzero_and_stable() {
        let a = GenomeWorkload::fingerprint(&[0, 1, 2, 3]);
        let b = GenomeWorkload::fingerprint(&[0, 1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(a, GenomeWorkload::fingerprint(&[3, 2, 1, 0]));
    }

    #[test]
    fn matches_serial_dedup_on_one_core() {
        run(Genome::new(workload(2)), Scheduler::Random, 1);
    }

    #[test]
    fn matches_serial_dedup_under_all_schedulers() {
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Genome::new(workload(3)), s, 16);
        }
    }

    #[test]
    fn contended_hash_inserts_cause_aborts_under_random() {
        let stats = run(Genome::new(workload(4)), Scheduler::Random, 16);
        assert!(stats.tasks_committed > 200);
    }
}
