//! `color`: largest-degree-first greedy graph coloring (Hasenplaugh et al.).
//!
//! Ordered benchmark: vertices are ranked by degree (descending) and tasks
//! commit in rank order, so the parallel execution reproduces the serial
//! largest-degree-first heuristic exactly.
//!
//! * Coarse-grain: one task per vertex reads *all* neighbors' colors and
//!   writes its own — almost all read-write data is multi-hint, so hints
//!   barely help (Fig. 3).
//! * Fine-grain (Section V): coloring is split so every task reads or writes
//!   a single vertex's private state: a `color` task picks the smallest
//!   color absent from its own forbidden-set and then *notifies* each
//!   higher-ranked neighbor by setting a bit in that neighbor's forbidden-set
//!   (a separate task hinted by the neighbor).

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

use crate::graph::{Graph, UNREACHED};

/// Words of forbidden-set bitmap per vertex in the fine-grain layout; the
/// eighth word of the per-vertex cache line stores the chosen color.
const MASK_WORDS: u64 = 7;

const FID_COLOR: TaskFnId = 0;
const FID_NOTIFY: TaskFnId = 1;

/// Greedy graph-coloring benchmark (coarse- or fine-grain).
pub struct Color {
    graph: Graph,
    ranks: Vec<u64>,
    /// Coarse-grain: packed array of colors. Fine-grain: unused.
    colors: Region,
    /// Fine-grain: one cache line per vertex (7 mask words + 1 color word).
    state: Region,
    reference: Vec<u64>,
    fine_grain: bool,
}

impl Color {
    /// Build the coarse-grain version.
    pub fn coarse(graph: Graph) -> Self {
        Self::build(graph, false)
    }

    /// Build the fine-grain version (Section V).
    ///
    /// # Panics
    ///
    /// Panics if the graph's maximum degree exceeds the fine-grain
    /// forbidden-set capacity (7 × 64 colors).
    pub fn fine(graph: Graph) -> Self {
        assert!(
            graph.max_degree() < (MASK_WORDS as usize) * 64,
            "fine-grain color supports degrees below {}",
            MASK_WORDS * 64
        );
        Self::build(graph, true)
    }

    fn build(graph: Graph, fine_grain: bool) -> Self {
        let n = graph.num_vertices() as u64;
        let mut space = AddressSpace::new();
        let colors = space.alloc_array("colors", n);
        let state = space.alloc_strided("state", n, 8);
        let ranks = graph.color_ranks();
        let reference = graph.greedy_color();
        Color { graph, ranks, colors, state, reference, fine_grain }
    }

    fn color_addr(&self, v: u32) -> u64 {
        if self.fine_grain {
            self.state.addr_of_field(v as u64, MASK_WORDS)
        } else {
            self.colors.addr_of(v as u64)
        }
    }

    fn mask_addr(&self, v: u32, word: u64) -> u64 {
        self.state.addr_of_field(v as u64, word)
    }

    fn hint_for(&self, v: u32) -> Hint {
        Hint::cache_line(if self.fine_grain {
            self.state.addr_of(v as u64)
        } else {
            self.color_addr(v)
        })
    }

    fn rank(&self, v: u32) -> u64 {
        self.ranks[v as usize]
    }
}

impl SwarmApp for Color {
    fn name(&self) -> &str {
        if self.fine_grain {
            "color-fg"
        } else {
            "color"
        }
    }

    fn init_memory(&self, mem: &mut SimMemory) {
        for v in 0..self.graph.num_vertices() as u32 {
            mem.store(self.color_addr(v), UNREACHED);
        }
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        (0..self.graph.num_vertices() as u32)
            .map(|v| {
                let ts = if self.fine_grain { 2 * self.rank(v) + 1 } else { self.rank(v) };
                InitialTask::new(FID_COLOR, ts, self.hint_for(v), vec![v as u64])
            })
            .collect()
    }

    fn run_task(&self, fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let v = args[0] as u32;
        match (self.fine_grain, fid) {
            (false, _) => {
                // Coarse-grain: scan every neighbor's color.
                let degree = self.graph.degree(v);
                let mut used = vec![false; degree + 1];
                for (n, _) in self.graph.neighbors(v) {
                    let c = ctx.read(self.color_addr(n));
                    if c != UNREACHED && (c as usize) < used.len() {
                        used[c as usize] = true;
                    }
                }
                let c = used.iter().position(|&u| !u).unwrap_or(degree) as u64;
                ctx.write(self.color_addr(v), c);
            }
            (true, FID_COLOR) => {
                // Fine-grain color task: read my own forbidden-set, pick the
                // smallest free color, store it, and notify higher-ranked
                // neighbors.
                let mut color = None;
                for word in 0..MASK_WORDS {
                    let bits = ctx.read(self.mask_addr(v, word));
                    if bits != u64::MAX {
                        color = Some(word * 64 + (!bits).trailing_zeros() as u64);
                        break;
                    }
                }
                let c = color.expect("forbidden-set capacity exceeded");
                ctx.write(self.color_addr(v), c);
                let my_rank = self.rank(v);
                for (n, _) in self.graph.neighbors(v) {
                    let n_rank = self.rank(n);
                    if n_rank > my_rank {
                        // Notify runs strictly before the neighbor's own
                        // color task (2*n_rank), and not before my own
                        // timestamp (2*my_rank + 1 < 2*n_rank since ranks are
                        // distinct integers).
                        ctx.enqueue(FID_NOTIFY, 2 * n_rank, self.hint_for(n), vec![n as u64, c]);
                    }
                }
                debug_assert!(ts == 2 * my_rank + 1);
            }
            (true, FID_NOTIFY) => {
                // Fine-grain notify task: set bit `c` in vertex v's
                // forbidden-set (touches only v's cache line).
                let c = args[1];
                let addr = self.mask_addr(v, c / 64);
                let bits = ctx.read(addr);
                ctx.write(addr, bits | (1u64 << (c % 64)));
            }
            (true, other) => panic!("unknown color task function {other}"),
        }
    }

    fn num_task_fns(&self) -> usize {
        if self.fine_grain {
            2
        } else {
            1
        }
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for v in 0..self.graph.num_vertices() as u32 {
            let got = mem.load(self.color_addr(v));
            let want = self.reference[v as usize];
            if got != want {
                return Err(format!("color of vertex {v}: got {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(app: Color, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("color must reproduce the serial greedy coloring")
    }

    #[test]
    fn coarse_grain_matches_serial_greedy_single_core() {
        let g = Graph::social(120, 3, 60, 41);
        run(Color::coarse(g), Scheduler::Random, 1);
    }

    #[test]
    fn coarse_grain_matches_serial_greedy_many_cores() {
        let g = Graph::social(120, 3, 60, 42);
        for s in [Scheduler::Random, Scheduler::Hints] {
            run(Color::coarse(g.clone()), s, 16);
        }
    }

    #[test]
    fn fine_grain_matches_serial_greedy() {
        let g = Graph::social(120, 3, 60, 43);
        let stats = run(Color::fine(g), Scheduler::Hints, 16);
        // Fine-grain color spawns one notify task per (ordered) edge on top
        // of the per-vertex color tasks.
        assert!(stats.tasks_committed > 120);
    }

    #[test]
    fn fine_grain_works_on_road_graphs() {
        let g = Graph::road_grid(10, 10, 44);
        run(Color::fine(g), Scheduler::LbHints, 16);
    }

    #[test]
    #[should_panic(expected = "fine-grain color supports degrees below")]
    fn fine_grain_rejects_excessive_degree() {
        // A star graph with one hub of degree 600 exceeds the forbidden-set.
        let edges: Vec<(u32, u32, u32)> =
            (1..=600u32).flat_map(|v| [(0, v, 1), (v, 0, 1)]).collect();
        let coords = (0..601).map(|i| (i as i64, 0)).collect();
        let g = Graph::from_edges(601, &edges, coords);
        let _ = Color::fine(g);
    }
}
