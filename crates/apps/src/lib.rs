//! The benchmark applications: the nine of the paper's evaluation (Table I)
//! plus three beyond-Table-I workloads, written against the Swarm task API,
//! with seeded workload generators and serial reference implementations
//! used for validation.
//!
//! | Benchmark  | Kind      | Hint pattern                            |
//! |------------|-----------|-----------------------------------------|
//! | `bfs`      | ordered   | cache line of vertex                    |
//! | `sssp`     | ordered   | cache line of vertex                    |
//! | `astar`    | ordered   | cache line of vertex                    |
//! | `color`    | ordered   | cache line of vertex                    |
//! | `des`      | ordered   | logic gate id                           |
//! | `nocsim`   | ordered   | router id                               |
//! | `silo`     | ordered   | (table id, primary key)                 |
//! | `genome`   | unordered | bucket line, NOHINT / SAMEHINT          |
//! | `kmeans`   | unordered | cache line of point, cluster id         |
//! | `maxflow`  | ordered   | cache line of vertex (excess word)      |
//! | `triangle` | unordered | line of the lower-degree endpoint       |
//! | `kvstore`  | ordered   | key's home line (Zipfian popularity)    |
//! | `stream`   | ordered   | cache line of vertex (update stream)    |
//! | `pipeline` | ordered   | item line, then accumulator line        |
//! | `hostile`  | ordered   | one aliased hint value (adversarial)    |
//!
//! The `maxflow`/`triangle`/`kvstore` rows are not in the paper: they were
//! added because their hint/locality structure — two-hop push write sets,
//! long-tail hint popularity, Zipfian-hot keys — stresses the load balancer
//! and directory in ways the Table I nine do not (see
//! [`BenchmarkId::BEYOND_TABLE1`]). The last three rows are the parameterized
//! synthetic scenario families of the [`synth`] module ([`BenchmarkId::SYNTH`]),
//! including deliberately hostile generators.
//!
//! `bfs`, `sssp`, `astar` and `color` additionally have fine-grain variants
//! (Section V) that restructure tasks so each reads/writes a single vertex.
//!
//! # Example
//!
//! ```
//! use swarm_apps::{AppSpec, BenchmarkId, InputScale};
//! use spatial_hints::Scheduler;
//! use swarm_sim::Sim;
//!
//! let spec = AppSpec::coarse(BenchmarkId::Sssp);
//! let mut engine = Sim::builder()
//!     .cores(4)
//!     .app_boxed(spec.build(InputScale::Tiny, 1))
//!     .scheduler(Scheduler::Hints)
//!     .build()
//!     .expect("a valid simulation description");
//! let stats = engine.run().unwrap();
//! assert!(stats.tasks_committed > 0);
//! ```

pub mod astar;
pub mod bfs;
pub mod color;
pub mod des;
pub mod genome;
pub mod graph;
pub mod kmeans;
pub mod kvstore;
pub mod maxflow;
pub mod nocsim;
pub mod silo;
pub mod sssp;
pub mod synth;
pub mod triangle;

pub use graph::Graph;

use swarm_sim::SwarmApp;

/// The nine benchmarks of Table I plus the three beyond-Table-I workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// A* pathfinding.
    Astar,
    /// Largest-degree-first graph coloring.
    Color,
    /// Discrete event simulation of digital circuits.
    Des,
    /// Network-on-chip simulation.
    Nocsim,
    /// In-memory OLTP database.
    Silo,
    /// Gene sequencing.
    Genome,
    /// K-means clustering.
    Kmeans,
    /// Push-relabel maximum flow (beyond Table I).
    Maxflow,
    /// Per-edge triangle counting (beyond Table I).
    Triangle,
    /// Zipfian-skewed key-value store (beyond Table I).
    Kvstore,
    /// Dynamic SSSP over an edge-update stream (synthetic).
    Stream,
    /// Mixed-phase produce/transform/reduce pipeline (synthetic).
    Pipeline,
    /// Adversarial hint-aliasing generator (synthetic; see
    /// [`synth::HostileKind`] for the full hostile family).
    Hostile,
}

impl BenchmarkId {
    /// Every benchmark: the Table I nine, the beyond-Table-I three, then the
    /// synthetic scenario families.
    pub const ALL: [BenchmarkId; 15] = [
        BenchmarkId::Bfs,
        BenchmarkId::Sssp,
        BenchmarkId::Astar,
        BenchmarkId::Color,
        BenchmarkId::Des,
        BenchmarkId::Nocsim,
        BenchmarkId::Silo,
        BenchmarkId::Genome,
        BenchmarkId::Kmeans,
        BenchmarkId::Maxflow,
        BenchmarkId::Triangle,
        BenchmarkId::Kvstore,
        BenchmarkId::Stream,
        BenchmarkId::Pipeline,
        BenchmarkId::Hostile,
    ];

    /// The nine benchmarks of the paper's Table I, in the order the paper
    /// lists them (the default set of the figure-regeneration binaries, so
    /// their output keeps matching the paper's evaluation).
    pub const TABLE1: [BenchmarkId; 9] = [
        BenchmarkId::Bfs,
        BenchmarkId::Sssp,
        BenchmarkId::Astar,
        BenchmarkId::Color,
        BenchmarkId::Des,
        BenchmarkId::Nocsim,
        BenchmarkId::Silo,
        BenchmarkId::Genome,
        BenchmarkId::Kmeans,
    ];

    /// The workloads beyond Table I (the default set of the `table2`
    /// binary).
    pub const BEYOND_TABLE1: [BenchmarkId; 3] =
        [BenchmarkId::Maxflow, BenchmarkId::Triangle, BenchmarkId::Kvstore];

    /// The synthetic scenario families (see [`synth`]): a streaming app, a
    /// mixed-phase pipeline, and a deliberately hostile generator. Kept out
    /// of [`Self::TABLE1`]/[`Self::BEYOND_TABLE1`] so the pinned figure
    /// outputs are unaffected; select them explicitly (e.g. `swarm table2
    /// --apps stream,pipeline,hostile`).
    pub const SYNTH: [BenchmarkId; 3] =
        [BenchmarkId::Stream, BenchmarkId::Pipeline, BenchmarkId::Hostile];

    /// The four benchmarks that have fine-grain restructurings (Section V).
    pub const WITH_FINE_GRAIN: [BenchmarkId; 4] =
        [BenchmarkId::Bfs, BenchmarkId::Sssp, BenchmarkId::Astar, BenchmarkId::Color];

    /// Benchmark name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Bfs => "bfs",
            BenchmarkId::Sssp => "sssp",
            BenchmarkId::Astar => "astar",
            BenchmarkId::Color => "color",
            BenchmarkId::Des => "des",
            BenchmarkId::Nocsim => "nocsim",
            BenchmarkId::Silo => "silo",
            BenchmarkId::Genome => "genome",
            BenchmarkId::Kmeans => "kmeans",
            BenchmarkId::Maxflow => "maxflow",
            BenchmarkId::Triangle => "triangle",
            BenchmarkId::Kvstore => "kvstore",
            BenchmarkId::Stream => "stream",
            BenchmarkId::Pipeline => "pipeline",
            BenchmarkId::Hostile => "hostile",
        }
    }

    /// Source implementation the paper ported (Table I "Source" column);
    /// the beyond-Table-I workloads are written for this repository.
    pub fn source(self) -> &'static str {
        match self {
            BenchmarkId::Bfs => "PBFS",
            BenchmarkId::Sssp => "Galois",
            BenchmarkId::Astar => "Swarm (MICRO-48)",
            BenchmarkId::Color => "Hasenplaugh et al.",
            BenchmarkId::Des => "Galois",
            BenchmarkId::Nocsim => "GARNET",
            BenchmarkId::Silo => "Silo (SOSP'13)",
            BenchmarkId::Genome => "STAMP",
            BenchmarkId::Kmeans => "STAMP",
            BenchmarkId::Maxflow
            | BenchmarkId::Triangle
            | BenchmarkId::Kvstore
            | BenchmarkId::Stream
            | BenchmarkId::Pipeline
            | BenchmarkId::Hostile => "this repo",
        }
    }

    /// Input described in Table I (what the paper used; our generators mimic
    /// its shape), or the generator shape for the beyond-Table-I workloads.
    pub fn paper_input(self) -> &'static str {
        match self {
            BenchmarkId::Bfs => "hugetric-00020",
            BenchmarkId::Sssp => "East USA roads",
            BenchmarkId::Astar => "Germany roads",
            BenchmarkId::Color => "com-youtube",
            BenchmarkId::Des => "csaArray32",
            BenchmarkId::Nocsim => "16x16 mesh, tornado",
            BenchmarkId::Silo => "TPC-C, 4 warehouses",
            BenchmarkId::Genome => "-g4096 -s48 -n1048576",
            BenchmarkId::Kmeans => "rnd-n16K-d24-c16",
            BenchmarkId::Maxflow => "layered flow network",
            BenchmarkId::Triangle => "pref.-attachment graph",
            BenchmarkId::Kvstore => "Zipfian op stream",
            BenchmarkId::Stream => "grid + decrease stream",
            BenchmarkId::Pipeline => "banded item pipeline",
            BenchmarkId::Hostile => "aliased-hint task band",
        }
    }

    /// Hint pattern (Table I "Hint patterns" column, extended to the
    /// beyond-Table-I workloads).
    pub fn hint_pattern(self) -> &'static str {
        match self {
            BenchmarkId::Bfs | BenchmarkId::Sssp | BenchmarkId::Astar | BenchmarkId::Color => {
                "cache line of vertex"
            }
            BenchmarkId::Des => "logic gate id",
            BenchmarkId::Nocsim => "router id",
            BenchmarkId::Silo => "(table id, primary key)",
            BenchmarkId::Genome => "bucket line, NOHINT/SAMEHINT",
            BenchmarkId::Kmeans => "cache line of point, cluster id",
            BenchmarkId::Maxflow => "cache line of vertex",
            BenchmarkId::Triangle => "line of lower-degree endpoint",
            BenchmarkId::Kvstore => "key's home line",
            BenchmarkId::Stream => "cache line of vertex",
            BenchmarkId::Pipeline => "item line, then accumulator line",
            BenchmarkId::Hostile => "one aliased hint value",
        }
    }

    /// Whether the benchmark is ordered (timestamps carry program order) or
    /// unordered (transactional, equal timestamps).
    pub fn is_ordered(self) -> bool {
        !matches!(self, BenchmarkId::Genome | BenchmarkId::Kmeans | BenchmarkId::Triangle)
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BenchmarkId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BenchmarkId::ALL
            .into_iter()
            .find(|b| b.name() == s.to_ascii_lowercase())
            .ok_or_else(|| format!("unknown benchmark '{s}'"))
    }
}

/// Input scale: how big a workload the generators produce. All scales run on
/// a laptop; `Tiny` is for unit tests, `Small` for quick sweeps, `Medium`
/// for the figure-regeneration harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputScale {
    /// Seconds-per-run unit-test scale.
    Tiny,
    /// Default harness scale.
    Small,
    /// Larger harness scale (slower, smoother curves).
    Medium,
}

impl InputScale {
    fn factor(self) -> usize {
        match self {
            InputScale::Tiny => 1,
            InputScale::Small => 2,
            InputScale::Medium => 4,
        }
    }
}

/// A benchmark plus its task granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppSpec {
    /// Which benchmark.
    pub benchmark: BenchmarkId,
    /// Whether to use the fine-grain restructuring of Section V.
    pub fine_grain: bool,
}

impl AppSpec {
    /// The coarse-grain (original) version of a benchmark.
    pub fn coarse(benchmark: BenchmarkId) -> Self {
        AppSpec { benchmark, fine_grain: false }
    }

    /// The fine-grain version (only meaningful for bfs, sssp, astar, color).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark has no fine-grain restructuring.
    pub fn fine(benchmark: BenchmarkId) -> Self {
        assert!(
            BenchmarkId::WITH_FINE_GRAIN.contains(&benchmark),
            "{benchmark} has no fine-grain version"
        );
        AppSpec { benchmark, fine_grain: true }
    }

    /// Display name, e.g. `"sssp"` or `"sssp-fg"`.
    pub fn name(self) -> String {
        if self.fine_grain {
            format!("{}-fg", self.benchmark)
        } else {
            self.benchmark.name().to_string()
        }
    }

    /// Instantiate the application at a given input scale and seed.
    pub fn build(self, scale: InputScale, seed: u64) -> Box<dyn SwarmApp> {
        let f = scale.factor();
        match (self.benchmark, self.fine_grain) {
            (BenchmarkId::Bfs, fine) => {
                let g = Graph::road_grid(16 * f, 12 * f, seed);
                Box::new(if fine { bfs::Bfs::fine(g, 0) } else { bfs::Bfs::coarse(g, 0) })
            }
            (BenchmarkId::Sssp, fine) => {
                let g = Graph::road_grid(16 * f, 12 * f, seed.wrapping_add(1));
                Box::new(if fine { sssp::Sssp::fine(g, 0) } else { sssp::Sssp::coarse(g, 0) })
            }
            (BenchmarkId::Astar, fine) => {
                let side = 16 * f;
                let g = Graph::road_grid(side, side, seed.wrapping_add(2));
                let target = (side * side - 1) as u32;
                Box::new(if fine {
                    astar::Astar::fine(g, 0, target)
                } else {
                    astar::Astar::coarse(g, 0, target)
                })
            }
            (BenchmarkId::Color, fine) => {
                let g = Graph::social(150 * f, 3, 120, seed.wrapping_add(3));
                Box::new(if fine { color::Color::fine(g) } else { color::Color::coarse(g) })
            }
            (BenchmarkId::Des, _) => {
                let c = des::Circuit::layered(8 * f, 6 * f, 4 + f, seed.wrapping_add(4));
                Box::new(des::Des::new(c))
            }
            (BenchmarkId::Nocsim, _) => {
                let w = nocsim::NocWorkload::tornado(4 * f as u32, 3 + f, seed.wrapping_add(5));
                Box::new(nocsim::Nocsim::new(w))
            }
            (BenchmarkId::Silo, _) => {
                let w = silo::SiloWorkload {
                    transactions: 150 * f,
                    seed: seed.wrapping_add(6),
                    ..silo::SiloWorkload::default()
                };
                Box::new(silo::Silo::new(w))
            }
            (BenchmarkId::Genome, _) => {
                let w =
                    genome::GenomeWorkload::generate(512 * f, 16, 6, 150 * f, seed.wrapping_add(7));
                Box::new(genome::Genome::new(w))
            }
            (BenchmarkId::Kmeans, _) => {
                let w = kmeans::KmeansWorkload::generate(64 * f, 4, 4, 3, seed.wrapping_add(8));
                Box::new(kmeans::Kmeans::new(w))
            }
            (BenchmarkId::Maxflow, _) => {
                let w = maxflow::FlowWorkload::layered(4 * f, 3 * f, seed.wrapping_add(9));
                Box::new(maxflow::Maxflow::new(w))
            }
            (BenchmarkId::Triangle, _) => {
                let g = Graph::social(150 * f, 3, 90, seed.wrapping_add(10));
                Box::new(triangle::Triangle::new(g))
            }
            (BenchmarkId::Kvstore, _) => {
                let w = kvstore::KvWorkload::zipfian(48 * f, 250 * f, seed.wrapping_add(11));
                Box::new(kvstore::Kvstore::new(w))
            }
            (BenchmarkId::Stream, _) => {
                let w =
                    synth::StreamWorkload::generate(8 * f, 6 * f, 30 * f, seed.wrapping_add(12));
                Box::new(synth::StreamSssp::new(w))
            }
            (BenchmarkId::Pipeline, _) => {
                let w = synth::PipelineWorkload::generate(40 * f, 2 + f, 4, seed.wrapping_add(13));
                Box::new(synth::Pipeline::new(w))
            }
            (BenchmarkId::Hostile, _) => {
                let w = synth::HostileWorkload::hint_alias(48 * f, 120, seed.wrapping_add(14));
                Box::new(synth::Hostile::new(w))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_round_trip() {
        for b in BenchmarkId::ALL {
            let parsed: BenchmarkId = b.name().parse().unwrap();
            assert_eq!(parsed, b);
            assert!(!b.hint_pattern().is_empty());
            assert!(!b.source().is_empty());
            assert!(!b.paper_input().is_empty());
        }
        assert!("nope".parse::<BenchmarkId>().is_err());
    }

    #[test]
    fn ordered_and_unordered_split_matches_paper() {
        let unordered: Vec<_> = BenchmarkId::ALL.into_iter().filter(|b| !b.is_ordered()).collect();
        assert_eq!(
            unordered,
            vec![BenchmarkId::Genome, BenchmarkId::Kmeans, BenchmarkId::Triangle]
        );
    }

    #[test]
    fn table1_and_beyond_partition_the_benchmark_set() {
        let mut combined = BenchmarkId::TABLE1.to_vec();
        combined.extend(BenchmarkId::BEYOND_TABLE1);
        combined.extend(BenchmarkId::SYNTH);
        assert_eq!(combined, BenchmarkId::ALL.to_vec());
    }

    #[test]
    fn every_benchmark_builds_at_tiny_scale() {
        for b in BenchmarkId::ALL {
            let app = AppSpec::coarse(b).build(InputScale::Tiny, 42);
            assert!(!app.name().contains("-fg"));
            assert!(app.num_task_fns() >= 1);
            assert!(!app.initial_tasks().is_empty(), "{b} has no initial tasks");
        }
    }

    #[test]
    fn fine_grain_variants_build() {
        for b in BenchmarkId::WITH_FINE_GRAIN {
            let app = AppSpec::fine(b).build(InputScale::Tiny, 42);
            assert!(app.name().ends_with("-fg"));
        }
    }

    #[test]
    #[should_panic(expected = "has no fine-grain version")]
    fn fine_grain_of_des_is_rejected() {
        let _ = AppSpec::fine(BenchmarkId::Des);
    }

    #[test]
    fn spec_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for b in BenchmarkId::ALL {
            assert!(names.insert(AppSpec::coarse(b).name()));
        }
        for b in BenchmarkId::WITH_FINE_GRAIN {
            assert!(names.insert(AppSpec::fine(b).name()));
        }
        assert_eq!(names.len(), 19);
    }
}
