//! `kvstore`: an in-memory key-value store hammered by a Zipfian-skewed
//! operation stream (a workload beyond the paper's Table I).
//!
//! Ordered benchmark: every operation (get / put / add) carries its stream
//! index as timestamp, so the committed execution is the exact serial replay
//! the reference performs. The spatial hint is the cache line of the key's
//! home slot — the "abstract object id" pattern of `silo`, but with a
//! *Zipfian* popularity distribution: a handful of hot keys attract a large
//! fraction of all tasks, so the hint→tile hash concentrates load on a few
//! tiles in a way none of the nine Table I apps do. That is precisely the
//! regime where same-hint serialization pays (conflicts on hot keys become
//! queueing instead of aborts) and where the load balancer has real skew to
//! correct.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

const FID_OP: TaskFnId = 0;

/// A seeded Zipfian rank sampler with exponent 1 (classic Zipf's law:
/// rank `r` is drawn with probability proportional to `1 / (r + 1)`).
///
/// The distribution table is integer-exact — per-rank weights are
/// `2^32 / (r + 1)` accumulated into a cumulative `u64` array, and sampling
/// is a binary search on a uniform draw — so the generator is deterministic
/// across platforms, which the repository's determinism suite relies on
/// (no floating-point `powf` whose last bits could differ between libms).
///
/// # Example
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use swarm_apps::kvstore::Zipfian;
///
/// let zipf = Zipfian::new(16);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let ranks: Vec<u64> = (0..5).map(|_| zipf.sample(&mut rng)).collect();
/// assert!(ranks.iter().all(|&r| r < 16));
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    /// `cumulative[r]` = sum of weights of ranks `0..=r`.
    cumulative: Vec<u64>,
}

/// Fixed-point scale of the per-rank weights.
const ZIPF_SCALE: u64 = 1 << 32;

impl Zipfian {
    /// Build the distribution over `num_ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks` is zero.
    pub fn new(num_ranks: usize) -> Self {
        assert!(num_ranks > 0, "need at least one rank");
        let mut cumulative = Vec::with_capacity(num_ranks);
        let mut sum = 0u64;
        for r in 0..num_ranks as u64 {
            sum += ZIPF_SCALE / (r + 1);
            cumulative.push(sum);
        }
        Zipfian { cumulative }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.cumulative.len()
    }

    /// Draw one rank in `0..num_ranks`, most popular first (rank 0 is the
    /// hottest).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let total = *self.cumulative.last().expect("non-empty distribution");
        let u = rng.gen_range(0..total);
        self.cumulative.partition_point(|&c| c <= u) as u64
    }
}

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read the key; the observed value is recorded in the results log.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Overwrite the key's value.
    Put {
        /// Key to write.
        key: u64,
        /// New value.
        value: u64,
    },
    /// Read-modify-write: add `delta` to the key's value.
    Add {
        /// Key to update.
        key: u64,
        /// Amount to add.
        delta: u64,
    },
}

impl KvOp {
    /// The key the operation touches.
    pub fn key(self) -> u64 {
        match self {
            KvOp::Get { key } | KvOp::Put { key, .. } | KvOp::Add { key, .. } => key,
        }
    }
}

/// A generated key-value workload: the key space size and the op stream.
#[derive(Debug, Clone)]
pub struct KvWorkload {
    /// Number of distinct keys.
    pub num_keys: usize,
    /// The operation stream, applied in index (= timestamp) order.
    pub ops: Vec<KvOp>,
}

impl KvWorkload {
    /// Generate `num_ops` operations over `num_keys` keys with Zipfian key
    /// popularity (50% gets, 30% adds, 20% puts). Ranks are mapped to keys
    /// through a seeded shuffle so the hot keys are scattered across the
    /// key space — and therefore across cache lines — rather than packed
    /// into the first line.
    pub fn zipfian(num_keys: usize, num_ops: usize, seed: u64) -> Self {
        assert!(num_keys > 0, "need at least one key");
        let zipf = Zipfian::new(num_keys);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Fisher-Yates rank -> key permutation.
        let mut rank_to_key: Vec<u64> = (0..num_keys as u64).collect();
        for i in (1..num_keys).rev() {
            let j = rng.gen_range(0..=i);
            rank_to_key.swap(i, j);
        }
        let ops = (0..num_ops)
            .map(|_| {
                let key = rank_to_key[zipf.sample(&mut rng) as usize];
                match rng.gen_range(0..10u32) {
                    0..=4 => KvOp::Get { key },
                    5..=7 => KvOp::Add { key, delta: rng.gen_range(1..=100u64) },
                    _ => KvOp::Put { key, value: rng.gen_range(0..10_000u64) },
                }
            })
            .collect();
        KvWorkload { num_keys, ops }
    }

    /// Serial replay: final store contents and the per-op results log
    /// (gets record the value they observed; puts and adds record nothing).
    pub fn reference(&self) -> (Vec<u64>, Vec<u64>) {
        let mut store = vec![0u64; self.num_keys];
        let mut results = vec![0u64; self.ops.len()];
        for (i, &op) in self.ops.iter().enumerate() {
            match op {
                KvOp::Get { key } => results[i] = store[key as usize],
                KvOp::Put { key, value } => store[key as usize] = value,
                KvOp::Add { key, delta } => store[key as usize] += delta,
            }
        }
        (store, results)
    }
}

/// The kvstore benchmark.
pub struct Kvstore {
    workload: KvWorkload,
    store: Region,
    results: Region,
    reference: (Vec<u64>, Vec<u64>),
}

impl Kvstore {
    /// Build the benchmark around a generated workload.
    pub fn new(workload: KvWorkload) -> Self {
        let mut space = AddressSpace::new();
        let store = space.alloc_array("store", workload.num_keys as u64);
        let results = space.alloc_array("results", workload.ops.len() as u64);
        let reference = workload.reference();
        Kvstore { workload, store, results, reference }
    }

    fn key_hint(&self, key: u64) -> Hint {
        Hint::cache_line(self.store.addr_of(key))
    }
}

impl SwarmApp for Kvstore {
    fn name(&self) -> &str {
        "kvstore"
    }

    fn initial_tasks(&self) -> Vec<InitialTask> {
        // One ordered task per operation: the stream index is the timestamp
        // and the key's home line the hint.
        self.workload
            .ops
            .iter()
            .enumerate()
            .map(|(i, &op)| {
                InitialTask::new(FID_OP, i as Timestamp, self.key_hint(op.key()), vec![i as u64])
            })
            .collect()
    }

    fn run_task(&self, fid: TaskFnId, _ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        assert_eq!(fid, FID_OP, "unknown kvstore task function {fid}");
        let i = args[0] as usize;
        // Hash-table probe cost of a real store front-end.
        ctx.compute(15);
        match self.workload.ops[i] {
            KvOp::Get { key } => {
                let value = ctx.read(self.store.addr_of(key));
                ctx.write(self.results.addr_of(i as u64), value);
            }
            KvOp::Put { key, value } => {
                ctx.write(self.store.addr_of(key), value);
            }
            KvOp::Add { key, delta } => {
                ctx.update(self.store.addr_of(key), |v| v + delta);
            }
        }
    }

    fn num_task_fns(&self) -> usize {
        1
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        let (store, results) = &self.reference;
        for (key, &want) in store.iter().enumerate() {
            let got = mem.load(self.store.addr_of(key as u64));
            if got != want {
                return Err(format!("value of key {key}: got {got}, expected {want}"));
            }
        }
        for (i, &want) in results.iter().enumerate() {
            let got = mem.load(self.results.addr_of(i as u64));
            if got != want {
                return Err(format!("result of get #{i}: got {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(workload: KvWorkload, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(Kvstore::new(workload))
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("kvstore must match the serial replay")
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let zipf = Zipfian::new(64);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut freq = vec![0u64; 64];
        for _ in 0..40_000 {
            freq[zipf.sample(&mut rng) as usize] += 1;
        }
        // Harmonic weights: rank 0 draws ~21% of all samples at 64 keys.
        assert!(freq[0] > freq[1], "rank 0 must be the hottest");
        assert!(freq[0] as f64 / 40_000.0 > 0.15, "rank 0 drew only {} of 40000 samples", freq[0]);
    }

    #[test]
    fn generated_ops_cover_all_op_kinds() {
        let w = KvWorkload::zipfian(32, 400, 5);
        let gets = w.ops.iter().filter(|o| matches!(o, KvOp::Get { .. })).count();
        let puts = w.ops.iter().filter(|o| matches!(o, KvOp::Put { .. })).count();
        let adds = w.ops.iter().filter(|o| matches!(o, KvOp::Add { .. })).count();
        assert!(gets > 0 && puts > 0 && adds > 0, "gets={gets} puts={puts} adds={adds}");
        assert_eq!(gets + puts + adds, 400);
    }

    #[test]
    fn matches_serial_on_one_core() {
        run(KvWorkload::zipfian(32, 200, 6), Scheduler::Random, 1);
    }

    #[test]
    fn matches_serial_under_all_schedulers() {
        for s in Scheduler::ALL {
            run(KvWorkload::zipfian(32, 200, 7), s, 16);
        }
    }

    #[test]
    fn hot_keys_conflict_under_random_but_serialize_under_hints() {
        let w = KvWorkload::zipfian(24, 300, 8);
        let random = run(w.clone(), Scheduler::Random, 16);
        let hints = run(w, Scheduler::Hints, 16);
        assert_eq!(random.tasks_committed, hints.tasks_committed);
        assert!(
            hints.tasks_aborted <= random.tasks_aborted,
            "hints aborted more ({}) than random ({})",
            hints.tasks_aborted,
            random.tasks_aborted
        );
    }
}
