//! `nocsim`: a network-on-chip simulator (derived from GARNET in the paper).
//!
//! Ordered benchmark: each task simulates a packet hop at one router of a
//! simulated K×K mesh running tornado traffic. A task reads and writes only
//! its own router's counters, so the router id is the natural spatial hint —
//! and because tornado traffic loads central columns far more than edge
//! routers, the benchmark is the paper's poster child for hint-based load
//! balancing (Section VI).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use swarm_mem::{AddressSpace, Region, SimMemory};
use swarm_sim::{InitialTask, SwarmApp, TaskCtx};
use swarm_types::{Hint, TaskFnId, Timestamp};

/// Per-router counter fields (one cache line per router).
const INJECTED: u64 = 0;
const FORWARDED: u64 = 1;
const EJECTED: u64 = 2;
const BUFFERED: u64 = 3;

const FID_HOP: TaskFnId = 0;

/// The simulated mesh workload: a K×K router grid plus a packet trace.
#[derive(Debug, Clone)]
pub struct NocWorkload {
    /// Mesh side length.
    pub k: u32,
    /// Packets: (injection time, source router, destination router).
    pub packets: Vec<(u64, u32, u32)>,
    /// Per-hop link latency in simulated cycles.
    pub link_delay: u64,
}

impl NocWorkload {
    /// Generate tornado traffic on a `k` × `k` mesh: every router sends
    /// `packets_per_router` packets to the router halfway around its row.
    pub fn tornado(k: u32, packets_per_router: usize, seed: u64) -> Self {
        assert!(k >= 2, "mesh must be at least 2x2");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut packets = Vec::new();
        for y in 0..k {
            for x in 0..k {
                let src = y * k + x;
                let dst_x = (x + k / 2) % k;
                let dst = y * k + dst_x;
                let mut time = 0u64;
                for _ in 0..packets_per_router {
                    time += rng.gen_range(1..16u64);
                    packets.push((time, src, dst));
                }
            }
        }
        Self { k, packets, link_delay: 2 }
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        (self.k * self.k) as usize
    }

    /// Next router on the X-Y route from `at` toward `dst`.
    pub fn next_hop(&self, at: u32, dst: u32) -> u32 {
        let k = self.k;
        let (ax, ay) = (at % k, at / k);
        let (dx, dy) = (dst % k, dst / k);
        if ax != dx {
            let nx = if dx > ax { ax + 1 } else { ax - 1 };
            ay * k + nx
        } else if ay != dy {
            let ny = if dy > ay { ay + 1 } else { ay - 1 };
            ny * k + ax
        } else {
            at
        }
    }

    /// Serial reference: per-router (injected, forwarded, ejected) counts.
    /// These are sums of order-independent increments, so any serializable
    /// execution must produce exactly these values.
    pub fn reference_counts(&self) -> Vec<(u64, u64, u64)> {
        let mut counts = vec![(0u64, 0u64, 0u64); self.num_routers()];
        for &(_, src, dst) in &self.packets {
            counts[src as usize].0 += 1;
            let mut at = src;
            loop {
                if at == dst {
                    counts[at as usize].2 += 1;
                    break;
                }
                counts[at as usize].1 += 1;
                at = self.next_hop(at, dst);
            }
        }
        counts
    }
}

/// The nocsim benchmark.
pub struct Nocsim {
    workload: NocWorkload,
    routers: Region,
    reference: Vec<(u64, u64, u64)>,
}

impl Nocsim {
    /// Build the benchmark around a generated workload.
    pub fn new(workload: NocWorkload) -> Self {
        let mut space = AddressSpace::new();
        let routers = space.alloc_strided("routers", workload.num_routers() as u64, 8);
        let reference = workload.reference_counts();
        Nocsim { workload, routers, reference }
    }

    fn addr(&self, router: u32, field: u64) -> u64 {
        self.routers.addr_of_field(router as u64, field)
    }

    fn hint_for(&self, router: u32) -> Hint {
        Hint::object(1, router as u64)
    }
}

impl SwarmApp for Nocsim {
    fn name(&self) -> &str {
        "nocsim"
    }

    fn init_memory(&self, _mem: &mut SimMemory) {}

    fn initial_tasks(&self) -> Vec<InitialTask> {
        self.workload
            .packets
            .iter()
            .map(|&(t, src, dst)| {
                InitialTask::new(FID_HOP, t, self.hint_for(src), vec![src as u64, dst as u64, 1])
            })
            .collect()
    }

    fn run_task(&self, _fid: TaskFnId, ts: Timestamp, args: &[u64], ctx: &mut TaskCtx<'_>) {
        let at = args[0] as u32;
        let dst = args[1] as u32;
        let is_injection = args[2] == 1;

        if is_injection {
            let injected = ctx.read(self.addr(at, INJECTED));
            ctx.write(self.addr(at, INJECTED), injected + 1);
        }
        // Model router buffer occupancy churn (read-modify-write of own
        // state) plus some routing computation.
        let buffered = ctx.read(self.addr(at, BUFFERED));
        ctx.write(self.addr(at, BUFFERED), buffered + 1);
        ctx.compute(15);

        if at == dst {
            let ejected = ctx.read(self.addr(at, EJECTED));
            ctx.write(self.addr(at, EJECTED), ejected + 1);
        } else {
            let forwarded = ctx.read(self.addr(at, FORWARDED));
            ctx.write(self.addr(at, FORWARDED), forwarded + 1);
            let next = self.workload.next_hop(at, dst);
            ctx.enqueue(
                FID_HOP,
                ts + self.workload.link_delay,
                self.hint_for(next),
                vec![next as u64, dst as u64, 0],
            );
        }
    }

    fn num_task_fns(&self) -> usize {
        1
    }

    fn validate(&self, mem: &SimMemory) -> Result<(), String> {
        for (r, &(injected, forwarded, ejected)) in self.reference.iter().enumerate() {
            let r = r as u32;
            if mem.load(self.addr(r, INJECTED)) != injected {
                return Err(format!("router {r} injected count mismatch"));
            }
            if mem.load(self.addr(r, FORWARDED)) != forwarded {
                return Err(format!("router {r} forwarded count mismatch"));
            }
            if mem.load(self.addr(r, EJECTED)) != ejected {
                return Err(format!("router {r} ejected count mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_hints::Scheduler;
    use swarm_sim::Sim;

    fn run(app: Nocsim, scheduler: Scheduler, cores: u32) -> swarm_sim::RunStats {
        let mut engine = Sim::builder()
            .cores(cores)
            .app(app)
            .scheduler(scheduler)
            .build()
            .expect("valid simulation");
        engine.run().expect("nocsim must match the serial packet counts")
    }

    #[test]
    fn next_hop_routes_x_then_y() {
        let w = NocWorkload::tornado(4, 1, 1);
        assert_eq!(w.next_hop(0, 3), 1);
        assert_eq!(w.next_hop(1, 3), 2);
        assert_eq!(w.next_hop(3, 15), 7);
        assert_eq!(w.next_hop(15, 15), 15);
    }

    #[test]
    fn tornado_traffic_loads_central_columns_more() {
        let w = NocWorkload::tornado(8, 4, 2);
        let counts = w.reference_counts();
        // Column 4 routers forward more than column 0/7 routers on average.
        let col_load =
            |col: u32| -> u64 { (0..8u32).map(|row| counts[(row * 8 + col) as usize].1).sum() };
        assert!(col_load(4) > col_load(0));
        assert!(col_load(3) > col_load(7));
    }

    #[test]
    fn speculative_counts_match_reference_single_core() {
        let w = NocWorkload::tornado(4, 3, 3);
        run(Nocsim::new(w), Scheduler::Random, 1);
    }

    #[test]
    fn speculative_counts_match_reference_all_schedulers() {
        let w = NocWorkload::tornado(4, 3, 4);
        for s in [Scheduler::Random, Scheduler::Stealing, Scheduler::Hints, Scheduler::LbHints] {
            run(Nocsim::new(w.clone()), s, 16);
        }
    }

    #[test]
    fn lbhints_runs_the_imbalanced_mesh() {
        let w = NocWorkload::tornado(6, 4, 5);
        let stats = run(Nocsim::new(w), Scheduler::LbHints, 16);
        assert!(stats.tasks_committed > 100);
    }
}
